//! The region-Zipf access distribution of Section 4.1.
//!
//! "Within the range the page access probabilities follow a Zipf
//! distribution, with page 0 being the most frequently accessed. […]
//! Similar to earlier models of skewed access \[Dan90\], we partition the
//! pages into regions of RegionSize pages each, such that the probability
//! of accessing any page within a region is uniform; the Zipf distribution
//! is applied to these regions."
//!
//! Region `j` (1-based) receives weight `(1/j)^θ`; the weight is divided
//! evenly among the region's pages. θ = 0 is uniform; the paper's θ = 0.95
//! is heavily skewed.

/// The region-Zipf distribution over logical pages `0..access_range`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionZipf {
    access_range: usize,
    region_size: usize,
    theta: f64,
    probs: Vec<f64>,
}

impl RegionZipf {
    /// Builds the distribution.
    ///
    /// The final region may be smaller when `region_size` does not divide
    /// `access_range`; its per-page probability is its region weight over
    /// its actual page count.
    ///
    /// # Panics
    ///
    /// Panics when `access_range` or `region_size` is zero, or θ is
    /// negative or non-finite.
    pub fn new(access_range: usize, region_size: usize, theta: f64) -> Self {
        assert!(access_range > 0, "access range must be positive");
        assert!(region_size > 0, "region size must be positive");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be a non-negative finite number"
        );

        let num_regions = access_range.div_ceil(region_size);
        let weights: Vec<f64> = (1..=num_regions)
            .map(|j| (1.0 / j as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();

        let mut probs = Vec::with_capacity(access_range);
        for (j, w) in weights.iter().enumerate() {
            let start = j * region_size;
            let end = ((j + 1) * region_size).min(access_range);
            let per_page = w / total / (end - start) as f64;
            probs.extend(std::iter::repeat_n(per_page, end - start));
        }
        debug_assert_eq!(probs.len(), access_range);

        Self {
            access_range,
            region_size,
            theta,
            probs,
        }
    }

    /// The paper's default workload: AccessRange 1000, RegionSize 50,
    /// θ = 0.95 (Table 4).
    pub fn paper_default() -> Self {
        Self::new(1000, 50, 0.95)
    }

    /// Number of logical pages with non-zero access probability.
    pub fn access_range(&self) -> usize {
        self.access_range
    }

    /// Pages per region.
    pub fn region_size(&self) -> usize {
        self.region_size
    }

    /// Zipf parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.access_range.div_ceil(self.region_size)
    }

    /// Access probability of logical page `page` (0 beyond the range).
    pub fn prob(&self, page: usize) -> f64 {
        self.probs.get(page).copied().unwrap_or(0.0)
    }

    /// The full probability vector over `0..access_range` (sums to 1).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 0.95, 2.0] {
            let z = RegionZipf::new(1000, 50, theta);
            let sum: f64 = z.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta {theta}: sum {sum}");
        }
    }

    #[test]
    fn uniform_within_region() {
        let z = RegionZipf::new(100, 10, 0.95);
        for region in 0..10 {
            let first = z.prob(region * 10);
            for page in region * 10..(region + 1) * 10 {
                assert_eq!(z.prob(page), first, "page {page}");
            }
        }
    }

    #[test]
    fn regions_decrease_in_probability() {
        let z = RegionZipf::new(1000, 50, 0.95);
        for j in 1..z.num_regions() {
            assert!(
                z.prob(j * 50) < z.prob((j - 1) * 50),
                "region {j} not colder than region {}",
                j - 1
            );
        }
    }

    #[test]
    fn zipf_ratio_matches_formula() {
        let z = RegionZipf::new(100, 10, 0.95);
        // P(region 1) / P(region 2) = 2^0.95 per page.
        let ratio = z.prob(0) / z.prob(10);
        assert!((ratio - 2f64.powf(0.95)).abs() < 1e-12);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = RegionZipf::new(100, 10, 0.0);
        for page in 0..100 {
            assert!((z.prob(page) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_pages_have_zero_probability() {
        let z = RegionZipf::new(10, 5, 0.95);
        assert_eq!(z.prob(10), 0.0);
        assert_eq!(z.prob(10_000), 0.0);
    }

    #[test]
    fn ragged_final_region() {
        // 25 pages in regions of 10: regions of 10, 10, 5.
        let z = RegionZipf::new(25, 10, 1.0);
        assert_eq!(z.num_regions(), 3);
        let sum: f64 = z.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Region 3 weight (1/3) spread over 5 pages.
        let w3 = 1.0 / 3.0 / (1.0 + 0.5 + 1.0 / 3.0);
        assert!((z.prob(20) - w3 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_default_shape() {
        let z = RegionZipf::paper_default();
        assert_eq!(z.access_range(), 1000);
        assert_eq!(z.num_regions(), 20);
        assert_eq!(z.theta(), 0.95);
        // Hottest region holds far more than 1/20 of the mass.
        let hot: f64 = (0..50).map(|p| z.prob(p)).sum();
        assert!(hot > 0.2, "hot region mass {hot}");
    }

    #[test]
    #[should_panic(expected = "access range must be positive")]
    fn zero_access_range_panics() {
        let _ = RegionZipf::new(0, 10, 0.95);
    }

    #[test]
    #[should_panic(expected = "region size must be positive")]
    fn zero_region_size_panics() {
        let _ = RegionZipf::new(10, 0, 0.95);
    }
}
