//! Walker's alias method: O(1) sampling from a discrete distribution.
//!
//! The simulator draws tens of millions of page requests per experiment
//! sweep; linear or binary-search sampling would dominate the run time.
//! The alias method preprocesses the distribution into two tables in O(n)
//! and then samples with one uniform draw and one comparison.

use rand::Rng;

/// Preprocessed discrete distribution supporting O(1) sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold per bucket, scaled so 1.0 = always accept.
    accept: Vec<f64>,
    /// Alias target per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from (unnormalized, non-negative) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weights must be non-negative, got {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scale to mean 1 and split into under/over-full buckets.
        let mut accept: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &a) in accept.iter().enumerate() {
            if a < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large bucket donates what the small bucket lacks.
            accept[l as usize] -= 1.0 - accept[s as usize];
            if accept[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining buckets are exactly full modulo float error.
        for &i in small.iter().chain(large.iter()) {
            accept[i as usize] = 1.0;
        }

        Self { accept, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.len());
        if rng.random::<f64>() < self.accept[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_distribution() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 100_000);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_distribution() {
        let freq = empirical(&[8.0, 1.0, 1.0], 200_000);
        assert!((freq[0] - 0.8).abs() < 0.01, "{}", freq[0]);
        assert!((freq[1] - 0.1).abs() < 0.01, "{}", freq[1]);
    }

    #[test]
    fn unnormalized_weights_ok() {
        let a = empirical(&[0.2, 0.8], 100_000);
        let b = empirical(&[2.0, 8.0], 100_000);
        assert!((a[0] - b[0]).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_like_large_table() {
        let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / i as f64).collect();
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), 1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut first = 0u64;
        let draws = 200_000;
        for _ in 0..draws {
            if table.sample(&mut rng) == 0 {
                first += 1;
            }
        }
        let h1000: f64 = (1..=1000).map(|i| 1.0 / i as f64).sum();
        let expect = 1.0 / h1000;
        let got = first as f64 / draws as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
