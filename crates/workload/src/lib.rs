//! # bdisk-workload — client access distributions and page mappings
//!
//! Implements the workload side of the paper's simulation model
//! (Section 4):
//!
//! * [`RegionZipf`] — the client access distribution: pages `0..AccessRange`
//!   are grouped into regions of `RegionSize` pages; region `j` (1-based)
//!   gets probability weight `(1/j)^θ` and pages within a region are
//!   uniform. The paper uses θ = 0.95, `AccessRange` = 1000,
//!   `RegionSize` = 50.
//! * [`AliasTable`] — Walker's alias method for O(1) sampling from the
//!   distribution (the substrate that keeps multi-million-request runs
//!   cheap).
//! * [`Mapping`] — the logical→physical page mapping of Section 4.2: the
//!   identity, rotated by `Offset` (pushing the hottest pages to the end of
//!   the slowest disk), then perturbed by `Noise` (each page may swap its
//!   mapping with a page on a uniformly chosen disk). `Offset` models
//!   cache-aware program design; `Noise` models disagreement between the
//!   server's broadcast and this client's needs.
//! * [`AccessGenerator`] — glues the pieces into a request stream of
//!   physical pages.

#![warn(missing_docs)]

pub mod alias;
pub mod mapping;
pub mod zipf;

pub use alias::AliasTable;
pub use mapping::Mapping;
pub use zipf::RegionZipf;

use bdisk_sched::PageId;
use rand::Rng;

/// A client request stream: samples logical pages from the access
/// distribution and maps them to the physical pages the server broadcasts.
#[derive(Debug, Clone)]
pub struct AccessGenerator {
    alias: AliasTable,
    mapping: Mapping,
}

impl AccessGenerator {
    /// Builds a generator from a logical-page distribution and a mapping.
    pub fn new(distribution: &RegionZipf, mapping: Mapping) -> Self {
        Self::from_probs(distribution.probs(), mapping)
    }

    /// Builds a generator from an explicit logical-page probability vector.
    pub fn from_probs(probs: &[f64], mapping: Mapping) -> Self {
        Self {
            alias: AliasTable::new(probs),
            mapping,
        }
    }

    /// Draws the physical page for the client's next request.
    pub fn next_request<R: Rng>(&self, rng: &mut R) -> PageId {
        let logical = self.alias.sample(rng);
        self.mapping.to_physical(logical)
    }

    /// The mapping in use.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Replaces the logical→physical mapping mid-stream (workload drift:
    /// the hot set moves while the access *distribution* stays put). The
    /// alias table is untouched, so the swap consumes no random draws and
    /// the logical request stream continues bit-identically.
    pub fn set_mapping(&mut self, mapping: Mapping) {
        assert_eq!(
            mapping.len(),
            self.mapping.len(),
            "drift mapping must cover the same pages"
        );
        self.mapping = mapping;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generator_produces_mapped_pages() {
        let zipf = RegionZipf::new(10, 5, 0.95);
        let mapping = Mapping::identity(20);
        let g = AccessGenerator::new(&zipf, mapping);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = g.next_request(&mut rng);
            assert!(p.index() < 10, "only logical pages 0..10 are accessed");
        }
    }

    #[test]
    fn generator_respects_offset_mapping() {
        let zipf = RegionZipf::new(4, 2, 0.95);
        // Offset 2 in a 6-page database: logical 0 → physical 4.
        let mapping = Mapping::with_offset(6, 2);
        let g = AccessGenerator::new(&zipf, mapping);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = g.next_request(&mut rng);
            // logical 0..4 → physical (i+6-2) mod 6 = {4, 5, 0, 1}.
            assert!(matches!(p.index(), 4 | 5 | 0 | 1), "got {p}");
        }
    }
}
