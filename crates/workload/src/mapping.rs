//! Logical→physical page mapping: Offset and Noise (Section 4.2).
//!
//! The simulator separates the client's view of pages (*logical* pages,
//! ranked by the client's access heat) from the server's broadcast order
//! (*physical* pages, ranked by the server's beliefs). The mapping between
//! them is built in three steps, quoted from the paper:
//!
//! 1. "the mapping from logical to physical pages is generated as the
//!    identity function";
//! 2. "this mapping is shifted by Offset pages" — pushing the `Offset`
//!    hottest pages to the end of the slowest disk (used when the client
//!    cache pins the hottest pages, making fast-disk slots wasted on them);
//! 3. "for each page in the mapping, a coin weighted by Noise is tossed. If
//!    […] a page is selected to be swapped then a disk d is uniformly
//!    chosen to be its new destination. To make way for p, an existing page
//!    q on d is chosen, and p and q exchange mappings."
//!
//! A swap may land a page on its own disk, so `Noise` is "the upper limit
//! on the number of changes" (footnote 3).

use bdisk_sched::{DiskLayout, PageId};
use rand::Rng;

/// A bijective logical→physical page mapping over a server database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// `l2p[logical] = physical`.
    l2p: Vec<u32>,
    /// `p2l[physical] = logical`.
    p2l: Vec<u32>,
}

impl Mapping {
    /// The identity mapping over `n` pages (Offset 0, Noise 0).
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "mapping needs at least one page");
        let l2p: Vec<u32> = (0..n as u32).collect();
        Self {
            p2l: l2p.clone(),
            l2p,
        }
    }

    /// The identity rotated by `offset`: logical page `i` maps to physical
    /// page `(i − offset) mod n`, pushing the `offset` hottest logical
    /// pages to the end of the broadcast order (the tail of the slowest
    /// disk).
    pub fn with_offset(n: usize, offset: usize) -> Self {
        assert!(n > 0, "mapping needs at least one page");
        assert!(
            offset < n,
            "offset {offset} must be smaller than the database ({n})"
        );
        let l2p: Vec<u32> = (0..n).map(|i| ((i + n - offset) % n) as u32).collect();
        let mut p2l = vec![0u32; n];
        for (l, &p) in l2p.iter().enumerate() {
            p2l[p as usize] = l as u32;
        }
        Self { l2p, p2l }
    }

    /// Full Section 4.2 construction: identity, then `offset` rotation,
    /// then per-page noise swaps.
    ///
    /// `noise` is the per-page swap probability in `[0, 1]`. For each
    /// logical page (in order), with probability `noise` a destination disk
    /// is drawn uniformly, a resident of that disk is drawn uniformly, and
    /// the two pages exchange physical positions.
    pub fn build<R: Rng>(layout: &DiskLayout, offset: usize, noise: f64, rng: &mut R) -> Self {
        let mut m = Self::with_offset(layout.total_pages(), offset);
        m.apply_noise(layout, noise, rng);
        m
    }

    /// Applies the Noise perturbation step to an existing mapping: for each
    /// logical page, with probability `noise`, swap its physical position
    /// with a uniformly chosen resident of a uniformly chosen disk.
    pub fn apply_noise<R: Rng>(&mut self, layout: &DiskLayout, noise: f64, rng: &mut R) {
        assert!(
            (0.0..=1.0).contains(&noise),
            "noise must be in [0,1], got {noise}"
        );
        assert_eq!(
            layout.total_pages(),
            self.len(),
            "layout and mapping must cover the same pages"
        );
        if noise == 0.0 {
            return;
        }
        for logical in 0..self.len() {
            if rng.random::<f64>() < noise {
                let disk = rng.random_range(0..layout.num_disks());
                let range = layout.page_range(disk);
                let dest = rng.random_range(range.start..range.end) as u32;
                self.swap_physical(self.l2p[logical], dest);
            }
        }
    }

    /// This mapping with every physical destination rotated forward by
    /// `by` pages: `l2p'[i] = (l2p[i] + by) mod n`. Composing rotations
    /// models a *drifting* hot set — the client's hottest logical pages
    /// slide through the server's broadcast order while the relative
    /// perturbation (offset, noise) of the base mapping is preserved.
    pub fn rotated(&self, by: usize) -> Self {
        let n = self.len();
        let l2p: Vec<u32> = self
            .l2p
            .iter()
            .map(|&p| ((p as usize + by) % n) as u32)
            .collect();
        let mut p2l = vec![0u32; n];
        for (l, &p) in l2p.iter().enumerate() {
            p2l[p as usize] = l as u32;
        }
        Self { l2p, p2l }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.l2p.len()
    }

    /// True when the mapping covers no pages (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.l2p.is_empty()
    }

    /// Physical page broadcast for logical page `logical`.
    pub fn to_physical(&self, logical: usize) -> PageId {
        PageId(self.l2p[logical])
    }

    /// Logical page carried by physical page `physical`.
    pub fn to_logical(&self, physical: PageId) -> usize {
        self.p2l[physical.index()] as usize
    }

    /// Swaps the logical pages occupying two physical positions.
    fn swap_physical(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        let la = self.p2l[a as usize];
        let lb = self.p2l[b as usize];
        self.l2p[la as usize] = b;
        self.l2p[lb as usize] = a;
        self.p2l[a as usize] = lb;
        self.p2l[b as usize] = la;
    }

    /// Translates a logical-page probability vector into physical-page
    /// space: `result[physical] = probs[logical]`, zero where the logical
    /// page is beyond the client's access range.
    ///
    /// This is what the idealized `P`/`PIX` policies consume: the true
    /// access probability of every page the server broadcasts.
    pub fn physical_probs(&self, logical_probs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        for (logical, &p) in logical_probs.iter().enumerate() {
            out[self.l2p[logical] as usize] = p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn assert_bijective(m: &Mapping) {
        let n = m.len();
        let mut seen = vec![false; n];
        for l in 0..n {
            let p = m.to_physical(l);
            assert!(!seen[p.index()], "physical {p} hit twice");
            seen[p.index()] = true;
            assert_eq!(m.to_logical(p), l, "inverse broken at logical {l}");
        }
    }

    #[test]
    fn identity_is_identity() {
        let m = Mapping::identity(10);
        for l in 0..10 {
            assert_eq!(m.to_physical(l), PageId(l as u32));
        }
        assert_bijective(&m);
    }

    #[test]
    fn offset_pushes_hottest_to_tail() {
        // Figure 4 semantics: the K hottest logical pages land at the end
        // of the broadcast order.
        let m = Mapping::with_offset(10, 3);
        assert_eq!(m.to_physical(0), PageId(7));
        assert_eq!(m.to_physical(1), PageId(8));
        assert_eq!(m.to_physical(2), PageId(9));
        assert_eq!(m.to_physical(3), PageId(0)); // colder pages move up
        assert_eq!(m.to_physical(9), PageId(6));
        assert_bijective(&m);
    }

    #[test]
    fn offset_zero_is_identity() {
        assert_eq!(Mapping::with_offset(8, 0), Mapping::identity(8));
    }

    #[test]
    #[should_panic(expected = "must be smaller")]
    fn offset_must_be_less_than_db() {
        let _ = Mapping::with_offset(5, 5);
    }

    #[test]
    fn noise_zero_keeps_offset_mapping() {
        let layout = DiskLayout::with_delta(&[2, 3, 5], 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Mapping::build(&layout, 4, 0.0, &mut rng);
        assert_eq!(m, Mapping::with_offset(10, 4));
    }

    #[test]
    fn noise_preserves_bijection() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        for seed in 0..5 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for noise in [0.15, 0.45, 0.75, 1.0] {
                let m = Mapping::build(&layout, 100, noise, &mut rng);
                assert_bijective(&m);
            }
        }
    }

    #[test]
    fn noise_moves_pages_proportionally() {
        let layout = DiskLayout::with_delta(&[100, 400, 500], 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let base = Mapping::with_offset(1000, 0);
        let low = Mapping::build(&layout, 0, 0.15, &mut rng);
        let high = Mapping::build(&layout, 0, 0.75, &mut rng);
        let moved = |m: &Mapping| {
            (0..1000)
                .filter(|&l| m.to_physical(l) != base.to_physical(l))
                .count()
        };
        let (lo, hi) = (moved(&low), moved(&high));
        assert!(lo > 0, "15% noise moved nothing");
        assert!(hi > lo, "75% noise ({hi}) should move more than 15% ({lo})");
        // Noise is an upper bound on changes (swaps can be intra-disk
        // no-ops), so 15% noise cannot move more than ~2x 15% of pages
        // (each swap moves two pages).
        assert!(lo <= 2 * 150 + 60, "moved {lo}");
    }

    #[test]
    fn rotated_composes_and_stays_bijective() {
        let m = Mapping::with_offset(10, 3);
        let r = m.rotated(4);
        assert_bijective(&r);
        for l in 0..10 {
            assert_eq!(r.to_physical(l).0, (m.to_physical(l).0 + 4) % 10);
        }
        // Rotating by n is the identity on the rotation.
        assert_eq!(m.rotated(10), m);
        // Two rotations compose additively.
        assert_eq!(m.rotated(3).rotated(4), m.rotated(7));
    }

    #[test]
    fn physical_probs_follow_mapping() {
        let m = Mapping::with_offset(6, 2);
        // Logical probs over an access range of 3 pages.
        let probs = [0.5, 0.3, 0.2];
        let phys = m.physical_probs(&probs);
        // logical 0 → physical 4, 1 → 5, 2 → 0.
        assert_eq!(phys, vec![0.2, 0.0, 0.0, 0.0, 0.5, 0.3]);
        let sum: f64 = phys.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_noise_still_bijective_and_total_mass_preserved() {
        let layout = DiskLayout::with_delta(&[10, 20, 30], 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = Mapping::build(&layout, 0, 1.0, &mut rng);
        assert_bijective(&m);
        let probs: Vec<f64> = (0..30).map(|i| (30 - i) as f64).collect();
        let phys = m.physical_probs(&probs);
        let a: f64 = probs.iter().sum();
        let b: f64 = phys.iter().sum();
        assert!((a - b).abs() < 1e-9);
    }
}
