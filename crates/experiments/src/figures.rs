//! The simulation-driven figures: 5, 6, 7, 8, 9, 10, 11, 13, 14, 15.
//!
//! Each function regenerates the rows/series of one paper figure at the
//! requested scale and writes both an aligned table to stdout and a CSV
//! under `results/`.

use bdisk_cache::PolicyKind;
use bdisk_sim::{sweep, SimConfig};

use crate::common::{
    base_config, caching_config, layout, print_table, run_point, threads, write_csv, Scale, DELTAS,
    NOISES,
};

/// One sweep point: a layout name, Δ, and a config.
struct Point {
    config_name: &'static str,
    delta: u64,
    cfg: SimConfig,
}

/// Runs a batch of points in parallel, returning mean response times.
fn run_points(points: Vec<Point>, scale: Scale) -> Vec<f64> {
    sweep(points, threads(), |p| {
        let l = layout(p.config_name, p.delta);
        run_point(&p.cfg, &l, scale).mean_response_time
    })
}

/// Figure 5: client performance vs Δ, no cache, no noise, configs D1–D5.
pub fn fig5(scale: Scale) {
    let configs = ["D1", "D2", "D3", "D4", "D5"];
    let mut points = Vec::new();
    for &name in &configs {
        for &delta in &DELTAS {
            points.push(Point {
                config_name: name,
                delta,
                cfg: base_config(scale),
            });
        }
    }
    let results = run_points(points, scale);

    let xs: Vec<String> = DELTAS.iter().map(|d| d.to_string()).collect();
    let series: Vec<(String, Vec<f64>)> = configs
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let sizes = crate::common::disk_config(name);
            let label = format!("{name}{sizes:?}");
            (
                label,
                results[i * DELTAS.len()..(i + 1) * DELTAS.len()].to_vec(),
            )
        })
        .collect();
    // Short labels for the printed table.
    let short: Vec<(String, Vec<f64>)> = configs
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                name.to_string(),
                results[i * DELTAS.len()..(i + 1) * DELTAS.len()].to_vec(),
            )
        })
        .collect();
    print_table(
        "Figure 5: response time vs Delta (CacheSize=1, Noise=0%)",
        "Delta",
        &xs,
        &short,
    );
    write_csv("fig5.csv", "delta", &xs, &series);
}

/// Shared driver for the noise-sensitivity figures (6, 7, 8, 9):
/// x = Δ, one series per noise level, fixed disk config and policy/cache.
fn noise_vs_delta(
    title: &str,
    csv: &str,
    config_name: &'static str,
    make_cfg: impl Fn(f64) -> SimConfig,
    scale: Scale,
) {
    let mut points = Vec::new();
    for &noise in &NOISES {
        for &delta in &DELTAS {
            points.push(Point {
                config_name,
                delta,
                cfg: make_cfg(noise),
            });
        }
    }
    let results = run_points(points, scale);

    let xs: Vec<String> = DELTAS.iter().map(|d| d.to_string()).collect();
    let series: Vec<(String, Vec<f64>)> = NOISES
        .iter()
        .enumerate()
        .map(|(i, noise)| {
            (
                format!("{}%", (noise * 100.0) as u32),
                results[i * DELTAS.len()..(i + 1) * DELTAS.len()].to_vec(),
            )
        })
        .collect();
    print_table(title, "Delta", &xs, &series);
    write_csv(csv, "delta", &xs, &series);
}

/// Figure 6: noise sensitivity of D3 ⟨2500,2500⟩, no cache.
pub fn fig6(scale: Scale) {
    noise_vs_delta(
        "Figure 6: noise sensitivity, D3 <2500,2500>, CacheSize=1",
        "fig6.csv",
        "D3",
        |noise| SimConfig {
            noise,
            ..base_config(scale)
        },
        scale,
    );
}

/// Figure 7: noise sensitivity of D5 ⟨500,2000,2500⟩, no cache.
pub fn fig7(scale: Scale) {
    noise_vs_delta(
        "Figure 7: noise sensitivity, D5 <500,2000,2500>, CacheSize=1",
        "fig7.csv",
        "D5",
        |noise| SimConfig {
            noise,
            ..base_config(scale)
        },
        scale,
    );
}

/// Figure 8: noise sensitivity of D5 with a 500-page cache under `P`.
pub fn fig8(scale: Scale) {
    noise_vs_delta(
        "Figure 8: noise sensitivity, D5, CacheSize=500, policy P",
        "fig8.csv",
        "D5",
        |noise| caching_config(scale, PolicyKind::P, noise),
        scale,
    );
}

/// Figure 9: noise sensitivity of D5 with a 500-page cache under `PIX`.
pub fn fig9(scale: Scale) {
    noise_vs_delta(
        "Figure 9: noise sensitivity, D5, CacheSize=500, policy PIX",
        "fig9.csv",
        "D5",
        |noise| caching_config(scale, PolicyKind::Pix, noise),
        scale,
    );
}

/// Figure 10: P vs PIX with varying noise at Δ ∈ {3, 5}, flat baseline.
pub fn fig10(scale: Scale) {
    let mut points = Vec::new();
    // Series: P Δ3, P Δ5, PIX Δ3, PIX Δ5, flat (Δ0).
    let series_spec: Vec<(&str, PolicyKind, u64)> = vec![
        ("P d3", PolicyKind::P, 3),
        ("P d5", PolicyKind::P, 5),
        ("PIX d3", PolicyKind::Pix, 3),
        ("PIX d5", PolicyKind::Pix, 5),
        ("flat", PolicyKind::P, 0),
    ];
    for &(_, policy, delta) in &series_spec {
        for &noise in &NOISES {
            points.push(Point {
                config_name: "D5",
                delta,
                cfg: caching_config(scale, policy, noise),
            });
        }
    }
    let results = run_points(points, scale);

    let xs: Vec<String> = NOISES
        .iter()
        .map(|n| format!("{}%", (n * 100.0) as u32))
        .collect();
    let series: Vec<(String, Vec<f64>)> = series_spec
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            (
                name.to_string(),
                results[i * NOISES.len()..(i + 1) * NOISES.len()].to_vec(),
            )
        })
        .collect();
    print_table(
        "Figure 10: P vs PIX with varying noise (D5, CacheSize=500)",
        "Noise",
        &xs,
        &series,
    );
    write_csv("fig10.csv", "noise", &xs, &series);
}

/// Shared driver for the access-location figures (11 and 14): percentage
/// of requests satisfied by the cache and by each disk.
fn access_locations(title: &str, csv: &str, policies: &[PolicyKind], scale: Scale) {
    let points: Vec<PolicyKind> = policies.to_vec();
    let rows = sweep(points, threads(), |&policy| {
        let l = layout("D5", 3);
        let cfg = caching_config(scale, policy, 0.30);
        run_point(&cfg, &l, scale).access_fractions
    });

    println!("\n=== {title} ===");
    println!(
        "{:>8}{:>10}{:>10}{:>10}{:>10}",
        "policy", "cache", "disk1", "disk2", "disk3"
    );
    for (policy, fr) in policies.iter().zip(&rows) {
        println!(
            "{:>8}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%",
            policy.name(),
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0
        );
    }
    let xs: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    let series: Vec<(String, Vec<f64>)> = ["cache", "disk1", "disk2", "disk3"]
        .iter()
        .enumerate()
        .map(|(j, name)| (name.to_string(), rows.iter().map(|r| r[j]).collect()))
        .collect();
    write_csv(csv, "policy", &xs, &series);
}

/// Figure 11: access locations for P vs PIX (D5, Noise 30%, Δ = 3).
pub fn fig11(scale: Scale) {
    access_locations(
        "Figure 11: access locations, P vs PIX (D5, CacheSize=500, Noise=30%, Delta=3)",
        "fig11.csv",
        &[PolicyKind::P, PolicyKind::Pix],
        scale,
    );
}

/// Figure 13: LRU vs L vs LIX vs PIX over Δ (D5, Noise 30%).
pub fn fig13(scale: Scale) {
    let policies = [
        PolicyKind::Lru,
        PolicyKind::L,
        PolicyKind::Lix,
        PolicyKind::Pix,
    ];
    let mut points = Vec::new();
    for &policy in &policies {
        for &delta in &DELTAS {
            points.push(Point {
                config_name: "D5",
                delta,
                cfg: caching_config(scale, policy, 0.30),
            });
        }
    }
    let results = run_points(points, scale);

    let xs: Vec<String> = DELTAS.iter().map(|d| d.to_string()).collect();
    let series: Vec<(String, Vec<f64>)> = policies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.name().to_string(),
                results[i * DELTAS.len()..(i + 1) * DELTAS.len()].to_vec(),
            )
        })
        .collect();
    print_table(
        "Figure 13: sensitivity to Delta (D5, CacheSize=500, Noise=30%)",
        "Delta",
        &xs,
        &series,
    );
    write_csv("fig13.csv", "delta", &xs, &series);
}

/// Figure 14: access locations for LRU, L, LIX (D5, Δ = 3, Noise 30%).
pub fn fig14(scale: Scale) {
    access_locations(
        "Figure 14: page access locations (D5, CacheSize=500, Noise=30%, Delta=3)",
        "fig14.csv",
        &[PolicyKind::Lru, PolicyKind::L, PolicyKind::Lix],
        scale,
    );
}

/// Figure 15: LRU vs L vs LIX over noise at Δ = 3.
pub fn fig15(scale: Scale) {
    let policies = [PolicyKind::Lru, PolicyKind::L, PolicyKind::Lix];
    let mut points = Vec::new();
    for &policy in &policies {
        for &noise in &NOISES {
            points.push(Point {
                config_name: "D5",
                delta: 3,
                cfg: caching_config(scale, policy, noise),
            });
        }
    }
    let results = run_points(points, scale);

    let xs: Vec<String> = NOISES
        .iter()
        .map(|n| format!("{}%", (n * 100.0) as u32))
        .collect();
    let series: Vec<(String, Vec<f64>)> = policies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.name().to_string(),
                results[i * NOISES.len()..(i + 1) * NOISES.len()].to_vec(),
            )
        })
        .collect();
    print_table(
        "Figure 15: noise sensitivity (D5, CacheSize=500, Delta=3)",
        "Noise",
        &xs,
        &series,
    );
    write_csv("fig15.csv", "noise", &xs, &series);
}
