//! `repro timeline` — the wait-attribution waterfall.
//!
//! Runs small live fleets on the deterministic in-memory bus with span
//! sampling at 1-in-1 (every measured request traced), over a grid of
//! policy × channel count × loss rate, and decomposes every response
//! time into the four wait phases of `bdisk_obs::trace`:
//!
//! * **broadcast** — the wait the schedule itself imposes (time to the
//!   next airing on the page's own channel, no tuner movement),
//! * **switch** — extra wait caused by retuning across channels,
//! * **loss** — extra wait past the expected airing (lost frames ride
//!   the next periodic broadcast),
//! * **credit** — wait *saved* by coded repair slots decoding a lost
//!   page before its next periodic airing.
//!
//! The phases telescope: `broadcast + switch + loss − credit` must equal
//! the recorded response time **bit-exactly** for every span — the run
//! asserts this in process over every collected span and prints a
//! `conservation: OK` witness line that CI greps for. Outputs:
//!
//! * `timeline.csv` — per-phase p50/p99/p999 (and totals) per grid point,
//! * `waterfall.csv` — the first traced client's request-by-request
//!   phase breakdown at the lossy operating point, ready to plot as a
//!   waterfall.

use bdisk_broker::{
    Backpressure, BroadcastEngine, BusTuning, EngineConfig, FaultPlan, InMemoryBus, LiveClient,
    LiveClientResult,
};
use bdisk_cache::PolicyKind;
use bdisk_obs::trace::{self, Span, REQUEST_PHASE_NAMES};
use bdisk_sched::BroadcastPlan;
use bdisk_sim::{seeds_from_base, SimConfig};

use crate::common::{self, Scale};
use crate::live::{self, LiveOptions};

/// Policies compared: the paper's broadcast-aware winner vs the classic
/// baseline — the waterfall shows *where* PIX buys its wins.
const POLICIES: [PolicyKind; 2] = [PolicyKind::Pix, PolicyKind::Lru];

/// Clients per grid point (each with its own derived seed).
const CLIENTS_PER_POINT: usize = 4;

/// Retune penalty (slots) used for the multi-channel points, so the
/// switch phase is visible instead of structurally zero.
const SWITCH_SLOTS: f64 = 2.0;

/// Erasure rate of the lossy points.
const LOSS_RATE: f64 = 0.10;

/// Rows kept in `waterfall.csv`.
const WATERFALL_MAX_ROWS: usize = 512;

/// One cell of the grid.
#[derive(Clone, Copy)]
struct Point {
    policy: PolicyKind,
    channels: usize,
    loss: f64,
}

impl Point {
    fn label(&self) -> String {
        format!(
            "{}/c{}/l{:.2}",
            self.policy.name().to_lowercase(),
            self.channels,
            self.loss
        )
    }
}

/// The grid: both policies at 1 and 2 channels lossless, plus a lossy
/// single-channel point per policy.
fn grid() -> Vec<Point> {
    let mut points = Vec::new();
    for &policy in &POLICIES {
        for channels in [1usize, 2] {
            points.push(Point {
                policy,
                channels,
                loss: 0.0,
            });
        }
        points.push(Point {
            policy,
            channels: 1,
            loss: LOSS_RATE,
        });
    }
    points
}

/// The Figure 13 caching config for one grid point.
fn config(scale: Scale, point: Point) -> SimConfig {
    SimConfig {
        channels: point.channels,
        switch_slots: if point.channels > 1 {
            SWITCH_SLOTS
        } else {
            0.0
        },
        ..common::caching_config(scale, point.policy, 0.30)
    }
}

/// Runs one grid point's fleet on the deterministic bus and returns the
/// per-client results (spans included — sampling is already on).
fn run_point(scale: Scale, opts: &LiveOptions, point: Point) -> Vec<LiveClientResult> {
    let layout = common::layout("D5", 3);
    let plan = BroadcastPlan::generate(&layout, point.channels).expect("paper layout is valid");
    let seeds = seeds_from_base(common::context().base_seed, CLIENTS_PER_POINT);
    let cfg = config(scale, point);

    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    if point.loss > 0.0 {
        bus.set_fault_plan(FaultPlan::erasure_only(
            common::context().base_seed ^ 0x7135,
            point.loss,
        ));
    }
    let subs: Vec<_> = seeds.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = seeds
        .iter()
        .map(|&seed| {
            LiveClient::with_plan(&cfg, &layout, plan.clone(), seed).expect("valid client config")
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        plan,
        EngineConfig {
            max_slots: 100_000_000,
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        engine.run(&mut bus);
        for h in handles {
            h.join().expect("timeline client must not panic");
        }
    })
    .expect("timeline run must not panic");

    clients.into_iter().map(|c| c.into_results()).collect()
}

/// Nearest-rank percentile over floats; 0 when empty. Sorts in place.
fn pct(xs: &mut [f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let rank = ((xs.len() as f64) * q).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// Runs the grid, asserts conservation over every span, writes
/// `timeline.csv` and `waterfall.csv`.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = live::start_metrics(opts);
    // Every measured request traced: the waterfall wants the full
    // population, not a sample.
    trace::set_sample_every(1);

    let points = grid();
    println!(
        "\n=== timeline: wait attribution, D5, Delta=3, Noise=30%, {} clients/point, \
         {} grid points ===",
        CLIENTS_PER_POINT,
        points.len()
    );

    let mut xs = Vec::new();
    // series[phase][quantile] plus totals, flattened below.
    let quantiles = [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for phase in REQUEST_PHASE_NAMES {
        for (qname, _) in &quantiles {
            series.push((format!("{phase}_{qname}"), Vec::new()));
        }
    }
    for (qname, _) in &quantiles {
        series.push((format!("total_{qname}"), Vec::new()));
    }
    series.push(("spans".to_string(), Vec::new()));

    let mut conserved: u64 = 0;
    let mut waterfall: Vec<Span> = Vec::new();
    for point in &points {
        let results = run_point(scale, opts, *point);
        let spans: Vec<&Span> = results.iter().flat_map(|r| r.spans.iter()).collect();
        assert!(
            !spans.is_empty(),
            "1-in-1 sampling produced no spans at {}",
            point.label()
        );

        // The tentpole invariant, checked over the whole population:
        // broadcast + switch + loss − credit must reproduce the recorded
        // response time to the bit, for every span.
        for span in &spans {
            assert_eq!(
                span.phase_sum().to_bits(),
                span.total.to_bits(),
                "conservation violated at {}: phases {:?} vs total {}",
                point.label(),
                span.phases,
                span.total
            );
        }
        conserved += spans.len() as u64;

        // Structural sanity: the grid is built so each mechanism shows up
        // where (and only where) it can.
        let phase_total = |i: usize| spans.iter().map(|s| s.phases[i]).sum::<f64>();
        if point.channels > 1 {
            assert!(
                phase_total(1) > 0.0,
                "2-channel point {} recorded no switch wait",
                point.label()
            );
        } else {
            assert_eq!(phase_total(1), 0.0, "switch wait on a single channel");
        }
        if point.loss > 0.0 {
            assert!(
                phase_total(2) > 0.0,
                "lossy point {} recorded no loss wait",
                point.label()
            );
        } else {
            assert_eq!(
                phase_total(2),
                0.0,
                "loss wait on the lossless bus at {}",
                point.label()
            );
        }

        let mut col = 0;
        for phase in 0..REQUEST_PHASE_NAMES.len() {
            let mut vals: Vec<f64> = spans.iter().map(|s| s.phases[phase]).collect();
            for (_, q) in &quantiles {
                series[col].1.push(pct(&mut vals, *q));
                col += 1;
            }
        }
        let mut totals: Vec<f64> = spans.iter().map(|s| s.total).collect();
        for (_, q) in &quantiles {
            series[col].1.push(pct(&mut totals, *q));
            col += 1;
        }
        series[col].1.push(spans.len() as f64);

        println!(
            "  {:<14} {:>7} spans: broadcast p99 {:>7.1}  switch p99 {:>5.1}  \
             loss p99 {:>6.1}  credit p99 {:>5.1}  total p999 {:>7.1}",
            point.label(),
            spans.len(),
            series[1].1.last().unwrap(),
            series[4].1.last().unwrap(),
            series[7].1.last().unwrap(),
            series[10].1.last().unwrap(),
            series[13].1.last().unwrap(),
        );
        xs.push(point.label());

        // The lossy PIX point feeds the request-by-request waterfall.
        if waterfall.is_empty() && point.loss > 0.0 {
            waterfall = results[0]
                .spans
                .iter()
                .take(WATERFALL_MAX_ROWS)
                .copied()
                .collect();
        }
    }

    println!(
        "conservation: OK — {conserved} spans, phases telescope bit-exactly \
         to the recorded wait"
    );

    common::write_csv("timeline.csv", "point", &xs, &series);

    let wf_xs: Vec<String> = waterfall.iter().map(|s| s.index.to_string()).collect();
    let wf_series: Vec<(String, Vec<f64>)> = REQUEST_PHASE_NAMES
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            (
                phase.to_string(),
                waterfall.iter().map(|s| s.phases[i]).collect(),
            )
        })
        .chain(std::iter::once((
            "total".to_string(),
            waterfall.iter().map(|s| s.total).collect(),
        )))
        .collect();
    common::write_csv("waterfall.csv", "request", &wf_xs, &wf_series);

    // Leave the 1-in-64 production cadence on while the endpoint lingers
    // (so `/trace` scrapes keep working); off otherwise.
    trace::set_sample_every(if opts.metrics_addr.is_some() { 64 } else { 0 });
    live::linger(server, opts.serve_secs);
}
