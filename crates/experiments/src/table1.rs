//! Table 1: expected delay for the Figure 2 example programs, analytic and
//! simulated.

use bdesim::{ProcessExecutor, Time};
use bdisk_analytic::table1::{figure2_programs, table1, TABLE1_DISTRIBUTIONS};
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::{ClientModel, PolicyKind, SimConfig};
use bdisk_workload::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::Scale;

/// Simulates one (program, distribution) cell of Table 1.
fn simulate_cell(program: &BroadcastProgram, probs: &[f64], scale: Scale) -> f64 {
    // A single flat "disk" of 3 pages is enough context for the baselines;
    // the cache holds one page, so replacement policy is irrelevant.
    let layout = DiskLayout::new(vec![3], vec![1]).expect("3-page disk");
    let cfg = SimConfig {
        access_range: 3,
        region_size: 1,
        // Table 1 measures raw broadcast delay for "a request arriving at
        // a random time": no retention at all, and think jitter spanning
        // many periods so request instants decorrelate from the previous
        // arrival (the programs are only 3–4 slots long).
        cache_size: 0,
        think_jitter: 50.0,
        policy: PolicyKind::P,
        requests: scale.requests() * 4, // cells are cheap; cut noise further
        warmup_requests: 100,
        think_time: 2.0,
        ..SimConfig::default()
    };
    let rng = StdRng::seed_from_u64(4242);
    let client = ClientModel::with_workload(
        &cfg,
        &layout,
        program.clone(),
        probs,
        Mapping::identity(3),
        rng,
    )
    .expect("valid Table 1 cell");
    let mut ex = ProcessExecutor::new();
    ex.spawn_at(Time::ZERO, client);
    ex.run_to_completion();
    ex.into_states().remove(0).into_outcome().mean_response_time
}

/// Regenerates Table 1 and prints analytic vs simulated values.
pub fn run(scale: Scale) {
    println!("\n=== Table 1: Expected Delay (broadcast units) ===");
    println!("programs: flat = A B C | skewed = A A B C | multi-disk = A B A C\n");
    println!(
        "{:>22} | {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7}",
        "P(A),P(B),P(C)", "flat", "skew", "multi", "flat~", "skew~", "multi~"
    );
    println!("{:->22}-+-{}-+-{}", "", "-".repeat(20), "-".repeat(23));

    let rows = table1();
    let (flat, skewed, multi) = figure2_programs();
    for (row, probs) in rows.iter().zip(TABLE1_DISTRIBUTIONS) {
        let sim_flat = simulate_cell(&flat, &probs, scale);
        let sim_skew = simulate_cell(&skewed, &probs, scale);
        let sim_multi = simulate_cell(&multi, &probs, scale);
        println!(
            "{:>6.3},{:>6.3},{:>6.3} | {:>6.2} {:>6.2} {:>6.2} | {:>7.2} {:>7.2} {:>7.2}",
            probs[0],
            probs[1],
            probs[2],
            row.flat,
            row.skewed,
            row.multi_disk,
            sim_flat,
            sim_skew,
            sim_multi
        );
    }
    println!("\n(analytic columns left; simulated '~' columns right)");
    println!("paper values: flat always 1.50; skewed 1.75→1.25; multi 1.67→1.00");
}
