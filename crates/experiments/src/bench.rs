//! `repro bench` — the tracked performance harness.
//!
//! Runs the broker fan-out and a simulator sweep at **fixed operating
//! points** and writes `BENCH_broker.json` / `BENCH_sim.json` into the
//! current directory, so the repo carries its own perf trajectory across
//! PRs: re-run `repro bench` on the same machine class and diff the JSON.
//!
//! * `BENCH_broker.json` (`bdisk-bench-broker/v4`) — TCP fan-out
//!   throughput over real loopback sockets for **both** transports
//!   (`threaded`: one writer thread per connection; `evented`: the
//!   single-threaded epoll loop), each fleet point drained by a
//!   [`TunerFleet`] that CRC-checks every frame. Every fan-out point is
//!   the **median of three** runs and carries a `spread` field (relative
//!   min–max range), so one scheduler hiccup cannot masquerade as a perf
//!   regression. The evented list climbs to 10 000 concurrent tuners —
//!   the fleet-mode point the threaded transport cannot reach. The
//!   historical lossless-bus rows (`bus_fanout`), the metrics on/off
//!   overhead comparison, and the span-tracing off vs 1-in-64 sampling
//!   pair ride along. The `pull_fanout` row is the hybrid push/pull
//!   stress point: a 1k+ requester fleet floods the upstream backchannel
//!   while the pull-enabled engine arbitrates every slot — the cost of
//!   the request drain + slot arbiter under saturation, tracked next to
//!   the pull-less rows it must stay comparable to.
//! * `BENCH_sim.json` — wall-clock of a Δ-sweep of the discrete-event
//!   simulator at the paper's D5 configuration.
//!
//! `--quick` shrinks slot counts and client fleets (the CI smoke mode);
//! the emitted JSON carries a `mode` field so full and quick runs are
//! never confused. `--clients-list N,N,...` overrides the fan-out fleet
//! sizes (the threaded transport skips entries above
//! [`THREADED_MAX_CLIENTS`] — a thread per connection does not survive
//! four-digit fleets). Both files are re-parsed and shape-checked with
//! the built-in JSON reader after writing — a malformed emitter fails the
//! run (and CI) instead of silently rotting the harness.

use std::time::{Duration, Instant};

use bdisk_broker::{
    raise_nofile_limit, Backpressure, BroadcastEngine, BusTuning, EngineConfig, EngineReport,
    EventedTcpTransport, FleetReport, InMemoryBus, PullConfig, PullMode, RequesterConfig,
    TcpTransport, TcpTransportConfig, Transport, TunerFleet,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::simulate;

use crate::common::{self, Scale};

/// Fixed fan-out operating point (chosen small enough that 256 clients ×
/// the full slot count stays inside a CI minute, large enough that the
/// steady state dominates startup).
const DISKS: [usize; 3] = [50, 200, 250];
const DELTA: u64 = 3;
const CAPACITY: usize = 256;

/// Largest fleet the threaded transport is asked to serve: beyond this,
/// one OS thread per connection stops being a transport and starts being
/// a scheduler benchmark.
const THREADED_MAX_CLIENTS: usize = 2048;

/// Repeats per tracked fan-out point: each row reports the median run.
const FANOUT_REPEATS: usize = 3;

/// Runs `point` [`FANOUT_REPEATS`] times; returns the median-throughput
/// run and the min–max spread relative to the median.
fn median_point<R>(mut point: impl FnMut() -> R, rate: impl Fn(&R) -> f64) -> (R, f64) {
    let mut runs: Vec<R> = (0..FANOUT_REPEATS).map(|_| point()).collect();
    runs.sort_by(|a, b| rate(a).total_cmp(&rate(b)));
    let spread = (rate(runs.last().expect("at least one run"))
        - rate(runs.first().expect("at least one run")))
        / rate(&runs[FANOUT_REPEATS / 2]).max(1e-9);
    (runs.swap_remove(FANOUT_REPEATS / 2), spread)
}

fn fanout_clients(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Full => &[1, 8, 64, 256],
        Scale::Quick => &[1, 4, 8],
    }
}

/// Fleet sizes for the TCP fan-out rows. The evented transport carries
/// the large points (up to the tracked 10k fleet in full mode); the
/// threaded reference stops where thread-per-connection stops making
/// sense.
fn tcp_clients(scale: Scale, evented: bool) -> &'static [usize] {
    match (scale, evented) {
        (Scale::Full, false) => &[1, 8, 64, 256],
        (Scale::Full, true) => &[1, 8, 64, 256, 1024, 10_000],
        (Scale::Quick, false) => &[1, 4, 8],
        (Scale::Quick, true) => &[1, 4, 8, 1000],
    }
}

fn fanout_slots(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 20_000,
        Scale::Quick => 2_000,
    }
}

/// Slots per TCP fan-out point, scaled down for huge fleets so total
/// frame deliveries (slots × clients) stay bounded.
fn tcp_slots(scale: Scale, clients: usize) -> u64 {
    let base = fanout_slots(scale);
    if clients >= 4096 {
        base / 10
    } else if clients >= 512 {
        base / 4
    } else {
        base
    }
}

fn sweep_deltas(scale: Scale) -> &'static [u64] {
    match scale {
        Scale::Full => &[0, 3, 7],
        Scale::Quick => &[0, 3],
    }
}

/// One fan-out measurement: `clients` subscribers drain a lossless bus as
/// fast as the engine can flush.
fn fanout_point(clients: usize, slots: u64, page_size: usize, tuning: BusTuning) -> EngineReport {
    let layout = DiskLayout::with_delta(&DISKS, DELTA).expect("bench layout is valid");
    let program = BroadcastProgram::generate(&layout).expect("bench program is valid");
    let mut bus = InMemoryBus::with_tuning(CAPACITY, Backpressure::Block, tuning);
    let subs: Vec<_> = (0..clients).map(|_| bus.subscribe()).collect();
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: slots,
            stop_when_no_clients: false,
            page_size,
            ..EngineConfig::default()
        },
    );
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = subs
            .into_iter()
            .map(|mut sub| {
                scope.spawn(move |_| {
                    let mut received = 0u64;
                    while sub.recv().is_some() {
                        received += 1;
                    }
                    received
                })
            })
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            let received = h.join().expect("bench client must not panic");
            assert_eq!(
                received, report.slots_sent,
                "lossless bench client missed frames"
            );
        }
        report
    })
    .expect("bench run must not panic");
    assert_eq!(report.slots_sent, slots);
    assert_eq!(report.frames_delivered, slots * clients as u64);
    report
}

/// The slice of both TCP transports the bench needs: bind address for the
/// fleet plus a readiness barrier. (`live.rs` has the same shim; neither
/// belongs in the broker's public `Transport` trait, which is
/// wire-agnostic.)
trait BenchTcpServer: Transport {
    fn local_addr(&self) -> std::net::SocketAddr;
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool;
}

impl BenchTcpServer for TcpTransport {
    fn local_addr(&self) -> std::net::SocketAddr {
        TcpTransport::local_addr(self)
    }
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        TcpTransport::wait_for_clients(self, n, timeout)
    }
}

impl BenchTcpServer for EventedTcpTransport {
    fn local_addr(&self) -> std::net::SocketAddr {
        EventedTcpTransport::local_addr(self)
    }
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        EventedTcpTransport::wait_for_clients(self, n, timeout)
    }
}

/// Transport config for a lossless-by-capacity TCP point: the backlog can
/// hold the whole run, so `DropNewest` never fires and the measured rate
/// is honest fan-out work, not drop throughput. The generous write
/// timeout is drain grace for `finish()` flushing a 10k-fleet tail.
fn tcp_point_config(slots: u64) -> TcpTransportConfig {
    TcpTransportConfig {
        queue_capacity: slots as usize + 64,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        write_timeout: Some(Duration::from_secs(60)),
    }
}

/// Aggregate fleet outcome, location-agnostic: computed from a
/// [`FleetReport`] when the fleet ran in-process, or parsed from the
/// one-line summary a `__tuner-fleet` child prints on stdout.
#[derive(Debug, Clone, Copy)]
struct FleetSummary {
    tuners: u64,
    frames: u64,
    bytes: u64,
    crc_errors: u64,
    tuners_with_gaps: u64,
    min_frames: u64,
    requests: u64,
}

impl FleetSummary {
    fn from_report(report: &FleetReport) -> FleetSummary {
        FleetSummary {
            tuners: report.tuners.len() as u64,
            frames: report.total_frames(),
            bytes: report.total_bytes(),
            crc_errors: report.total_crc_errors(),
            tuners_with_gaps: report.tuners_with_gaps() as u64,
            min_frames: report.min_frames(),
            requests: report.total_requests(),
        }
    }

    /// The child's stdout wire format — one greppable line.
    fn to_line(self) -> String {
        format!(
            "FLEET tuners={} frames={} bytes={} crc_errors={} \
             tuners_with_gaps={} min_frames={} requests={}",
            self.tuners,
            self.frames,
            self.bytes,
            self.crc_errors,
            self.tuners_with_gaps,
            self.min_frames,
            self.requests
        )
    }

    fn parse(text: &str) -> Option<FleetSummary> {
        let line = text.lines().find(|l| l.starts_with("FLEET "))?;
        let field = |key: &str| -> Option<u64> {
            let prefix = format!("{key}=");
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(prefix.as_str()))?
                .parse()
                .ok()
        };
        Some(FleetSummary {
            tuners: field("tuners")?,
            frames: field("frames")?,
            bytes: field("bytes")?,
            crc_errors: field("crc_errors")?,
            tuners_with_gaps: field("tuners_with_gaps")?,
            min_frames: field("min_frames")?,
            requests: field("requests")?,
        })
    }
}

/// Where a bench fleet runs. A loopback connection costs two descriptors
/// when tuners share the server's process; when `RLIMIT_NOFILE` has a hard
/// cap the process cannot raise (sandboxes commonly pin it), the largest
/// fleets re-exec this binary in hidden `__tuner-fleet` mode so client
/// ends spend a *second* process's descriptor budget — which is also the
/// honest topology: real tuners never share the broker's fd table.
enum BenchFleet {
    InProcess(TunerFleet),
    Child(std::process::Child),
}

impl BenchFleet {
    fn launch(addr: std::net::SocketAddr, clients: usize) -> BenchFleet {
        BenchFleet::launch_with(addr, clients, None)
    }

    fn launch_with(
        addr: std::net::SocketAddr,
        clients: usize,
        requester: Option<RequesterConfig>,
    ) -> BenchFleet {
        // In-process budget: two fds per tuner + listener/epoll/stdio slack.
        // `raise_nofile_limit` clamps to the hard cap, so even when the
        // answer is "child process", this raise covers the server ends.
        let want = 2 * clients as u64 + 512;
        let got = raise_nofile_limit(want).unwrap_or(0);
        if got >= want {
            let fleet = match requester {
                Some(cfg) => TunerFleet::launch_requesters(addr, clients, cfg),
                None => TunerFleet::launch(addr, clients),
            };
            return BenchFleet::InProcess(fleet.expect("launch tuner fleet"));
        }
        println!(
            "  (fd limit {got} < {want}: running the {clients}-tuner fleet \
             in a child process)"
        );
        let exe = std::env::current_exe().expect("bench binary path");
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("__tuner-fleet")
            .arg(addr.to_string())
            .arg(clients.to_string());
        if let Some(cfg) = requester {
            cmd.arg(cfg.every.to_string()).arg(cfg.pages.to_string());
        }
        let child = cmd
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn tuner-fleet child");
        BenchFleet::Child(child)
    }

    fn join(self) -> FleetSummary {
        match self {
            BenchFleet::InProcess(fleet) => {
                FleetSummary::from_report(&fleet.join().expect("tuner fleet must not fail"))
            }
            BenchFleet::Child(child) => {
                let out = child
                    .wait_with_output()
                    .expect("wait for tuner-fleet child");
                assert!(
                    out.status.success(),
                    "tuner-fleet child failed: {}",
                    out.status
                );
                let text = String::from_utf8_lossy(&out.stdout);
                FleetSummary::parse(&text)
                    .unwrap_or_else(|| panic!("bad tuner-fleet summary: {text:?}"))
            }
        }
    }
}

/// Hidden child mode (`repro __tuner-fleet <addr> <clients> [<every>
/// <pages>]`): runs a [`TunerFleet`] against an already-listening bench
/// server and prints a one-line [`FleetSummary`] on stdout. Exists so a
/// 10k-tuner fleet can spend its own process's `RLIMIT_NOFILE` budget
/// (see [`BenchFleet`]). With the optional `<every> <pages>` pair the
/// tuners also run requester mode: every tuner fires an upstream pull
/// request each `every` frames, cycling over `pages` pages.
pub fn tuner_fleet_child(args: &[String]) {
    let usage = "usage: repro __tuner-fleet <addr> <clients> [<every> <pages>]";
    let addr: std::net::SocketAddr = args.first().expect(usage).parse().expect(usage);
    let clients: usize = args.get(1).expect(usage).parse().expect(usage);
    let requester = match (args.get(2), args.get(3)) {
        (Some(every), Some(pages)) => Some(RequesterConfig {
            every: every.parse().expect(usage),
            pages: pages.parse().expect(usage),
        }),
        _ => None,
    };
    let _ = raise_nofile_limit(clients as u64 + 512);
    let fleet = match requester {
        Some(cfg) => TunerFleet::launch_requesters(addr, clients, cfg),
        None => TunerFleet::launch(addr, clients),
    }
    .expect("child: launch tuner fleet");
    let report = fleet.join().expect("child: tuner fleet failed");
    println!("{}", FleetSummary::from_report(&report).to_line());
}

/// One TCP fan-out measurement: a [`TunerFleet`] of `clients` drains the
/// broadcast over real loopback sockets while the engine free-runs. The
/// run must be perfectly lossless end to end — every tuner sees every
/// slot, CRC-intact and gap-free — or the point (and CI) fails.
fn tcp_fanout_point<T: BenchTcpServer>(
    mut transport: T,
    clients: usize,
    slots: u64,
    page_size: usize,
) -> (EngineReport, FleetSummary) {
    let fleet = BenchFleet::launch(transport.local_addr(), clients);
    assert!(
        transport.wait_for_clients(clients, Duration::from_secs(120)),
        "bench fleet of {clients} tuners failed to connect"
    );
    let layout = DiskLayout::with_delta(&DISKS, DELTA).expect("bench layout is valid");
    let program = BroadcastProgram::generate(&layout).expect("bench program is valid");
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: slots,
            stop_when_no_clients: false,
            page_size,
            ..EngineConfig::default()
        },
    );
    // `run` ends with `finish()`, which drains every backlog and closes
    // the connections — the fleet's signal that the broadcast is over.
    let report = engine.run(&mut transport);
    drop(transport);
    let fleet = fleet.join();
    assert_eq!(report.slots_sent, slots);
    assert_eq!(
        report.frames_delivered,
        slots * clients as u64,
        "lossless TCP bench dropped or disconnected ({clients} clients)"
    );
    assert_eq!(fleet.tuners, clients as u64);
    assert_eq!(
        fleet.min_frames, slots,
        "a tuner missed frames ({clients} clients)"
    );
    assert_eq!(fleet.frames, slots * clients as u64);
    assert!(fleet.bytes > 0);
    assert_eq!(fleet.crc_errors, 0);
    assert_eq!(fleet.tuners_with_gaps, 0);
    (report, fleet)
}

/// Runs the TCP fan-out grid over both transports, returning the emitted
/// JSON rows and whether an evented ≥10k-client point was measured.
fn tcp_fanout_rows(
    scale: Scale,
    page_size: usize,
    clients_list: Option<&[usize]>,
) -> (Vec<String>, bool) {
    let mut rows = Vec::new();
    let mut hit_10k = false;
    for evented in [false, true] {
        let name = if evented { "evented" } else { "threaded" };
        let list: Vec<usize> = match clients_list {
            Some(list) => list.to_vec(),
            None => tcp_clients(scale, evented).to_vec(),
        };
        for clients in list {
            if !evented && clients > THREADED_MAX_CLIENTS {
                println!(
                    "  {name:>8}: skipping {clients} clients \
                     (thread-per-connection caps at {THREADED_MAX_CLIENTS})"
                );
                continue;
            }
            let slots = tcp_slots(scale, clients);
            // (BenchFleet::launch handles the fd budget: it raises
            // RLIMIT_NOFILE and falls back to a child-process fleet when
            // the hard cap cannot cover both socket ends in-process.)
            let ((report, _fleet), spread) = median_point(
                || {
                    let config = tcp_point_config(slots);
                    if evented {
                        let transport =
                            EventedTcpTransport::bind(config).expect("bind evented transport");
                        tcp_fanout_point(transport, clients, slots, page_size)
                    } else {
                        let transport =
                            TcpTransport::bind(config).expect("bind threaded transport");
                        tcp_fanout_point(transport, clients, slots, page_size)
                    }
                },
                |(report, _)| report.slots_per_sec,
            );
            hit_10k |= evented && clients >= 10_000;
            let mb_per_sec =
                report.bytes_sent as f64 / 1e6 / report.elapsed.as_secs_f64().max(1e-9);
            println!(
                "  {name:>8} {clients:>5} clients × {slots:>5} slots: \
                 {:>9.0} slots/sec  ({:>8.1} MB/s wire fan-out, spread {:.1}%)",
                report.slots_per_sec,
                mb_per_sec,
                spread * 100.0
            );
            rows.push(format!(
                "    {{\"transport\": \"{name}\", \"clients\": {clients}, \"slots\": {slots}, \
                 \"slots_per_sec\": {:.1}, \"mb_per_sec\": {:.2}, \
                 \"frames_delivered\": {}, \"elapsed_sec\": {:.4}, \"spread\": {spread:.4}}}",
                report.slots_per_sec,
                mb_per_sec,
                report.frames_delivered,
                report.elapsed.as_secs_f64()
            ));
        }
    }
    (rows, hit_10k)
}

/// Requester fleet size for the tracked pull fan-out point: always past
/// the 1k-tuner mark the hybrid push/pull acceptance asks for.
fn pull_clients(scale: Scale) -> usize {
    match scale {
        Scale::Full => 2048,
        Scale::Quick => 1024,
    }
}

/// Upstream request cadence for the pull stress point: every tuner fires
/// one pull request per this many received frames, so a 1k fleet floods
/// the backchannel with ~64 requests per broadcast slot — far past the
/// arbiter's service capacity, which is the regime worth pricing.
const PULL_REQUEST_EVERY: u64 = 16;

/// One pull-enabled fan-out measurement: a requester [`TunerFleet`]
/// floods the upstream backchannel while the evented engine arbitrates
/// every slot through the [`bdisk_broker::SlotArbiter`]. Losslessness is
/// unchanged from the push-only points — pull airings replace slots
/// one-for-one, so every tuner still sees every slot, CRC-intact — and
/// the point additionally must show real backchannel traffic end to end.
fn pull_fanout_point(clients: usize, slots: u64, page_size: usize) -> (EngineReport, FleetSummary) {
    let layout = DiskLayout::with_delta(&DISKS, DELTA).expect("bench layout is valid");
    let mut transport =
        EventedTcpTransport::bind(tcp_point_config(slots)).expect("bind evented transport");
    let fleet = BenchFleet::launch_with(
        transport.local_addr(),
        clients,
        Some(RequesterConfig {
            every: PULL_REQUEST_EVERY,
            pages: layout.total_pages() as u32,
        }),
    );
    assert!(
        transport.wait_for_clients(clients, Duration::from_secs(120)),
        "pull bench fleet of {clients} requesters failed to connect"
    );
    let program = BroadcastProgram::generate(&layout).expect("bench program is valid");
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: slots,
            stop_when_no_clients: false,
            page_size,
            ..EngineConfig::default()
        },
    )
    .with_pull(PullConfig {
        mode: PullMode::Adaptive {
            max_ratio: 0.25,
            depth_target: clients,
        },
        ..PullConfig::default()
    });
    let report = engine.run(&mut transport);
    drop(transport);
    let fleet = fleet.join();
    assert_eq!(report.slots_sent, slots);
    assert_eq!(
        report.frames_delivered,
        slots * clients as u64,
        "lossless pull bench dropped or disconnected ({clients} requesters)"
    );
    assert_eq!(fleet.tuners, clients as u64);
    assert_eq!(
        fleet.min_frames, slots,
        "a requester tuner missed frames ({clients} requesters)"
    );
    assert_eq!(fleet.crc_errors, 0, "a pull frame failed its CRC");
    assert_eq!(fleet.tuners_with_gaps, 0);
    assert!(
        fleet.requests > 0,
        "requester fleet never sent an upstream request"
    );
    assert!(
        report.pull.requests > 0,
        "engine never drained an upstream request"
    );
    assert!(
        report.pull.pull_slots > 0,
        "arbiter never aired a pull slot under a flooded backchannel"
    );
    (report, fleet)
}

/// Runs both benchmarks and writes the tracked JSON files.
pub fn run(scale: Scale, page_size: usize, clients_list: Option<&[usize]>) {
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let tuning = BusTuning::throughput();
    let slots = fanout_slots(scale);

    println!("\n=== bench: bus fan-out (lossless, {slots} slots, PageSize {page_size}) ===");
    println!(
        "tuning: batch {} frames/flush, {} worker shard(s)",
        tuning.batch, tuning.shards
    );

    let mut bus_rows = Vec::new();
    for &clients in fanout_clients(scale) {
        let (report, spread) = median_point(
            || fanout_point(clients, slots, page_size, tuning),
            |r| r.slots_per_sec,
        );
        let mb_per_sec = report.bytes_sent as f64 / 1e6 / report.elapsed.as_secs_f64().max(1e-9);
        println!(
            "  {clients:>4} clients: {:>10.0} slots/sec  ({:>8.1} MB/s payload fan-out, spread {:.1}%)",
            report.slots_per_sec,
            mb_per_sec,
            spread * 100.0
        );
        bus_rows.push(format!(
            "    {{\"clients\": {clients}, \"slots_per_sec\": {:.1}, \
             \"mb_per_sec\": {:.2}, \"frames_delivered\": {}, \"elapsed_sec\": {:.4}, \
             \"spread\": {spread:.4}}}",
            report.slots_per_sec,
            mb_per_sec,
            report.frames_delivered,
            report.elapsed.as_secs_f64()
        ));
    }

    // --- TCP fan-out: both transports over real loopback sockets, each
    // point drained (and CRC-checked) by a TunerFleet.
    println!("\n=== bench: TCP fan-out (lossless-by-capacity, PageSize {page_size}) ===");
    let (tcp_rows, hit_10k) = tcp_fanout_rows(scale, page_size, clients_list);
    assert!(!tcp_rows.is_empty(), "TCP fan-out produced no rows");

    // --- pull fan-out: the hybrid push/pull stress point. A requester
    // fleet past the 1k mark floods the upstream backchannel while the
    // evented engine routes every slot through the arbiter; the row
    // prices the request drain + arbitration against the pull-less
    // evented rows above.
    let pull_clients = pull_clients(scale);
    let pull_slots = tcp_slots(scale, pull_clients);
    println!(
        "\n=== bench: pull fan-out (evented, {pull_clients} requesters × \
         {pull_slots} slots, 1 request / {PULL_REQUEST_EVERY} frames) ==="
    );
    let ((pull_report, pull_fleet), pull_spread) = median_point(
        || pull_fanout_point(pull_clients, pull_slots, page_size),
        |(report, _)| report.slots_per_sec,
    );
    let pull_mb_per_sec =
        pull_report.bytes_sent as f64 / 1e6 / pull_report.elapsed.as_secs_f64().max(1e-9);
    println!(
        "  {pull_clients:>8} requesters × {pull_slots:>5} slots: {:>9.0} slots/sec  \
         ({:>8.1} MB/s, spread {:.1}%)\n  upstream: {} sent, {} drained, {} pull slots \
         aired ({} stolen + {} padding), {} rejected",
        pull_report.slots_per_sec,
        pull_mb_per_sec,
        pull_spread * 100.0,
        pull_fleet.requests,
        pull_report.pull.requests,
        pull_report.pull.pull_slots,
        pull_report.pull.stolen_slots,
        pull_report.pull.padding_slots,
        pull_report.pull.rejected,
    );
    let pull_row = format!(
        "    {{\"transport\": \"evented\", \"clients\": {pull_clients}, \
         \"slots\": {pull_slots}, \"slots_per_sec\": {:.1}, \"mb_per_sec\": \
         {pull_mb_per_sec:.2}, \"frames_delivered\": {}, \"elapsed_sec\": {:.4}, \
         \"spread\": {pull_spread:.4}, \"requests_sent\": {}, \"requests_drained\": {}, \
         \"pull_slots\": {}, \"stolen_slots\": {}, \"padding_slots\": {}, \
         \"rejected\": {}}}",
        pull_report.slots_per_sec,
        pull_report.frames_delivered,
        pull_report.elapsed.as_secs_f64(),
        pull_fleet.requests,
        pull_report.pull.requests,
        pull_report.pull.pull_slots,
        pull_report.pull.stolen_slots,
        pull_report.pull.padding_slots,
        pull_report.pull.rejected,
    );

    // --- observability overhead: the tracked operating point with metric
    // recording off vs on (the default). The delta is the price of the
    // sharded counters + histograms on the hot path, and is tracked in the
    // JSON so a regression shows up as a diff.
    let obs_clients = *fanout_clients(scale).last().expect("client list not empty");
    println!("\n=== bench: observability overhead ({obs_clients} clients, {slots} slots) ===");
    bdisk_obs::set_metrics_enabled(false);
    let off = fanout_point(obs_clients, slots, page_size, tuning);
    bdisk_obs::set_metrics_enabled(true);
    let on = fanout_point(obs_clients, slots, page_size, tuning);
    let overhead_pct = (off.slots_per_sec - on.slots_per_sec) / off.slots_per_sec.max(1e-9) * 100.0;
    println!(
        "  metrics off: {:>10.0} slots/sec\n  metrics on:  {:>10.0} slots/sec  ({overhead_pct:+.2}% overhead)",
        off.slots_per_sec, on.slots_per_sec
    );

    // --- tracing overhead: the same tracked point with span sampling off
    // (the default) vs 1-in-64 request/slot sampling. The budget is ≤5%:
    // wait-attribution must stay cheap enough to leave on in production.
    // Measuring a 5% budget on a shared core needs care: run-to-run
    // spread can hit ~10%, so the sides run as *interleaved* off/on pairs
    // (a load spike lands on both, not just one), each side keeps its
    // best run (noise only ever subtracts throughput), and the slot
    // budget is floored so one run amortizes millisecond-scale
    // scheduler preemptions instead of being one.
    const TRACE_SAMPLE_EVERY: u64 = 64;
    let pair_slots = slots.max(20_000);
    println!("\n=== bench: tracing overhead ({obs_clients} clients, {pair_slots} slots, 1/{TRACE_SAMPLE_EVERY} sampling) ===");
    let (mut trace_off, mut trace_on) = (None, None);
    for _ in 0..FANOUT_REPEATS {
        bdisk_obs::trace::set_sample_every(0);
        let off = fanout_point(obs_clients, pair_slots, page_size, tuning);
        bdisk_obs::trace::set_sample_every(TRACE_SAMPLE_EVERY);
        let on = fanout_point(obs_clients, pair_slots, page_size, tuning);
        let faster = |best: &mut Option<EngineReport>, run: EngineReport| {
            let better = best
                .as_ref()
                .is_none_or(|b| run.slots_per_sec > b.slots_per_sec);
            if better {
                *best = Some(run);
            }
        };
        faster(&mut trace_off, off);
        faster(&mut trace_on, on);
    }
    bdisk_obs::trace::set_sample_every(0);
    let (trace_off, trace_on) = (
        trace_off.expect("at least one pair"),
        trace_on.expect("at least one pair"),
    );
    let trace_overhead_pct = (trace_off.slots_per_sec - trace_on.slots_per_sec)
        / trace_off.slots_per_sec.max(1e-9)
        * 100.0;
    println!(
        "  tracing off: {:>10.0} slots/sec\n  tracing 1/{TRACE_SAMPLE_EVERY}: {:>10.0} slots/sec  ({trace_overhead_pct:+.2}% overhead)",
        trace_off.slots_per_sec, trace_on.slots_per_sec
    );
    assert!(
        trace_overhead_pct <= 5.0,
        "1/{TRACE_SAMPLE_EVERY} span sampling cost {trace_overhead_pct:.2}% — over the 5% budget"
    );

    let broker_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-broker/v4\",\n  \"mode\": \"{mode}\",\n  \
         \"operating_point\": {{\n    \"disks\": [{}], \"delta\": {DELTA}, \
         \"slots\": {slots}, \"capacity\": {CAPACITY}, \"page_size\": {page_size}, \
         \"backpressure\": \"block\", \"batch\": {}, \"shards\": {}, \
         \"repeats\": {FANOUT_REPEATS}\n  }},\n  \
         \"fanout\": [\n{}\n  ],\n  \
         \"pull_fanout\": [\n{pull_row}\n  ],\n  \
         \"bus_fanout\": [\n{}\n  ],\n  \
         \"observability\": {{\n    \"clients\": {obs_clients}, \"slots\": {slots}, \
         \"metrics_off_slots_per_sec\": {:.1}, \"metrics_on_slots_per_sec\": {:.1}, \
         \"overhead_pct\": {overhead_pct:.2}\n  }},\n  \
         \"tracing\": {{\n    \"clients\": {obs_clients}, \"slots\": {pair_slots}, \
         \"sample_every\": {TRACE_SAMPLE_EVERY}, \
         \"trace_off_slots_per_sec\": {:.1}, \"trace_on_slots_per_sec\": {:.1}, \
         \"overhead_pct\": {trace_overhead_pct:.2}\n  }}\n}}\n",
        DISKS.map(|d| d.to_string()).join(", "),
        tuning.batch,
        tuning.shards,
        tcp_rows.join(",\n"),
        bus_rows.join(",\n"),
        off.slots_per_sec,
        on.slots_per_sec,
        trace_off.slots_per_sec,
        trace_on.slots_per_sec,
    );
    emit("BENCH_broker.json", &broker_json);
    // The tracked full-grid run must include the headline point: ≥10k
    // concurrent evented tuners on one core. A --clients-list override is
    // an exploratory run and exempt.
    let require_10k = scale == Scale::Full && clients_list.is_none();
    if require_10k {
        assert!(
            hit_10k,
            "full bench must measure an evented >=10k-client point"
        );
    }
    validate_broker(
        &broker_json,
        tcp_rows.len(),
        fanout_clients(scale).len(),
        require_10k,
    );

    // --- simulator sweep wall-clock ---
    let deltas = sweep_deltas(scale);
    let cfg = common::caching_config(scale, PolicyKind::Pix, 0.30);
    let seed = common::context().base_seed;
    println!(
        "\n=== bench: simulator sweep (D5, {} deltas, {} requests, PIX) ===",
        deltas.len(),
        cfg.requests
    );
    let start = Instant::now();
    for &delta in deltas {
        let layout = common::layout("D5", delta);
        simulate(&cfg, &layout, seed).expect("bench simulation must succeed");
    }
    let wall = start.elapsed().as_secs_f64();
    let points_per_sec = deltas.len() as f64 / wall.max(1e-9);
    println!(
        "  {} points in {wall:.2}s = {points_per_sec:.2} points/sec",
        deltas.len()
    );

    let sim_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-sim/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"sweep\": {{\n    \"config\": \"D5\", \"policy\": \"PIX\", \"noise\": 0.3, \
         \"requests\": {}, \"deltas\": [{}]\n  }},\n  \
         \"points\": {}, \"wall_clock_sec\": {wall:.4}, \"points_per_sec\": {points_per_sec:.4}\n}}\n",
        cfg.requests,
        deltas.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(", "),
        deltas.len()
    );
    emit("BENCH_sim.json", &sim_json);
    validate_sim(&sim_json, deltas.len());
}

/// Writes a tracked bench file into the current directory.
pub(crate) fn emit(file: &str, contents: &str) {
    std::fs::write(file, contents).unwrap_or_else(|e| panic!("cannot write {file}: {e}"));
    println!("  -> {file}");
}

/// Shape check for `BENCH_broker.json`; panics (failing CI) on regression.
fn validate_broker(
    text: &str,
    expected_tcp_points: usize,
    expected_bus_points: usize,
    require_10k: bool,
) {
    let v = json::parse(text).expect("BENCH_broker.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-broker/v4"),
        "broker bench schema tag"
    );
    let op = v.get("operating_point").expect("operating_point object");
    for key in [
        "delta",
        "slots",
        "capacity",
        "page_size",
        "batch",
        "shards",
        "repeats",
    ] {
        assert!(
            op.get(key).and_then(json::Value::as_f64).is_some(),
            "operating_point.{key} must be a number"
        );
    }
    let fanout = v
        .get("fanout")
        .and_then(json::Value::as_array)
        .expect("fanout array");
    assert_eq!(
        fanout.len(),
        expected_tcp_points,
        "one fanout row per (transport, client count) pair"
    );
    let mut evented_10k = false;
    for row in fanout {
        let transport = row
            .get("transport")
            .and_then(json::Value::as_str)
            .expect("fanout row needs a transport tag");
        assert!(
            transport == "threaded" || transport == "evented",
            "unknown transport tag {transport:?}"
        );
        let slots_per_sec = row
            .get("slots_per_sec")
            .and_then(json::Value::as_f64)
            .expect("fanout row needs slots_per_sec");
        assert!(slots_per_sec > 0.0, "throughput must be positive");
        let clients = row
            .get("clients")
            .and_then(json::Value::as_f64)
            .expect("fanout row needs clients");
        assert!(
            row.get("slots").and_then(json::Value::as_f64).is_some(),
            "fanout row needs slots"
        );
        let spread = row
            .get("spread")
            .and_then(json::Value::as_f64)
            .expect("fanout row needs a median-of-repeats spread");
        assert!(spread >= 0.0, "spread is a relative range, never negative");
        evented_10k |= transport == "evented" && clients >= 10_000.0;
    }
    if require_10k {
        assert!(
            evented_10k,
            "full-mode fanout must carry an evented >=10k-client row"
        );
    }
    let pull_fanout = v
        .get("pull_fanout")
        .and_then(json::Value::as_array)
        .expect("pull_fanout array");
    assert_eq!(pull_fanout.len(), 1, "one tracked pull fan-out row");
    for row in pull_fanout {
        assert_eq!(
            row.get("transport").and_then(json::Value::as_str),
            Some("evented"),
            "pull fan-out runs on the evented transport"
        );
        let clients = row
            .get("clients")
            .and_then(json::Value::as_f64)
            .expect("pull_fanout row needs clients");
        assert!(
            clients >= 1000.0,
            "pull fan-out must keep the 1k+ requester point"
        );
        for key in ["slots", "slots_per_sec", "elapsed_sec", "spread"] {
            assert!(
                row.get(key).and_then(json::Value::as_f64).is_some(),
                "pull_fanout row needs {key}"
            );
        }
        for key in ["requests_sent", "requests_drained", "pull_slots"] {
            let n = row
                .get(key)
                .and_then(json::Value::as_f64)
                .unwrap_or_else(|| panic!("pull_fanout row needs {key}"));
            assert!(n > 0.0, "pull_fanout.{key} must witness real traffic");
        }
    }
    let bus_fanout = v
        .get("bus_fanout")
        .and_then(json::Value::as_array)
        .expect("bus_fanout array");
    assert_eq!(
        bus_fanout.len(),
        expected_bus_points,
        "one bus_fanout row per client count"
    );
    for row in bus_fanout {
        let slots_per_sec = row
            .get("slots_per_sec")
            .and_then(json::Value::as_f64)
            .expect("bus_fanout row needs slots_per_sec");
        assert!(slots_per_sec > 0.0, "throughput must be positive");
        assert!(
            row.get("clients").and_then(json::Value::as_f64).is_some(),
            "bus_fanout row needs clients"
        );
        assert!(
            row.get("spread").and_then(json::Value::as_f64).is_some(),
            "bus_fanout row needs a median-of-repeats spread"
        );
    }
    let obs = v
        .get("observability")
        .expect("observability on/off comparison object");
    for key in [
        "clients",
        "slots",
        "metrics_off_slots_per_sec",
        "metrics_on_slots_per_sec",
        "overhead_pct",
    ] {
        assert!(
            obs.get(key).and_then(json::Value::as_f64).is_some(),
            "observability.{key} must be a number"
        );
    }
    for key in ["metrics_off_slots_per_sec", "metrics_on_slots_per_sec"] {
        let rate = obs.get(key).and_then(json::Value::as_f64).unwrap();
        assert!(rate > 0.0, "observability.{key} must be positive");
    }
    let tracing = v
        .get("tracing")
        .expect("tracing off/on sampling comparison object");
    for key in [
        "clients",
        "slots",
        "sample_every",
        "trace_off_slots_per_sec",
        "trace_on_slots_per_sec",
        "overhead_pct",
    ] {
        assert!(
            tracing.get(key).and_then(json::Value::as_f64).is_some(),
            "tracing.{key} must be a number"
        );
    }
    let trace_overhead = tracing
        .get("overhead_pct")
        .and_then(json::Value::as_f64)
        .unwrap();
    assert!(
        trace_overhead <= 5.0,
        "span-sampling overhead {trace_overhead:.2}% breaks the 5% budget"
    );
}

/// Shape check for `BENCH_sim.json`; panics (failing CI) on regression.
fn validate_sim(text: &str, expected_points: usize) {
    let v = json::parse(text).expect("BENCH_sim.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-sim/v1"),
        "sim bench schema tag"
    );
    assert_eq!(
        v.get("points").and_then(json::Value::as_f64),
        Some(expected_points as f64)
    );
    let wall = v
        .get("wall_clock_sec")
        .and_then(json::Value::as_f64)
        .expect("wall_clock_sec must be a number");
    assert!(wall > 0.0, "sweep must take measurable time");
    let deltas = v
        .get("sweep")
        .and_then(|s| s.get("deltas"))
        .and_then(json::Value::as_array)
        .expect("sweep.deltas array");
    assert_eq!(deltas.len(), expected_points);
}

/// A minimal JSON reader (objects, arrays, strings, numbers, literals) —
/// just enough to shape-check the bench emitters without a serde
/// dependency. Not a general-purpose parser: no `\u` escapes, f64 numbers.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number, as f64.
        Num(f64),
        /// A string (no `\u` escape support).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            members.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape '\\{}'", *other as char)),
                    });
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_the_bench_shape() {
            let v = parse(
                "{\"schema\": \"x/v1\", \"nums\": [1, 2.5, -3e2], \
                 \"nested\": {\"ok\": true, \"none\": null}}",
            )
            .unwrap();
            assert_eq!(v.get("schema").and_then(Value::as_str), Some("x/v1"));
            let nums = v.get("nums").and_then(Value::as_array).unwrap();
            assert_eq!(nums.len(), 3);
            assert_eq!(nums[2].as_f64(), Some(-300.0));
            assert_eq!(
                v.get("nested").and_then(|n| n.get("ok")),
                Some(&Value::Bool(true))
            );
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in ["{", "{\"a\": }", "[1 2]", "{\"a\": 1} trailing", "\"open"] {
                assert!(parse(bad).is_err(), "{bad:?} should not parse");
            }
        }
    }
}
