//! `repro bench` — the tracked performance harness.
//!
//! Runs the broker fan-out and a simulator sweep at **fixed operating
//! points** and writes `BENCH_broker.json` / `BENCH_sim.json` into the
//! current directory, so the repo carries its own perf trajectory across
//! PRs: re-run `repro bench` on the same machine class and diff the JSON.
//!
//! * `BENCH_broker.json` — lossless-bus fan-out throughput (slots/sec and
//!   payload MB/s) at 1 / 8 / 64 / 256 concurrent draining clients.
//! * `BENCH_sim.json` — wall-clock of a Δ-sweep of the discrete-event
//!   simulator at the paper's D5 configuration.
//!
//! `--quick` shrinks slot counts and client fleets (the CI smoke mode);
//! the emitted JSON carries a `mode` field so full and quick runs are
//! never confused. Both files are re-parsed and shape-checked with the
//! built-in JSON reader after writing — a malformed emitter fails the run
//! (and CI) instead of silently rotting the harness.

use std::time::Instant;

use bdisk_broker::{
    Backpressure, BroadcastEngine, BusTuning, EngineConfig, EngineReport, InMemoryBus,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::simulate;

use crate::common::{self, Scale};

/// Fixed fan-out operating point (chosen small enough that 256 clients ×
/// the full slot count stays inside a CI minute, large enough that the
/// steady state dominates startup).
const DISKS: [usize; 3] = [50, 200, 250];
const DELTA: u64 = 3;
const CAPACITY: usize = 256;

fn fanout_clients(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Full => &[1, 8, 64, 256],
        Scale::Quick => &[1, 4, 8],
    }
}

fn fanout_slots(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 20_000,
        Scale::Quick => 2_000,
    }
}

fn sweep_deltas(scale: Scale) -> &'static [u64] {
    match scale {
        Scale::Full => &[0, 3, 7],
        Scale::Quick => &[0, 3],
    }
}

/// One fan-out measurement: `clients` subscribers drain a lossless bus as
/// fast as the engine can flush.
fn fanout_point(clients: usize, slots: u64, page_size: usize, tuning: BusTuning) -> EngineReport {
    let layout = DiskLayout::with_delta(&DISKS, DELTA).expect("bench layout is valid");
    let program = BroadcastProgram::generate(&layout).expect("bench program is valid");
    let mut bus = InMemoryBus::with_tuning(CAPACITY, Backpressure::Block, tuning);
    let subs: Vec<_> = (0..clients).map(|_| bus.subscribe()).collect();
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: slots,
            stop_when_no_clients: false,
            page_size,
            ..EngineConfig::default()
        },
    );
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = subs
            .into_iter()
            .map(|mut sub| {
                scope.spawn(move |_| {
                    let mut received = 0u64;
                    while sub.recv().is_some() {
                        received += 1;
                    }
                    received
                })
            })
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            let received = h.join().expect("bench client must not panic");
            assert_eq!(
                received, report.slots_sent,
                "lossless bench client missed frames"
            );
        }
        report
    })
    .expect("bench run must not panic");
    assert_eq!(report.slots_sent, slots);
    assert_eq!(report.frames_delivered, slots * clients as u64);
    report
}

/// Runs both benchmarks and writes the tracked JSON files.
pub fn run(scale: Scale, page_size: usize) {
    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let tuning = BusTuning::throughput();
    let slots = fanout_slots(scale);

    println!("\n=== bench: bus fan-out (lossless, {slots} slots, PageSize {page_size}) ===");
    println!(
        "tuning: batch {} frames/flush, {} worker shard(s)",
        tuning.batch, tuning.shards
    );

    let mut rows = Vec::new();
    for &clients in fanout_clients(scale) {
        let report = fanout_point(clients, slots, page_size, tuning);
        let mb_per_sec = report.bytes_sent as f64 / 1e6 / report.elapsed.as_secs_f64().max(1e-9);
        println!(
            "  {clients:>4} clients: {:>10.0} slots/sec  ({:>8.1} MB/s payload fan-out)",
            report.slots_per_sec, mb_per_sec
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"slots_per_sec\": {:.1}, \
             \"mb_per_sec\": {:.2}, \"frames_delivered\": {}, \"elapsed_sec\": {:.4}}}",
            report.slots_per_sec,
            mb_per_sec,
            report.frames_delivered,
            report.elapsed.as_secs_f64()
        ));
    }

    // --- observability overhead: the tracked operating point with metric
    // recording off vs on (the default). The delta is the price of the
    // sharded counters + histograms on the hot path, and is tracked in the
    // JSON so a regression shows up as a diff.
    let obs_clients = *fanout_clients(scale).last().expect("client list not empty");
    println!("\n=== bench: observability overhead ({obs_clients} clients, {slots} slots) ===");
    bdisk_obs::set_metrics_enabled(false);
    let off = fanout_point(obs_clients, slots, page_size, tuning);
    bdisk_obs::set_metrics_enabled(true);
    let on = fanout_point(obs_clients, slots, page_size, tuning);
    let overhead_pct = (off.slots_per_sec - on.slots_per_sec) / off.slots_per_sec.max(1e-9) * 100.0;
    println!(
        "  metrics off: {:>10.0} slots/sec\n  metrics on:  {:>10.0} slots/sec  ({overhead_pct:+.2}% overhead)",
        off.slots_per_sec, on.slots_per_sec
    );

    let broker_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-broker/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"operating_point\": {{\n    \"disks\": [{}], \"delta\": {DELTA}, \
         \"slots\": {slots}, \"capacity\": {CAPACITY}, \"page_size\": {page_size}, \
         \"backpressure\": \"block\", \"batch\": {}, \"shards\": {}\n  }},\n  \
         \"fanout\": [\n{}\n  ],\n  \
         \"observability\": {{\n    \"clients\": {obs_clients}, \"slots\": {slots}, \
         \"metrics_off_slots_per_sec\": {:.1}, \"metrics_on_slots_per_sec\": {:.1}, \
         \"overhead_pct\": {overhead_pct:.2}\n  }}\n}}\n",
        DISKS.map(|d| d.to_string()).join(", "),
        tuning.batch,
        tuning.shards,
        rows.join(",\n"),
        off.slots_per_sec,
        on.slots_per_sec,
    );
    emit("BENCH_broker.json", &broker_json);
    validate_broker(&broker_json, fanout_clients(scale).len());

    // --- simulator sweep wall-clock ---
    let deltas = sweep_deltas(scale);
    let cfg = common::caching_config(scale, PolicyKind::Pix, 0.30);
    let seed = common::context().base_seed;
    println!(
        "\n=== bench: simulator sweep (D5, {} deltas, {} requests, PIX) ===",
        deltas.len(),
        cfg.requests
    );
    let start = Instant::now();
    for &delta in deltas {
        let layout = common::layout("D5", delta);
        simulate(&cfg, &layout, seed).expect("bench simulation must succeed");
    }
    let wall = start.elapsed().as_secs_f64();
    let points_per_sec = deltas.len() as f64 / wall.max(1e-9);
    println!(
        "  {} points in {wall:.2}s = {points_per_sec:.2} points/sec",
        deltas.len()
    );

    let sim_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-sim/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"sweep\": {{\n    \"config\": \"D5\", \"policy\": \"PIX\", \"noise\": 0.3, \
         \"requests\": {}, \"deltas\": [{}]\n  }},\n  \
         \"points\": {}, \"wall_clock_sec\": {wall:.4}, \"points_per_sec\": {points_per_sec:.4}\n}}\n",
        cfg.requests,
        deltas.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(", "),
        deltas.len()
    );
    emit("BENCH_sim.json", &sim_json);
    validate_sim(&sim_json, deltas.len());
}

/// Writes a tracked bench file into the current directory.
pub(crate) fn emit(file: &str, contents: &str) {
    std::fs::write(file, contents).unwrap_or_else(|e| panic!("cannot write {file}: {e}"));
    println!("  -> {file}");
}

/// Shape check for `BENCH_broker.json`; panics (failing CI) on regression.
fn validate_broker(text: &str, expected_points: usize) {
    let v = json::parse(text).expect("BENCH_broker.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-broker/v1"),
        "broker bench schema tag"
    );
    let op = v.get("operating_point").expect("operating_point object");
    for key in ["delta", "slots", "capacity", "page_size", "batch", "shards"] {
        assert!(
            op.get(key).and_then(json::Value::as_f64).is_some(),
            "operating_point.{key} must be a number"
        );
    }
    let fanout = v
        .get("fanout")
        .and_then(json::Value::as_array)
        .expect("fanout array");
    assert_eq!(
        fanout.len(),
        expected_points,
        "one fanout row per client count"
    );
    for row in fanout {
        let slots_per_sec = row
            .get("slots_per_sec")
            .and_then(json::Value::as_f64)
            .expect("fanout row needs slots_per_sec");
        assert!(slots_per_sec > 0.0, "throughput must be positive");
        assert!(
            row.get("clients").and_then(json::Value::as_f64).is_some(),
            "fanout row needs clients"
        );
    }
    let obs = v
        .get("observability")
        .expect("observability on/off comparison object");
    for key in [
        "clients",
        "slots",
        "metrics_off_slots_per_sec",
        "metrics_on_slots_per_sec",
        "overhead_pct",
    ] {
        assert!(
            obs.get(key).and_then(json::Value::as_f64).is_some(),
            "observability.{key} must be a number"
        );
    }
    for key in ["metrics_off_slots_per_sec", "metrics_on_slots_per_sec"] {
        let rate = obs.get(key).and_then(json::Value::as_f64).unwrap();
        assert!(rate > 0.0, "observability.{key} must be positive");
    }
}

/// Shape check for `BENCH_sim.json`; panics (failing CI) on regression.
fn validate_sim(text: &str, expected_points: usize) {
    let v = json::parse(text).expect("BENCH_sim.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-sim/v1"),
        "sim bench schema tag"
    );
    assert_eq!(
        v.get("points").and_then(json::Value::as_f64),
        Some(expected_points as f64)
    );
    let wall = v
        .get("wall_clock_sec")
        .and_then(json::Value::as_f64)
        .expect("wall_clock_sec must be a number");
    assert!(wall > 0.0, "sweep must take measurable time");
    let deltas = v
        .get("sweep")
        .and_then(|s| s.get("deltas"))
        .and_then(json::Value::as_array)
        .expect("sweep.deltas array");
    assert_eq!(deltas.len(), expected_points);
}

/// A minimal JSON reader (objects, arrays, strings, numbers, literals) —
/// just enough to shape-check the bench emitters without a serde
/// dependency. Not a general-purpose parser: no `\u` escapes, f64 numbers.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number, as f64.
        Num(f64),
        /// A string (no `\u` escape support).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            members.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape '\\{}'", *other as char)),
                    });
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_the_bench_shape() {
            let v = parse(
                "{\"schema\": \"x/v1\", \"nums\": [1, 2.5, -3e2], \
                 \"nested\": {\"ok\": true, \"none\": null}}",
            )
            .unwrap();
            assert_eq!(v.get("schema").and_then(Value::as_str), Some("x/v1"));
            let nums = v.get("nums").and_then(Value::as_array).unwrap();
            assert_eq!(nums.len(), 3);
            assert_eq!(nums[2].as_f64(), Some(-300.0));
            assert_eq!(
                v.get("nested").and_then(|n| n.get("ok")),
                Some(&Value::Bool(true))
            );
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in ["{", "{\"a\": }", "[1 2]", "{\"a\": 1} trailing", "\"open"] {
                assert!(parse(bad).is_err(), "{bad:?} should not parse");
            }
        }
    }
}
