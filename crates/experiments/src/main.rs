//! `repro` — regenerates every table and figure of the Broadcast Disks
//! paper (Acharya, Alonso, Franklin, Zdonik, SIGMOD 1995).
//!
//! ```text
//! repro [--quick] <experiment> [...]
//!
//! experiments:
//!   table1   expected delay of the Figure 2 example programs
//!   fig3     broadcast program generation worked example
//!   fig5     response vs Delta, configs D1..D5, no cache
//!   fig6     noise sensitivity, D3, no cache
//!   fig7     noise sensitivity, D5, no cache
//!   fig8     noise sensitivity, D5, CacheSize=500, policy P
//!   fig9     noise sensitivity, D5, CacheSize=500, policy PIX
//!   fig10    P vs PIX over noise at Delta 3 and 5
//!   fig11    access locations, P vs PIX
//!   fig12    LIX page replacement worked example
//!   fig13    LRU/L/LIX/PIX vs Delta
//!   fig14    access locations, LRU/L/LIX
//!   fig15    LRU/L/LIX vs noise
//!   prefetch PT prefetching vs demand caching (extension)
//!   policies full policy shoot-out incl. LRU-K and 2Q (extension)
//!   design   automated broadcast-program designer (extension)
//!   updates  volatile data / invalidation vs stale reads (extension)
//!   index    (1,m) air indexing access/tuning tradeoff (extension)
//!   all      everything above, in paper order
//! ```
//!
//! `--quick` cuts request counts and seeds for a fast smoke run; the
//! default is paper fidelity (15 000 measured requests, 3 seeds per point).
//! CSVs are written to `results/`.

mod common;
mod extensions;
mod figures;
mod table1;
mod worked_examples;

use common::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let experiments: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if experiments.is_empty() {
        eprintln!("usage: repro [--quick] <table1|fig3|fig5|...|fig15|all>");
        eprintln!("run `repro all` to regenerate every table and figure");
        std::process::exit(2);
    }

    let start = std::time::Instant::now();
    for exp in &experiments {
        run_one(exp, scale);
    }
    eprintln!("\ncompleted in {:.1}s", start.elapsed().as_secs_f64());
}

fn run_one(exp: &str, scale: Scale) {
    match exp {
        "table1" => table1::run(scale),
        "fig3" => worked_examples::figure3(),
        "fig5" => figures::fig5(scale),
        "fig6" => figures::fig6(scale),
        "fig7" => figures::fig7(scale),
        "fig8" => figures::fig8(scale),
        "fig9" => figures::fig9(scale),
        "fig10" => figures::fig10(scale),
        "fig11" => figures::fig11(scale),
        "fig12" => worked_examples::figure12(),
        "fig13" => figures::fig13(scale),
        "fig14" => figures::fig14(scale),
        "fig15" => figures::fig15(scale),
        "prefetch" => extensions::prefetch(scale),
        "policies" => extensions::policies(scale),
        "design" => extensions::design(scale),
        "updates" => extensions::updates(scale),
        "index" => extensions::index(scale),
        "all" => {
            for e in [
                "table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                "fig12", "fig13", "fig14", "fig15", "prefetch", "policies", "design", "updates", "index",
            ] {
                run_one(e, scale);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
