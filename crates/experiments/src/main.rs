//! `repro` — regenerates every table and figure of the Broadcast Disks
//! paper (Acharya, Alonso, Franklin, Zdonik, SIGMOD 1995), and runs the
//! live broadcast engine against the simulator.
//!
//! ```text
//! repro [flags] <experiment> [...]
//!
//! flags:
//!   --quick            reduced requests/seeds for a fast smoke run
//!   --out DIR          write CSVs under DIR (default results/)
//!   --seed N           base seed for derived sweep seeds (default 101)
//!   --transport T      live: bus (default, lossless) or tcp
//!   --clients N        live: concurrent clients (default 16, min 4)
//!   --channels N       live: broadcast channels to stripe across (default 1)
//!   --page-size N      live/bench: payload bytes per page frame (default 64)
//!   --metrics-addr A   live/trace: serve GET /metrics and /events on HOST:PORT
//!   --serve-secs N     live: keep serving metrics N seconds after the run ends
//!   --clients-list L   bench: comma-separated fleet sizes for the TCP fan-out
//!                      (overrides the tracked defaults; threaded rows skip
//!                      entries beyond its thread-per-connection cap)
//!
//! experiments:
//!   table1   expected delay of the Figure 2 example programs
//!   fig3     broadcast program generation worked example
//!   fig5     response vs Delta, configs D1..D5, no cache
//!   fig6     noise sensitivity, D3, no cache
//!   fig7     noise sensitivity, D5, no cache
//!   fig8     noise sensitivity, D5, CacheSize=500, policy P
//!   fig9     noise sensitivity, D5, CacheSize=500, policy PIX
//!   fig10    P vs PIX over noise at Delta 3 and 5
//!   fig11    access locations, P vs PIX
//!   fig12    LIX page replacement worked example
//!   fig13    LRU/L/LIX/PIX vs Delta
//!   fig14    access locations, LRU/L/LIX
//!   fig15    LRU/L/LIX vs noise
//!   prefetch PT prefetching vs demand caching (extension)
//!   policies full policy shoot-out incl. LRU-K and 2Q (extension)
//!   design   automated broadcast-program designer (extension)
//!   updates  volatile data / invalidation vs stale reads (extension)
//!   index    (1,m) air indexing access/tuning tradeoff (extension)
//!   channels multi-channel striping sweep + 2-channel live parity
//!   live     real-time broadcast engine vs simulator (bdisk-broker)
//!   trace    short live run with the event journal tailed to stdout + CSV
//!   timeline wait-attribution waterfall: per-request phase spans with a
//!            bit-exact conservation check, timeline.csv + waterfall.csv
//!   faults   loss sweep + TCP chaos run under seeded fault injection
//!   coding   coded repair slots: rate x loss sweep + coded live parity
//!   drift    epoch hot-swap under workload drift, with broker restart
//!   pull     hybrid push/pull slot arbiter: skew x mode sweep + parity
//!   bench    perf harness: writes BENCH_broker.json / BENCH_sim.json
//!   all      everything above, in paper order
//! ```
//!
//! `--quick` cuts request counts and seeds; the default is paper fidelity
//! (15 000 measured requests, 3 seeds per point). Every CSV records the
//! base seed in its header line, so `repro --seed N <exp>` reruns are
//! bit-identical.

mod bench;
mod channels;
mod coding;
mod common;
mod drift;
mod extensions;
mod faults;
mod figures;
mod live;
mod pull;
mod table1;
mod timeline;
mod worked_examples;

use common::Scale;
use live::LiveOptions;

fn main() {
    // Hidden re-exec mode: `repro __tuner-fleet <addr> <n>` runs a bench
    // tuner fleet in its own process (its own fd budget) and prints a
    // one-line summary. Dispatched before flag parsing on purpose — it is
    // an internal wire protocol, not part of the CLI surface above.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("__tuner-fleet") {
        bench::tuner_fleet_child(&raw[1..]);
        return;
    }

    let (scale, live_opts, clients_list, experiments) = parse_args();

    if experiments.is_empty() {
        eprintln!("usage: repro [--quick] [--out DIR] [--seed N] <table1|fig3|...|fig15|live|all>");
        eprintln!("run `repro all` to regenerate every table and figure");
        std::process::exit(2);
    }

    let start = std::time::Instant::now();
    for exp in &experiments {
        run_one(exp, scale, &live_opts, clients_list.as_deref());
    }
    eprintln!("\ncompleted in {:.1}s", start.elapsed().as_secs_f64());
}

/// Parses flags and experiment names; installs the invocation context.
fn parse_args() -> (Scale, LiveOptions, Option<Vec<usize>>, Vec<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = std::path::PathBuf::from("results");
    let mut base_seed = common::DEFAULT_BASE_SEED;
    let mut live_opts = LiveOptions::default();
    let mut clients_list: Option<Vec<usize>> = None;
    let mut experiments = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = flag_value(&mut iter, "--out").into(),
            "--seed" => {
                base_seed = parse_or_die(&flag_value(&mut iter, "--seed"), "--seed expects a u64")
            }
            "--transport" => {
                live_opts.transport = parse_or_die(
                    &flag_value(&mut iter, "--transport"),
                    "--transport expects bus or tcp",
                )
            }
            "--clients" => {
                live_opts.clients = parse_or_die(
                    &flag_value(&mut iter, "--clients"),
                    "--clients expects a positive integer",
                )
            }
            "--channels" => {
                live_opts.channels = parse_or_die(
                    &flag_value(&mut iter, "--channels"),
                    "--channels expects a positive integer",
                );
                if live_opts.channels == 0 {
                    eprintln!("--channels expects a positive integer");
                    std::process::exit(2);
                }
            }
            "--page-size" => {
                live_opts.page_size = parse_or_die(
                    &flag_value(&mut iter, "--page-size"),
                    "--page-size expects a byte count",
                )
            }
            "--metrics-addr" => {
                live_opts.metrics_addr = Some(flag_value(&mut iter, "--metrics-addr"))
            }
            "--serve-secs" => {
                live_opts.serve_secs = parse_or_die(
                    &flag_value(&mut iter, "--serve-secs"),
                    "--serve-secs expects a number of seconds",
                )
            }
            "--clients-list" => {
                let raw = flag_value(&mut iter, "--clients-list");
                let list: Vec<usize> = raw
                    .split(',')
                    .map(|part| {
                        parse_or_die(
                            part.trim(),
                            "--clients-list expects comma-separated positive integers",
                        )
                    })
                    .collect();
                if list.is_empty() || list.contains(&0) {
                    eprintln!("--clients-list expects comma-separated positive integers");
                    std::process::exit(2);
                }
                clients_list = Some(list);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            _ => experiments.push(arg),
        }
    }

    common::init_context(out, base_seed);
    let scale = if quick { Scale::Quick } else { Scale::Full };
    (scale, live_opts, clients_list, experiments)
}

fn flag_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn parse_or_die<T: std::str::FromStr>(s: &str, msg: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{msg} (got '{s}')");
        std::process::exit(2);
    })
}

fn run_one(exp: &str, scale: Scale, live_opts: &LiveOptions, clients_list: Option<&[usize]>) {
    match exp {
        "table1" => table1::run(scale),
        "fig3" => worked_examples::figure3(),
        "fig5" => figures::fig5(scale),
        "fig6" => figures::fig6(scale),
        "fig7" => figures::fig7(scale),
        "fig8" => figures::fig8(scale),
        "fig9" => figures::fig9(scale),
        "fig10" => figures::fig10(scale),
        "fig11" => figures::fig11(scale),
        "fig12" => worked_examples::figure12(),
        "fig13" => figures::fig13(scale),
        "fig14" => figures::fig14(scale),
        "fig15" => figures::fig15(scale),
        "prefetch" => extensions::prefetch(scale),
        "policies" => extensions::policies(scale),
        "design" => extensions::design(scale),
        "updates" => extensions::updates(scale),
        "index" => extensions::index(scale),
        "channels" => channels::run(scale, live_opts),
        "live" => live::run(scale, live_opts),
        "trace" => live::trace(scale, live_opts),
        "timeline" => timeline::run(scale, live_opts),
        "faults" => faults::run(scale, live_opts),
        "coding" => coding::run(scale, live_opts),
        "drift" => drift::run(scale, live_opts),
        "pull" => pull::run(scale, live_opts),
        "bench" => bench::run(scale, live_opts.page_size, clients_list),
        "all" => {
            for e in [
                "table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                "fig12", "fig13", "fig14", "fig15", "prefetch", "policies", "design", "updates",
                "index", "channels", "live", "timeline", "faults", "coding", "drift", "pull",
            ] {
                run_one(e, scale, live_opts, clients_list);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
