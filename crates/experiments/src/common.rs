//! Shared constants and helpers for the experiment harness.
//!
//! These are the paper's exact experimental settings (Table 4 and the
//! Figure 5 disk configurations).

use std::path::PathBuf;
use std::sync::OnceLock;

use bdisk_cache::PolicyKind;
use bdisk_sched::DiskLayout;
use bdisk_sim::{average_seeds, seeds_from_base, AveragedOutcome, SimConfig};

/// Disk configurations of Figure 5 (sizes in pages; ServerDBSize = 5000).
pub const DISK_CONFIGS: [(&str, &[usize]); 5] = [
    ("D1", &[500, 4500]),
    ("D2", &[900, 4100]),
    ("D3", &[2500, 2500]),
    ("D4", &[300, 1200, 3500]),
    ("D5", &[500, 2000, 2500]),
];

/// Δ values swept in the figures.
pub const DELTAS: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// Noise percentages of Experiments 2–5.
pub const NOISES: [f64; 6] = [0.0, 0.15, 0.30, 0.45, 0.60, 0.75];

/// Seeds averaged per sweep point (the default base seed with the runner's
/// fixed stride; kept for reference and backward-compatible defaults).
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// Default base seed: reproduces the historical [`SEEDS`] sequence.
pub const DEFAULT_BASE_SEED: u64 = 101;

/// Invocation-wide settings shared by every experiment: where CSVs go and
/// which base seed the multi-seed sweeps derive from.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Output directory for CSVs (default `results/`, set by `--out`).
    pub out_dir: PathBuf,
    /// Base seed for derived sweep seeds (default 101, set by `--seed`).
    pub base_seed: u64,
}

static CONTEXT: OnceLock<RunContext> = OnceLock::new();

/// Installs the invocation context; call once from `main` before running
/// experiments. Later calls are ignored.
pub fn init_context(out_dir: PathBuf, base_seed: u64) {
    let _ = CONTEXT.set(RunContext { out_dir, base_seed });
}

/// The invocation context (defaults if `init_context` was never called).
pub fn context() -> &'static RunContext {
    CONTEXT.get_or_init(|| RunContext {
        out_dir: PathBuf::from("results"),
        base_seed: DEFAULT_BASE_SEED,
    })
}

/// Runtime scale for a harness invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity: 15 000 measured requests per point.
    Full,
    /// Reduced requests for smoke runs and benches.
    Quick,
}

impl Scale {
    /// Measured requests per run.
    pub fn requests(self) -> u64 {
        match self {
            Scale::Full => 15_000,
            Scale::Quick => 3_000,
        }
    }

    /// Post-cache-fill warmup requests.
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Full => 5_000,
            Scale::Quick => 1_000,
        }
    }

    /// Seeds per point, derived from the invocation's base seed with the
    /// runner's fixed stride, so a whole sweep reruns bit-identically from
    /// the single base recorded in the CSV headers.
    pub fn seeds(self) -> Vec<u64> {
        let count = match self {
            Scale::Full => SEEDS.len(),
            Scale::Quick => 1,
        };
        seeds_from_base(context().base_seed, count)
    }
}

/// Looks up one of the named Figure 5 configurations.
pub fn disk_config(name: &str) -> &'static [usize] {
    DISK_CONFIGS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown disk configuration {name}"))
        .1
}

/// A layout for the named configuration at Δ.
pub fn layout(name: &str, delta: u64) -> DiskLayout {
    DiskLayout::with_delta(disk_config(name), delta).expect("paper configurations are valid")
}

/// Baseline config (Table 4): no cache, no noise, no offset.
pub fn base_config(scale: Scale) -> SimConfig {
    SimConfig {
        access_range: 1000,
        region_size: 50,
        theta: 0.95,
        think_time: 2.0,
        think_jitter: 0.0,
        cache_size: 1,
        offset: 0,
        noise: 0.0,
        policy: PolicyKind::Pix, // irrelevant at cache_size 1
        requests: scale.requests(),
        warmup_requests: scale.warmup(),
        alpha: 0.25,
        batch_size: 500,
        page_size: 64,
        channels: 1,
        switch_slots: 0.0,
        pull: false,
    }
}

/// Config for the caching experiments: CacheSize = Offset = 500.
pub fn caching_config(scale: Scale, policy: PolicyKind, noise: f64) -> SimConfig {
    SimConfig {
        cache_size: 500,
        offset: 500,
        noise,
        policy,
        ..base_config(scale)
    }
}

/// Runs one sweep point, seed-averaged.
pub fn run_point(cfg: &SimConfig, layout: &DiskLayout, scale: Scale) -> AveragedOutcome {
    average_seeds(cfg, layout, &scale.seeds()).expect("paper-scale run must succeed")
}

/// Prints a response-time table: one row per x value, one column per series.
pub fn print_table(title: &str, x_name: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    println!("\n=== {title} ===");
    print!("{x_name:>10}");
    for (name, _) in series {
        print!("{name:>12}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for (_, values) in series {
            print!("{:>12.1}", values[i]);
        }
        println!();
    }
}

/// Writes the same table as CSV under the invocation's output directory
/// (default `results/`, overridden by `--out`; created on demand). The
/// first line records the base seed so any run can be replayed exactly.
pub fn write_csv(file: &str, x_name: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    write_csv_with_comments(file, x_name, xs, series, &[]);
}

/// [`write_csv`] with extra `#`-comment header lines after the base seed —
/// experiment-specific replay keys (fault-schedule seed, plan epoch, ...)
/// that belong with the data they reproduce.
pub fn write_csv_with_comments(
    file: &str,
    x_name: &str,
    xs: &[String],
    series: &[(String, Vec<f64>)],
    comments: &[String],
) {
    let ctx = context();
    let dir = ctx.out_dir.as_path();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(&format!("# base_seed={}\n", ctx.base_seed));
    for comment in comments {
        out.push_str(&format!("# {comment}\n"));
    }
    out.push_str(x_name);
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(x);
        for (_, values) in series {
            out.push_str(&format!(",{:.4}", values[i]));
        }
        out.push('\n');
    }
    let path = dir.join(file);
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("  -> {}", path.display());
    }
}

/// Nearest-rank percentile of `samples` (`q` in (0, 1]); 0 when empty.
/// Sorts in place — callers pass scratch they no longer need ordered.
pub fn percentile(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * q).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Worker threads for sweeps: all cores minus one, at least one.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}
