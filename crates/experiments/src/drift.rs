//! `repro drift` — epoch-versioned plan hot-swap under workload drift,
//! with a mid-run broker crash and checkpoint restart.
//!
//! The workload drifts on a fixed cadence: every swap window the
//! logical→physical mapping rotates by [`ROTATE`] pages, sliding the hot
//! set off the fast disk and into the archive. Two fleets face the same
//! deterministic drift:
//!
//! * the **adaptive** fleet's broker carries a plan book — one
//!   re-optimized program per drift phase — and hot-swaps on a cycle
//!   boundary at every window (epoch fences announce the swap on wire
//!   v3). Mid-window-2 the broker is killed ([`FaultPlan::broker_kill_slot`])
//!   and restarted from its [`bdisk_broker::EngineCheckpoint`]: every connection is
//!   severed, clients reconnect with seeded backoff, and a resumed engine
//!   picks up the slot clock exactly where the crash left it. Every
//!   client must survive ≥3 swaps and ≥1 restart with zero fleet losses,
//!   and each window's measured mean delay must re-converge to the
//!   re-optimized plan's analytic prediction;
//! * the **control** fleet's broker never swaps: same drift, same seeds,
//!   same epoch-0 plan throughout — its windowed delay must degrade
//!   monotonically as the hot set slides away from the fast disk.
//!
//! Writes `drift.csv`: per-window measured and analytic means for both
//! fleets.

use std::sync::Arc;
use std::time::Duration;

use bdisk_broker::{
    Backpressure, BroadcastEngine, BusTuning, ClientEpoch, DriftBook, EngineConfig, FaultPlan,
    InMemoryBus, LiveClient, LiveClientResult, ReconnectPolicy, TcpClientFeed, TcpTransport,
    TcpTransportConfig,
};
use bdisk_cache::PolicyContext;
use bdisk_sched::{BroadcastPlan, BroadcastProgram, DiskLayout, PageId, Slot};
use bdisk_sim::{seeds_from_base, SimConfig};
use bdisk_workload::{Mapping, RegionZipf};

use crate::common::{self, Scale};
use crate::live::{self, LiveOptions};

/// Drift phases, one broadcast plan per phase.
const EPOCHS: usize = 4;

/// Pages the mapping rotates per phase. With [`DISKS`] = 200 pages this
/// walks the ~40%-mass hot head (pages 0..20 plus the warm shoulder)
/// from disk 1 into disk 2 and then deep into disk 3 — each phase is
/// analytically worse than the last for a non-adapting broadcast, which
/// is what makes the control's monotone degradation assertable.
const ROTATE: usize = 40;

/// A small three-disk layout (200 pages) keeps the period short enough
/// that a window of several cycles is thousands — not millions — of
/// slots, so a full four-phase run with a mid-run restart stays fast.
const DISKS: [usize; 3] = [20, 80, 100];
const DELTA: u64 = 3;

/// Per-scale knobs for the drift runs.
struct Params {
    clients: usize,
    /// Broadcast cycles per swap window (and per drift phase).
    swap_cycles: u64,
    slot: Duration,
    /// Relative tolerance for measured-vs-analytic convergence.
    tol: f64,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Full => Params {
            // The 10% convergence gate needs fleet-scale sample counts:
            // settled waits have σ ≈ 1.2× the mean, so ~1000 samples per
            // half-window keep the standard error under 4%.
            clients: 48,
            swap_cycles: 8,
            slot: Duration::from_micros(20),
            tol: 0.10,
        },
        Scale::Quick => Params {
            clients: 10,
            swap_cycles: 4,
            slot: Duration::from_micros(8),
            // A smoke bound: ~100 settled samples per window leaves real
            // sampling noise; the 10% convergence claim is full mode's.
            tol: 0.35,
        },
    }
}

/// Client config: no cache, no noise, access range = the whole database
/// so the rotation moves the entire probability mass. The request quota
/// is sized so every client is still tuned in well past the third swap
/// (surviving all swaps and the restart) and finishes shortly after
/// window 3 — late enough to fill every delay bucket, early enough that
/// the runs stay seconds.
fn drift_config(scale: Scale) -> SimConfig {
    let (requests, warmup) = match scale {
        Scale::Full => (185, 12),
        Scale::Quick => (95, 8),
    };
    SimConfig {
        access_range: DISKS.iter().sum(),
        region_size: 10,
        requests,
        warmup_requests: warmup,
        ..common::base_config(scale)
    }
}

/// The epoch-`rot` program: the base program with every page advanced by
/// `rot` (mod n). A pure permutation of the slot vector — same period,
/// same per-disk cadence — so after the hot set rotates by `rot`, this
/// plan serves it exactly as the base plan served the original workload.
fn rotated_program(base: &BroadcastProgram, layout: &DiskLayout, rot: usize) -> BroadcastProgram {
    let n = layout.total_pages();
    let slots: Vec<Slot> = base
        .slots()
        .iter()
        .map(|s| match *s {
            Slot::Page(p) => Slot::Page(PageId(((p.index() + rot) % n) as u32)),
            other => other,
        })
        .collect();
    let disk_of = |q: PageId| layout.disk_of(PageId(((q.index() + n - rot) % n) as u32)) as u16;
    BroadcastProgram::from_slots(slots, Some(&disk_of), layout.freqs().to_vec())
        .expect("rotating a valid program yields a valid program")
}

/// Everything both fleets share: the plan book, the per-phase mappings,
/// the per-phase physical probability vectors, and the client epoch book.
struct DriftWorld {
    layout: DiskLayout,
    plans: Vec<BroadcastPlan>,
    mappings: Vec<Mapping>,
    probs: Vec<Vec<f64>>,
    book: Arc<Vec<ClientEpoch>>,
    period: u64,
}

fn build_world(cfg: &SimConfig) -> DriftWorld {
    let layout = DiskLayout::with_delta(&DISKS, DELTA).expect("drift layout is valid");
    let n = layout.total_pages();
    let base = BroadcastProgram::generate(&layout).expect("drift program is valid");
    let period = base.period() as u64;
    let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);

    let mut plans = Vec::with_capacity(EPOCHS);
    let mut mappings = Vec::with_capacity(EPOCHS);
    let mut probs = Vec::with_capacity(EPOCHS);
    let mut book = Vec::with_capacity(EPOCHS);
    for p in 0..EPOCHS {
        let rot = (p * ROTATE) % n;
        let program = if rot == 0 {
            base.clone()
        } else {
            rotated_program(&base, &layout, rot)
        };
        let plan = BroadcastPlan::single(program).with_epoch(p as u32);
        let mapping = Mapping::identity(n).rotated(rot);
        let phys = mapping.physical_probs(zipf.probs());
        // The policy context a freshly-built client would have under this
        // epoch's workload and plan; adopted wholesale at each swap.
        let ctx = PolicyContext {
            probs: phys.clone(),
            page_disk: (0..n)
                .map(|q| plan.disk_of(PageId(q as u32)) as u16)
                .collect(),
            disk_freqs: layout.freqs().to_vec(),
            alpha: cfg.alpha,
        };
        book.push(ClientEpoch {
            plan: plan.clone(),
            ctx,
        });
        plans.push(plan);
        mappings.push(mapping);
        probs.push(phys);
    }
    DriftWorld {
        layout,
        plans,
        mappings,
        probs,
        book: Arc::new(book),
        period,
    }
}

/// Fleet-wide settled per-window delay means. Buckets are half a window
/// wide; the *second* half of each window is the settled measurement —
/// the first half absorbs the swap transient (a request already pending
/// when the plan swaps waits up to one period extra for its relocated
/// page, and that one-time cost belongs to the swap, not to the new
/// plan's steady state). Returns `(mean, samples)` per window.
fn settled_means(results: &[LiveClientResult], windows: usize) -> Vec<(f64, u64)> {
    let mut acc = vec![(0.0f64, 0u64); 2 * windows];
    for r in results {
        for (i, &(sum, count)) in r.delay_buckets.iter().enumerate().take(2 * windows) {
            acc[i].0 += sum;
            acc[i].1 += count;
        }
    }
    (0..windows)
        .map(|w| {
            let (sum, count) = acc[2 * w + 1];
            assert!(
                count > 0,
                "drift window {w} recorded no settled completions"
            );
            (sum / count as f64, count)
        })
        .collect()
}

/// The adaptive fleet's outcome.
struct AdaptiveOutcome {
    means: Vec<(f64, u64)>,
    min_swaps: u64,
    reconnects: u64,
    stale_frames: u64,
    gaps: u64,
    slots_before_kill: u64,
    slots_after_restart: u64,
}

/// Adaptive fleet over loopback TCP: plan book on the broker, epoch book
/// on every client, broker killed mid-window-2 and restarted from its
/// checkpoint over the same listener.
fn adaptive(
    scale: Scale,
    opts: &LiveOptions,
    world: &DriftWorld,
    cfg: &SimConfig,
) -> AdaptiveOutcome {
    let p = params(scale);
    let n = p.clients;
    let window = p.swap_cycles * world.period;
    let kill_slot = 2 * window + window / 2;

    println!(
        "\n--- adaptive: {n} TCP clients, swap every {window} slots \
         (cycle {c}), broker killed at slot {kill_slot} ---",
        c = p.swap_cycles,
    );

    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 8192,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .expect("loopback bind must succeed");
    let addr = transport.local_addr();

    let seeds = seeds_from_base(common::context().base_seed, n);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let cfg = cfg.clone();
            let layout = world.layout.clone();
            let plan0 = world.plans[0].clone();
            let book = Arc::clone(&world.book);
            let mappings = world.mappings.clone();
            let seed = seeds[i];
            std::thread::spawn(move || {
                let policy = ReconnectPolicy {
                    max_attempts: 200,
                    seed,
                    ..ReconnectPolicy::default()
                };
                let mut feed =
                    TcpClientFeed::connect(addr, policy, i as u64).expect("connect to broker");
                let mut client = LiveClient::with_plan(&cfg, &layout, plan0, seed)
                    .expect("valid client config")
                    .with_epoch_book(book)
                    .with_drift(DriftBook::new(window, mappings))
                    .with_delay_buckets(window / 2);
                while let Some(frame) = feed.recv() {
                    if client.on_frame(&frame) {
                        break;
                    }
                }
                (client.is_done(), feed.reconnects(), client.into_results())
            })
        })
        .collect();

    assert!(
        transport.wait_for_clients(n, Duration::from_secs(30)),
        "drift fleet failed to connect"
    );

    let engine_cfg = EngineConfig {
        max_slots: 40 * window,
        slot_duration: p.slot,
        no_client_grace_slots: 4 * world.period,
        page_size: opts.page_size,
        fault_plan: FaultPlan {
            broker_kill_slot: kill_slot,
            ..FaultPlan::none()
        },
        ..EngineConfig::default()
    };
    let engine = BroadcastEngine::with_plan_book(world.plans.clone(), p.swap_cycles, engine_cfg);
    let checkpoint = engine.checkpoint();
    let report_a = engine.run(&mut transport);

    // The "crash": every connection dies mid-stream; the listener (the
    // broker's well-known port) comes straight back up, as a restarted
    // process would. Clients notice the hangup and reconnect with seeded
    // backoff while we stand the replacement engine up.
    let severed = transport.disconnect_all();
    assert_eq!(severed, n, "the kill should sever the whole fleet");
    let resume = checkpoint.snapshot();
    assert_eq!(
        resume.seq, kill_slot,
        "checkpoint must stop exactly at the kill slot"
    );
    assert_eq!(resume.epoch, 2, "the kill lands mid-window-2");
    assert!(
        transport.wait_for_clients(n, Duration::from_secs(30)),
        "drift fleet failed to reconnect after the broker restart"
    );

    let engine2 = BroadcastEngine::with_plan_book(
        world.plans.clone(),
        p.swap_cycles,
        EngineConfig {
            max_slots: 40 * window,
            slot_duration: p.slot,
            no_client_grace_slots: 4 * world.period,
            page_size: opts.page_size,
            resume: Some(resume),
            ..EngineConfig::default()
        },
    );
    let report_b = engine2.run(&mut transport);

    let mut results = Vec::with_capacity(n);
    let mut min_swaps = u64::MAX;
    let mut reconnects = 0u64;
    let mut survivors = 0usize;
    for handle in handles {
        let (done, recs, r) = handle.join().expect("drift client panicked");
        if done {
            survivors += 1;
        }
        assert!(
            recs >= 1,
            "every client must live through the broker restart (got {recs} reconnects)"
        );
        min_swaps = min_swaps.min(r.epoch_swaps);
        reconnects += recs;
        results.push(r);
    }
    assert_eq!(survivors, n, "drift acceptance is zero fleet losses");
    assert!(
        min_swaps >= 3,
        "every client must survive at least 3 hot swaps (min was {min_swaps})"
    );

    let stale_frames = results.iter().map(|r| r.stale_epoch_frames).sum();
    let gaps = results.iter().map(|r| r.gaps).sum();
    let means = settled_means(&results, EPOCHS);
    AdaptiveOutcome {
        means,
        min_swaps,
        reconnects,
        stale_frames,
        gaps,
        slots_before_kill: report_a.slots_sent,
        slots_after_restart: report_b.slots_sent,
    }
}

/// Control fleet on the deterministic bus: identical drift and seeds,
/// but the broker airs the epoch-0 plan forever (wire stays v2).
fn control(
    scale: Scale,
    opts: &LiveOptions,
    world: &DriftWorld,
    cfg: &SimConfig,
) -> Vec<(f64, u64)> {
    let p = params(scale);
    let n = p.clients;
    let window = p.swap_cycles * world.period;

    println!("--- control: {n} bus clients, same drift, no swaps ---");

    let mut bus = InMemoryBus::with_tuning(4096, Backpressure::Block, BusTuning::throughput());
    let subs: Vec<_> = (0..n).map(|_| bus.subscribe()).collect();
    let seeds = seeds_from_base(common::context().base_seed, n);
    let mut clients: Vec<LiveClient> = seeds
        .iter()
        .map(|&seed| {
            LiveClient::with_plan(cfg, &world.layout, world.plans[0].clone(), seed)
                .expect("valid client config")
                .with_drift(DriftBook::new(window, world.mappings.clone()))
                .with_delay_buckets(window / 2)
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        world.plans[0].clone(),
        EngineConfig {
            max_slots: 100 * window,
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        engine.run(&mut bus);
        for h in handles {
            h.join().expect("control client must not panic");
        }
    })
    .expect("control run must not panic");

    let results: Vec<LiveClientResult> = clients.into_iter().map(|c| c.into_results()).collect();
    for r in &results {
        assert_eq!(
            r.outcome.measured_requests, cfg.requests,
            "a control client failed to finish"
        );
    }
    settled_means(&results, EPOCHS)
}

/// Runs both fleets, checks convergence and degradation, writes
/// `drift.csv`.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = live::start_metrics(opts);
    println!("\n=== Experiment: epoch hot-swap under workload drift ===");

    let p = params(scale);
    let cfg = drift_config(scale);
    let world = build_world(&cfg);
    let window = p.swap_cycles * world.period;
    println!(
        "layout {:?} Δ{DELTA}: period {} slots, window {window} slots, \
         rotation {ROTATE} pages/phase",
        DISKS, world.period
    );

    // Analytic predictions. The adaptive broker re-optimizes each phase,
    // so its prediction is phase p's plan against phase p's workload —
    // roughly flat. The control prediction holds the plan at epoch 0; it
    // must be strictly increasing or the parameterization is wrong.
    let preds: Vec<f64> = (0..EPOCHS)
        .map(|i| world.plans[i].expected_delay(&world.probs[i]))
        .collect();
    let control_preds: Vec<f64> = (0..EPOCHS)
        .map(|i| world.plans[0].expected_delay(&world.probs[i]))
        .collect();
    for i in 1..EPOCHS {
        assert!(
            control_preds[i] > control_preds[i - 1] * 1.05,
            "drift phases must be analytically distinct for the control \
             ({:.1} vs {:.1})",
            control_preds[i],
            control_preds[i - 1]
        );
    }

    let adaptive = adaptive(scale, opts, &world, &cfg);
    let control_means = control(scale, opts, &world, &cfg);

    // Convergence: each window's settled fleet mean tracks the
    // re-optimized analytic prediction.
    for (i, &(mean, samples)) in adaptive.means.iter().enumerate() {
        let gap = (mean - preds[i]).abs() / preds[i];
        println!(
            "drift witness: epoch {i} adaptive mean={mean:.1} pred={:.1} \
             gap={:.1}% ({samples} samples)",
            preds[i],
            gap * 100.0
        );
        assert!(
            gap <= p.tol,
            "window {i} mean {mean:.1} strayed {:.1}% from the re-optimized \
             prediction {:.1} (tolerance {:.0}%)",
            gap * 100.0,
            preds[i],
            p.tol * 100.0
        );
    }

    // Degradation: without swaps the same drift must make things
    // monotonically worse (2% slack absorbs sampling noise — the
    // analytic gaps between phases are 20%+).
    for i in 1..EPOCHS {
        assert!(
            control_means[i].0 >= control_means[i - 1].0 * 0.98,
            "control should degrade monotonically: window {i} improved \
             ({:.1} after {:.1})",
            control_means[i].0,
            control_means[i - 1].0
        );
    }
    assert!(
        control_means[EPOCHS - 1].0 >= control_means[0].0 * 1.2,
        "control should degrade materially across the drift \
         ({:.1} -> {:.1})",
        control_means[0].0,
        control_means[EPOCHS - 1].0
    );
    println!(
        "drift witness: control degradation {} (monotone)",
        control_means
            .iter()
            .map(|(m, _)| format!("{m:.1}"))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!(
        "drift witness: survivors={n}/{n} swaps={s} restarts=1 losses=0 \
         stale_frames={st} reconnects={r} gaps={g}",
        n = p.clients,
        s = adaptive.min_swaps,
        st = adaptive.stale_frames,
        r = adaptive.reconnects,
        g = adaptive.gaps,
    );
    println!(
        "        broker: {} slots aired, killed, {} more after restart",
        adaptive.slots_before_kill, adaptive.slots_after_restart
    );

    let xs: Vec<String> = (0..EPOCHS).map(|i| i.to_string()).collect();
    common::write_csv_with_comments(
        "drift.csv",
        "epoch",
        &xs,
        &[
            (
                "adaptive_mean".into(),
                adaptive.means.iter().map(|&(m, _)| m).collect(),
            ),
            ("adaptive_pred".into(), preds),
            (
                "control_mean".into(),
                control_means.iter().map(|&(m, _)| m).collect(),
            ),
            ("control_pred".into(), control_preds),
        ],
        &[
            format!("clients={}", p.clients),
            format!("swap_every_cycles={}", p.swap_cycles),
            format!("window_slots={window}"),
            format!("rotate_pages={ROTATE}"),
            format!("broker_kill_slot={}", 2 * window + window / 2),
        ],
    );

    live::linger(server, opts.serve_secs);
}
