//! `repro faults` — degradation under channel loss, and a chaos run.
//!
//! Two stages:
//!
//! 1. **Loss sweep** (deterministic in-memory bus): erasure rates swept
//!    over 0–20% × policies PIX / LIX / LRU at the Figure 13 operating
//!    point (D5, Δ = 3, Noise = 30%). The erasure schedule is seeded and
//!    *coupled* across rates — the slots erased at 5% are a subset of
//!    those erased at 10% — so degradation is structural, not sampling
//!    luck: the run asserts mean response time is monotonically
//!    non-decreasing in the loss rate, per policy. Results go to
//!    `faults.csv`.
//!
//! 2. **Chaos run** (loopback TCP): a large client fleet (256 full /
//!    24 quick) rides out 10% seeded erasure plus CRC-checked corruption.
//!    The bar is the paper's recovery model working end to end: zero
//!    client panics, every client completes its full measurement quota
//!    (impossible unless every lost pending page was recovered at a later
//!    periodic broadcast), recovery waits commensurate with the period.
//!
//! Both stages are summarized in `BENCH_faults.json`
//! (`bdisk-bench-faults/v1`), shape-checked after writing like the other
//! bench emitters.

use std::time::Duration;

use bdisk_broker::{
    aggregate, Backpressure, BroadcastEngine, BusTuning, EngineConfig, FaultPlan, InMemoryBus,
    LiveClient, LiveClientResult, ReconnectPolicy, TcpClientFeed, TcpTransport, TcpTransportConfig,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::{seeds_from_base, SimConfig};

use crate::bench::json;
use crate::common::{self, Scale};
use crate::live::{self, LiveOptions};

/// Policies compared under loss (the caching line-up that matters: the
/// paper's broadcast-aware policies vs the classic baseline).
const SWEEP_POLICIES: [PolicyKind; 3] = [PolicyKind::Pix, PolicyKind::Lix, PolicyKind::Lru];

/// Frame-erasure rates swept.
fn sweep_rates(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Full => &[0.0, 0.02, 0.05, 0.10, 0.20],
        Scale::Quick => &[0.0, 0.10],
    }
}

/// Clients averaged per sweep point.
fn sweep_clients(scale: Scale) -> usize {
    match scale {
        Scale::Full => 8,
        Scale::Quick => 4,
    }
}

/// Chaos-stage fleet size.
fn chaos_clients(scale: Scale) -> usize {
    match scale {
        Scale::Full => 256,
        Scale::Quick => 24,
    }
}

/// Chaos-stage measured requests per client (small quota: the stage
/// validates survival and recovery, not statistics).
fn chaos_requests(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 400,
        Scale::Quick => 150,
    }
}

/// Chaos-stage slot pacing. Free-running would outpace the clients'
/// frame parsing by an order of magnitude, so DropNewest backpressure —
/// not the injected erasure — would dominate the loss and the run would
/// crawl. Pacing keeps queue drops rare: the loss the fleet recovers
/// from is the seeded plan's.
fn chaos_slot(scale: Scale) -> Duration {
    match scale {
        Scale::Full => Duration::from_micros(25),
        Scale::Quick => Duration::from_micros(5),
    }
}

/// The channel fault seed, derived from the invocation's base seed so a
/// whole `repro faults` run replays bit-identically from the CSV header.
fn fault_seed() -> u64 {
    common::context().base_seed ^ 0xFA17
}

/// One sweep point's fleet outcome.
struct PointOutcome {
    mean: f64,
    hit: f64,
    /// Fleet 99.9th-percentile response time — the tail the loss lands in.
    p999: f64,
    gaps: u64,
    recoveries: u64,
    max_recovery_wait: u64,
    /// Fleet-wide p99 recovery wait (nearest-rank over every wait sample).
    p99_recovery_wait: u64,
    erased: u64,
}

/// Runs one (policy, erasure-rate) fleet on the deterministic bus. Block
/// backpressure means the only loss is the injected loss, so the outcome
/// is a pure function of the seeds — reruns are bit-identical.
fn sweep_point(
    scale: Scale,
    opts: &LiveOptions,
    policy: PolicyKind,
    rate: f64,
    layout: &DiskLayout,
    program: &BroadcastProgram,
) -> PointOutcome {
    let n = sweep_clients(scale);
    let seeds = seeds_from_base(common::context().base_seed, n);
    let cfg = common::caching_config(scale, policy, 0.30);

    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    if rate > 0.0 {
        bus.set_fault_plan(FaultPlan::erasure_only(fault_seed(), rate));
    }
    let subs: Vec<_> = (0..n).map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = seeds
        .iter()
        .map(|&seed| {
            LiveClient::new(&cfg, layout, program.clone(), seed).expect("valid client config")
        })
        .collect();

    let engine = BroadcastEngine::new(
        program.clone(),
        EngineConfig {
            max_slots: 100_000_000,
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().expect("sweep client must not panic");
        }
        report
    })
    .expect("sweep run must not panic");

    let erased = bus.fault_counts().erased;
    let results: Vec<LiveClientResult> = clients.into_iter().map(|c| c.into_results()).collect();
    for r in &results {
        assert_eq!(
            r.outcome.measured_requests,
            cfg.requests,
            "a sweep client failed to finish under {rate:.0}% loss",
            rate = rate * 100.0
        );
    }
    let gaps = results.iter().map(|r| r.gaps).sum();
    let recoveries = results.iter().map(|r| r.recoveries).sum();
    let max_recovery_wait = results
        .iter()
        .map(|r| r.max_recovery_wait)
        .max()
        .unwrap_or(0);
    let mut waits: Vec<u64> = results
        .iter()
        .flat_map(|r| r.recovery_waits.iter().copied())
        .collect();
    let p99_recovery_wait = common::percentile(&mut waits, 0.99);
    let fleet = aggregate(report, results);
    PointOutcome {
        mean: fleet.mean_response_time,
        hit: fleet.hit_rate.expect("finished run has measured requests"),
        p999: fleet.p999,
        gaps,
        recoveries,
        max_recovery_wait,
        p99_recovery_wait,
        erased,
    }
}

/// The chaos stage's fleet outcome.
struct ChaosOutcome {
    clients: usize,
    slots_sent: u64,
    period: u64,
    gaps: u64,
    recoveries: u64,
    reconnects: u64,
    max_recovery_wait: u64,
    corrupt_discarded: u64,
    erased: u64,
    corrupted: u64,
    elapsed_sec: f64,
}

/// Chaos-stage broadcast: a small paper-shaped layout (the perf bench's
/// operating point), not D5 — the stage validates fleet survival and
/// recovery mechanics, and a short period keeps both the run and each
/// recovery wait small enough to drive hundreds of clients in seconds.
const CHAOS_DISKS: [usize; 3] = [50, 200, 250];

/// Chaos stage: the full fleet over loopback TCP under 10% erasure plus
/// corruption, every client on a self-healing [`TcpClientFeed`].
fn chaos(scale: Scale, opts: &LiveOptions) -> ChaosOutcome {
    let n = chaos_clients(scale);
    let layout = DiskLayout::with_delta(&CHAOS_DISKS, 3).expect("chaos layout is valid");
    let program = BroadcastProgram::generate(&layout).expect("chaos program is valid");
    let period = program.period() as u64;
    let requests = chaos_requests(scale);
    let cfg = SimConfig {
        access_range: 500,
        region_size: 25,
        cache_size: 100,
        offset: 100,
        noise: 0.30,
        policy: PolicyKind::Lix,
        requests,
        warmup_requests: requests / 4,
        ..common::base_config(scale)
    };
    let plan = FaultPlan {
        seed: fault_seed(),
        erasure: 0.10,
        corruption: 0.01,
        ..FaultPlan::none()
    };

    println!(
        "\n--- chaos: {n} TCP clients, 10% erasure + 1% corruption, \
         {requests} requests each ---"
    );

    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 8192,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .expect("loopback bind must succeed");
    transport.set_fault_plan(plan);
    let addr = transport.local_addr();

    let seeds = seeds_from_base(common::context().base_seed, n);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let cfg = cfg.clone();
            let layout = layout.clone();
            let program = program.clone();
            let seed = seeds[i];
            std::thread::spawn(move || {
                let policy = ReconnectPolicy {
                    seed,
                    ..ReconnectPolicy::default()
                };
                let mut feed =
                    TcpClientFeed::connect(addr, policy, i as u64).expect("connect to broker");
                let mut client =
                    LiveClient::new(&cfg, &layout, program, seed).expect("valid client config");
                while let Some(frame) = feed.recv() {
                    if client.on_frame(&frame) {
                        break;
                    }
                }
                (
                    client.is_done(),
                    feed.reconnects(),
                    feed.corrupt_frames(),
                    client.into_results(),
                )
            })
        })
        .collect();

    assert!(
        transport.wait_for_clients(n, Duration::from_secs(60)),
        "chaos fleet failed to connect"
    );
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 100_000_000,
            slot_duration: chaos_slot(scale),
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    let start = std::time::Instant::now();
    let report = engine.run(&mut transport);
    let elapsed_sec = start.elapsed().as_secs_f64();
    let counts = transport.fault_counts();

    let mut gaps = 0u64;
    let mut recoveries = 0u64;
    let mut reconnects = 0u64;
    let mut max_recovery_wait = 0u64;
    let mut corrupt_discarded = 0u64;
    for handle in handles {
        let (done, recs, corrupt, results) = handle
            .join()
            .expect("chaos client panicked — acceptance is zero panics");
        assert!(done, "a chaos client failed to finish its quota");
        assert_eq!(results.outcome.measured_requests, requests);
        gaps += results.gaps;
        recoveries += results.recoveries;
        reconnects += recs;
        corrupt_discarded += corrupt;
        max_recovery_wait = max_recovery_wait.max(results.max_recovery_wait);
    }
    assert!(gaps > 0, "10% erasure produced no observable gaps");
    assert!(recoveries >= 1, "no lost pending page was ever recovered");
    // A single lost broadcast recovers within one period by construction
    // (pinned by the broker's unit tests); the wait here counts from the
    // FIRST miss, so repeated erasure of the same page or a client stalled
    // through whole periods (a scheduling hiccup under a fleet of threads
    // shows up as a burst of queue drops) stretches it to k periods. The
    // fleet-wide worst case must still be a bounded multiple — unbounded
    // growth would mean a recovery that never lands.
    assert!(
        max_recovery_wait <= 20 * period,
        "recovery waited {max_recovery_wait} slots; period is {period}"
    );
    assert!(counts.erased > 0 && counts.corrupted > 0);

    println!(
        "chaos:  {} slots in {elapsed_sec:.2}s; {} erased, {} corrupted on the wire",
        report.slots_sent, counts.erased, counts.corrupted
    );
    println!(
        "        fleet: {n}/{n} completed, {gaps} gaps, {recoveries} recoveries \
         (max wait {max_recovery_wait} of period {period}), \
         {corrupt_discarded} CRC discards, {reconnects} reconnects"
    );

    ChaosOutcome {
        clients: n,
        slots_sent: report.slots_sent,
        period,
        gaps,
        recoveries,
        reconnects,
        max_recovery_wait,
        corrupt_discarded,
        erased: counts.erased,
        corrupted: counts.corrupted,
        elapsed_sec,
    }
}

/// Runs the loss sweep and the chaos stage; writes `faults.csv` and
/// `BENCH_faults.json`.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = live::start_metrics(opts);
    let rates = sweep_rates(scale);
    let layout = common::layout("D5", 3);
    let program = BroadcastProgram::generate(&layout).expect("paper layout is valid");

    println!(
        "\n=== faults: loss sweep, D5, Delta=3, Noise=30%, {} clients/point, \
         erasure seed {} ===",
        sweep_clients(scale),
        fault_seed()
    );

    // outcomes[p][r]: policy p at rate r.
    let outcomes: Vec<Vec<PointOutcome>> = SWEEP_POLICIES
        .iter()
        .map(|&policy| {
            rates
                .iter()
                .map(|&rate| {
                    let point = sweep_point(scale, opts, policy, rate, &layout, &program);
                    println!(
                        "  {:>4} @ {:>4.0}% loss: mean {:>7.1}  hit {:.3}  \
                         ({} erased, {} gaps, {} recoveries, max wait {})",
                        policy.name(),
                        rate * 100.0,
                        point.mean,
                        point.hit,
                        point.erased,
                        point.gaps,
                        point.recoveries,
                        point.max_recovery_wait
                    );
                    point
                })
                .collect()
        })
        .collect();

    // The acceptance bar: coupled erasure means more loss can only delay —
    // mean response must be monotonically non-decreasing in the rate.
    for (p, per_rate) in outcomes.iter().enumerate() {
        for w in per_rate.windows(2) {
            assert!(
                w[1].mean + 1e-9 >= w[0].mean,
                "{} mean response decreased as loss rose ({:.3} -> {:.3})",
                SWEEP_POLICIES[p].name(),
                w[0].mean,
                w[1].mean
            );
        }
    }
    println!("degradation: monotone — mean response never improves with loss");

    let xs: Vec<String> = rates.iter().map(|r| format!("{r:.2}")).collect();
    let mut table = Vec::new();
    let mut series = Vec::new();
    for (p, &policy) in SWEEP_POLICIES.iter().enumerate() {
        let name = policy.name().to_lowercase();
        let means: Vec<f64> = outcomes[p].iter().map(|o| o.mean).collect();
        table.push((format!("{name}_mean"), means.clone()));
        series.push((format!("{name}_mean"), means));
        series.push((
            format!("{name}_hit"),
            outcomes[p].iter().map(|o| o.hit).collect(),
        ));
        series.push((
            format!("{name}_p999"),
            outcomes[p].iter().map(|o| o.p999).collect(),
        ));
        series.push((
            format!("{name}_recover"),
            outcomes[p].iter().map(|o| o.recoveries as f64).collect(),
        ));
        series.push((
            format!("{name}_p99wait"),
            outcomes[p]
                .iter()
                .map(|o| o.p99_recovery_wait as f64)
                .collect(),
        ));
        series.push((
            format!("{name}_maxwait"),
            outcomes[p]
                .iter()
                .map(|o| o.max_recovery_wait as f64)
                .collect(),
        ));
    }
    common::print_table(
        "response vs loss rate (coupled erasure, deterministic bus)",
        "loss",
        &xs,
        &table,
    );
    // The replay keys ride in the header: the erasure schedule is a pure
    // function of fault_seed, and the whole sweep runs under the engine's
    // initial plan epoch (no hot swaps here — `repro drift` exercises those).
    common::write_csv_with_comments(
        "faults.csv",
        "loss",
        &xs,
        &series,
        &[
            format!("fault_seed={}", fault_seed()),
            "plan_epoch=0".to_string(),
        ],
    );

    let chaos = chaos(scale, opts);

    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let sweep_rows: Vec<String> = SWEEP_POLICIES
        .iter()
        .enumerate()
        .flat_map(|(p, &policy)| {
            let outcomes = &outcomes[p];
            rates.iter().enumerate().map(move |(r, &rate)| {
                let o = &outcomes[r];
                format!(
                    "    {{\"policy\": \"{}\", \"rate\": {rate:.2}, \
                     \"mean_response\": {:.4}, \"hit_rate\": {:.4}, \"gaps\": {}, \
                     \"recoveries\": {}, \"max_recovery_wait\": {}, \
                     \"p99_recovery_wait\": {}}}",
                    policy.name(),
                    o.mean,
                    o.hit,
                    o.gaps,
                    o.recoveries,
                    o.max_recovery_wait,
                    o.p99_recovery_wait
                )
            })
        })
        .collect();
    let faults_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-faults/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"operating_point\": {{\n    \"config\": \"D5\", \"delta\": 3, \"noise\": 0.3, \
         \"clients_per_point\": {}, \"fault_seed\": {}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"chaos\": {{\n    \"clients\": {}, \"completed\": {}, \"erasure\": 0.10, \
         \"corruption\": 0.01, \"slots\": {}, \"period\": {}, \"gaps\": {}, \
         \"recoveries\": {}, \"reconnects\": {}, \"max_recovery_wait\": {}, \
         \"crc_discards\": {}, \"erased\": {}, \"corrupted\": {}, \
         \"elapsed_sec\": {:.4}\n  }}\n}}\n",
        sweep_clients(scale),
        fault_seed(),
        sweep_rows.join(",\n"),
        chaos.clients,
        chaos.clients,
        chaos.slots_sent,
        chaos.period,
        chaos.gaps,
        chaos.recoveries,
        chaos.reconnects,
        chaos.max_recovery_wait,
        chaos.corrupt_discarded,
        chaos.erased,
        chaos.corrupted,
        chaos.elapsed_sec,
    );
    crate::bench::emit("BENCH_faults.json", &faults_json);
    validate(&faults_json, SWEEP_POLICIES.len() * rates.len());

    live::linger(server, opts.serve_secs);
}

/// Shape check for `BENCH_faults.json`; panics (failing CI) on regression.
fn validate(text: &str, expected_rows: usize) {
    let v = json::parse(text).expect("BENCH_faults.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-faults/v1"),
        "faults bench schema tag"
    );
    let sweep = v
        .get("sweep")
        .and_then(json::Value::as_array)
        .expect("sweep array");
    assert_eq!(sweep.len(), expected_rows, "one sweep row per point");
    for row in sweep {
        assert!(
            row.get("policy").and_then(json::Value::as_str).is_some(),
            "sweep row needs a policy"
        );
        for key in [
            "rate",
            "mean_response",
            "hit_rate",
            "gaps",
            "recoveries",
            "max_recovery_wait",
            "p99_recovery_wait",
        ] {
            assert!(
                row.get(key).and_then(json::Value::as_f64).is_some(),
                "sweep row.{key} must be a number"
            );
        }
        let mean = row
            .get("mean_response")
            .and_then(json::Value::as_f64)
            .unwrap();
        assert!(mean > 0.0, "mean response must be positive");
    }
    let chaos = v.get("chaos").expect("chaos object");
    for key in [
        "clients",
        "completed",
        "slots",
        "period",
        "gaps",
        "recoveries",
        "max_recovery_wait",
        "erased",
        "corrupted",
    ] {
        assert!(
            chaos.get(key).and_then(json::Value::as_f64).is_some(),
            "chaos.{key} must be a number"
        );
    }
    assert_eq!(
        chaos.get("clients").and_then(json::Value::as_f64),
        chaos.get("completed").and_then(json::Value::as_f64),
        "every chaos client must complete"
    );
    assert!(chaos.get("gaps").and_then(json::Value::as_f64).unwrap() > 0.0);
}
