//! `repro coding` — coded repair slots: recovery latency vs code rate.
//!
//! The broadcast disk's loss story without coding is "wait a period": a
//! client whose pending page is erased listens until the page comes around
//! again. `bdisk-code` converts the schedule's dead air (and, past that,
//! duplicate airings) into parity symbols; a client that heard the rest of
//! a symbol's coverage window reconstructs the lost page at the symbol,
//! slots — not a period — after the loss.
//!
//! Stages:
//!
//! 1. **Rate × loss sweep** (deterministic in-memory bus): LT fountain
//!    symbols at code rates 0 and 25% × erasure rates 5–20%, D5, Δ = 3,
//!    Offset = 0, Noise = 0, policy LIX. The operating point is chosen so
//!    the pending population is *coverable*: repair slots can only
//!    displace padding or *duplicate* airings, so the frequency-1 disk is
//!    outside every coverage window — offset or noise would strand hot
//!    pages there and pin the recovery tail to the period plateau no code
//!    rate can move (see DESIGN.md §8 for the shadow analysis). At offset
//!    0 / noise 0 every requested page lives on a disk with spare
//!    airings. The erasure schedule is seeded and shared across rates,
//!    and coded plans *nest* (the repair slots at rate r are a subset of
//!    those at r' > r), so the comparison across rates is structural, not
//!    sampled. The swept rates bracket the anchor loss deliberately: a
//!    code rate *below* the channel's erasure rate cannot repair most
//!    losses (there are fewer parity symbols than holes), and recovery
//!    waits concentrate on exact gap multiples (stolen airings double a
//!    gap; a full period is the worst case), so only a rate comfortably
//!    above the loss moves the tail off its plateau. The run asserts
//!    in-process that the fleet's p99 recovery wait **strictly
//!    decreases** as the code rate rises at 10% loss, and that rate 0
//!    decodes nothing. Results go to `coding.csv`; each point also
//!    reports the analytic `expected_delay_lossy` and its loss-induced
//!    excess over the same plan's lossless delay — the excess must
//!    collapse with the rate (total mean delay need not: stolen airings
//!    widen base gaps, the price of the tail collapse).
//!
//! 2. **Coded live parity** (lossless bus, 2-channel plan, LT fountain
//!    codec): every client must be bit-identical to `simulate_plan` on the
//!    same coded plan — repair slots displace padding, never data timing,
//!    and a lossless feed never decodes.
//!
//! Artifacts: `results/coding.csv` and the shape-validated
//! `BENCH_coding.json` (`bdisk-bench-coding/v1`, with the
//! `"rate_monotonic": true` witness CI greps for).

use bdisk_broker::{
    aggregate, Backpressure, BroadcastEngine, BusTuning, EngineConfig, FaultPlan, InMemoryBus,
    LiveClient, LiveClientResult,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastPlan, ChannelId, CodingConfig, DiskLayout};
use bdisk_sim::{seeds_from_base, simulate_plan, SimConfig};
use bdisk_workload::RegionZipf;

use crate::bench::{self, json};
use crate::common::{self, Scale};
use crate::live::{linger, start_metrics, LiveOptions};

/// Parity-group span: each repair symbol draws from the last 25 distinct
/// *coded* (multi-airing) pages aired before it. At the swept code rate (a
/// repair every ~4 slots) every data slot sits under ~6 overlapping
/// windows, so the peeling decoder behaves like a spatially-coupled
/// erasure code: a double loss that defeats one symbol resolves through a
/// neighbour once either of its holes decodes elsewhere. The LT codec is
/// essential here, not a luxury: whole-window XOR symbols over sliding
/// windows are prefix-sum constraints (`P(b) ⊕ P(a−1)`), so a run of them
/// is rank-deficient and peeling stalls near half the losses regardless of
/// overhead, while random-subset symbols give an expander-like graph that
/// drains almost everything (see the `stream_decode` harness).
const GROUP: usize = 25;

/// Bit-identical tolerance for the coded 2-channel live parity stage.
const PARITY_TOLERANCE: f64 = 1e-9;

/// Code rates swept (repair slots per broadcast slot). Two points at both
/// scales: uncoded, and a rate 2.5× the anchor loss — see the module docs
/// for why sub-loss rates cannot move the recovery-wait plateau.
fn code_rates(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Full => &[0.0, 0.25],
        Scale::Quick => &[0.0, 0.25],
    }
}

/// Frame-erasure rates swept.
fn loss_rates(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Full => &[0.05, 0.10, 0.20],
        Scale::Quick => &[0.10],
    }
}

/// The loss rate the monotonicity assertion anchors on (present at both
/// scales).
const ANCHOR_LOSS: f64 = 0.10;

/// Clients averaged per sweep point.
fn sweep_clients(scale: Scale) -> usize {
    match scale {
        Scale::Full => 8,
        Scale::Quick => 4,
    }
}

/// The erasure seed, derived from the invocation's base seed — shared by
/// every sweep point so the slots erased are identical across code rates.
fn fault_seed() -> u64 {
    common::context().base_seed ^ 0xC0DE
}

/// The coding seed (symbol selection for the LT codec).
fn coding_seed() -> u64 {
    common::context().base_seed ^ 0x50D4
}

/// One sweep point's fleet outcome.
struct PointOutcome {
    mean: f64,
    hit: f64,
    gaps: u64,
    recoveries: u64,
    recoveries_coded: u64,
    symbols_decoded: u64,
    mean_wait: f64,
    p99_wait: u64,
    max_wait: u64,
    analytic: f64,
    /// Loss-induced excess of the analytic model: `expected_delay_lossy`
    /// minus the same plan's lossless `expected_delay`. Isolates the
    /// model's repair credit from the base-delay cost of stolen airings.
    analytic_excess: f64,
}

/// Runs one (code rate, loss rate) fleet on the deterministic bus.
fn sweep_point(
    scale: Scale,
    opts: &LiveOptions,
    rate: f64,
    loss: f64,
    layout: &DiskLayout,
    plan: &BroadcastPlan,
    probs: &[f64],
) -> PointOutcome {
    let n = sweep_clients(scale);
    let seeds = seeds_from_base(common::context().base_seed, n);
    let cfg = SimConfig {
        offset: 0,
        ..common::caching_config(scale, PolicyKind::Lix, 0.0)
    };

    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    bus.set_fault_plan(FaultPlan::erasure_only(fault_seed(), loss));
    let subs: Vec<_> = (0..n).map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = seeds
        .iter()
        .map(|&seed| {
            LiveClient::with_plan(&cfg, layout, plan.clone(), seed).expect("valid client config")
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        plan.clone(),
        EngineConfig {
            max_slots: 100_000_000,
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().expect("coding sweep client must not panic");
        }
        report
    })
    .map(|report| {
        let results: Vec<LiveClientResult> =
            clients.into_iter().map(|c| c.into_results()).collect();
        for r in &results {
            assert_eq!(
                r.outcome.measured_requests, cfg.requests,
                "a coding sweep client failed to finish (rate {rate}, loss {loss})"
            );
        }
        let gaps = results.iter().map(|r| r.gaps).sum();
        let recoveries: u64 = results.iter().map(|r| r.recoveries).sum();
        let recoveries_coded = results.iter().map(|r| r.recoveries_coded).sum();
        let symbols_decoded = results.iter().map(|r| r.symbols_decoded).sum();
        let mut waits: Vec<u64> = results
            .iter()
            .flat_map(|r| r.recovery_waits.iter().copied())
            .collect();
        let mean_wait = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        };
        let p99_wait = common::percentile(&mut waits, 0.99);
        let max_wait = waits.last().copied().unwrap_or(0);
        let fleet = aggregate(report, results);
        PointOutcome {
            mean: fleet.mean_response_time,
            hit: fleet.hit_rate.expect("finished run has measured requests"),
            gaps,
            recoveries,
            recoveries_coded,
            symbols_decoded,
            mean_wait,
            p99_wait,
            max_wait,
            analytic: plan.expected_delay_lossy(probs, loss),
            analytic_excess: plan.expected_delay_lossy(probs, loss) - plan.expected_delay(probs),
        }
    })
    .expect("coding sweep run must not panic")
}

/// Runs the sweep, the monotonicity assertions, the coded parity stage,
/// and the artifacts.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = start_metrics(opts);
    let rates = code_rates(scale);
    let losses = loss_rates(scale);
    let layout = common::layout("D5", 3);

    println!(
        "\n=== coding: LT repair slots, D5, Delta=3, Offset=0, Noise=0, LIX, group={GROUP}, \
         {} clients/point, erasure seed {} ===",
        sweep_clients(scale),
        fault_seed()
    );

    // Analytic access distribution: region-Zipf logical probabilities under
    // the identity mapping, padded to the full page set (same convention as
    // `repro channels`).
    let base = common::base_config(scale);
    let zipf = RegionZipf::new(base.access_range, base.region_size, base.theta);
    let mut probs = zipf.probs().to_vec();
    probs.resize(layout.total_pages(), 0.0);

    // One coded plan per rate, shared across losses and clients. Rate 0 is
    // the uncoded identity plan (`with_coding` returns it unchanged).
    let plans: Vec<BroadcastPlan> = rates
        .iter()
        .map(|&rate| {
            let plan = BroadcastPlan::generate(&layout, 1)
                .expect("paper layout is valid")
                .with_coding(CodingConfig::lt(rate, GROUP, coding_seed()))
                .expect("sweep coding config is valid");
            // Satellite: the plan summary reports per-channel slot budgets
            // (data / empty / repair), so the dead-air conversion is visible.
            println!("\nplan @ rate {rate:.2}:\n{}", plan.summary());
            plan
        })
        .collect();

    // outcomes[l][r]: loss l at code rate r.
    let outcomes: Vec<Vec<PointOutcome>> = losses
        .iter()
        .map(|&loss| {
            rates
                .iter()
                .zip(&plans)
                .map(|(&rate, plan)| {
                    let point = sweep_point(scale, opts, rate, loss, &layout, plan, &probs);
                    println!(
                        "  rate {rate:>4.2} @ {:>4.0}% loss: mean {:>7.1}  \
                         waits mean {:>6.1} p99 {:>5} max {:>5}  \
                         ({} recoveries, {} coded, {} symbols decoded)",
                        loss * 100.0,
                        point.mean,
                        point.mean_wait,
                        point.p99_wait,
                        point.max_wait,
                        point.recoveries,
                        point.recoveries_coded,
                        point.symbols_decoded,
                    );
                    point
                })
                .collect()
        })
        .collect();

    // Rate 0 must be observably uncoded: nothing decodes, nothing is coded.
    for per_rate in &outcomes {
        let zero = &per_rate[0];
        assert_eq!(zero.recoveries_coded, 0, "rate 0 produced coded recoveries");
        assert_eq!(zero.symbols_decoded, 0, "rate 0 decoded repair symbols");
    }

    // The acceptance bar: at the anchor loss rate the recovery-wait tail
    // collapses as the code rate rises — p99 strictly decreasing — and the
    // analytic lossy delay agrees on the direction.
    let anchor = losses
        .iter()
        .position(|&l| (l - ANCHOR_LOSS).abs() < 1e-12)
        .expect("anchor loss rate is always swept");
    let per_rate = &outcomes[anchor];
    for w in per_rate.windows(2) {
        assert!(
            w[1].p99_wait < w[0].p99_wait,
            "p99 recovery wait must strictly decrease with code rate at \
             {:.0}% loss: {:?}",
            ANCHOR_LOSS * 100.0,
            per_rate.iter().map(|o| o.p99_wait).collect::<Vec<_>>()
        );
        assert!(
            w[1].recoveries_coded > w[0].recoveries_coded,
            "coded recoveries must rise with the code rate"
        );
    }
    // The analytic model's repair credit: the *loss-induced excess* (lossy
    // minus lossless delay of the same plan) must collapse as the rate
    // rises. Total lossy delay is the wrong yardstick here — at high rates
    // stolen airings widen base gaps by more than repair saves in *mean*
    // delay, a tradeoff the simulated mean response shows too; the tail
    // collapse above is what coding buys.
    let excess_anchor: Vec<f64> = per_rate.iter().map(|o| o.analytic_excess).collect();
    for w in excess_anchor.windows(2) {
        assert!(
            w[1] < w[0],
            "analytic loss excess must collapse with the code rate: {excess_anchor:?}"
        );
    }
    println!(
        "\nmonotonicity: OK — p99 recovery wait strictly decreasing in code rate \
         at {:.0}% loss",
        ANCHOR_LOSS * 100.0
    );

    let xs: Vec<String> = rates.iter().map(|r| format!("{r:.2}")).collect();
    let mut table = Vec::new();
    let mut series = Vec::new();
    for (l, &loss) in losses.iter().enumerate() {
        let tag = format!("loss{:02}", (loss * 100.0).round() as u32);
        let p99s: Vec<f64> = outcomes[l].iter().map(|o| o.p99_wait as f64).collect();
        table.push((format!("{tag}_p99wait"), p99s.clone()));
        series.push((format!("{tag}_p99wait"), p99s));
        series.push((
            format!("{tag}_maxwait"),
            outcomes[l].iter().map(|o| o.max_wait as f64).collect(),
        ));
        series.push((
            format!("{tag}_meanwait"),
            outcomes[l].iter().map(|o| o.mean_wait).collect(),
        ));
        series.push((
            format!("{tag}_mean"),
            outcomes[l].iter().map(|o| o.mean).collect(),
        ));
        series.push((
            format!("{tag}_coded"),
            outcomes[l]
                .iter()
                .map(|o| o.recoveries_coded as f64)
                .collect(),
        ));
        series.push((
            format!("{tag}_analytic"),
            outcomes[l].iter().map(|o| o.analytic).collect(),
        ));
        series.push((
            format!("{tag}_analytic_excess"),
            outcomes[l].iter().map(|o| o.analytic_excess).collect(),
        ));
    }
    common::print_table(
        "p99 recovery wait vs code rate (coupled erasure, deterministic bus)",
        "rate",
        &xs,
        &table,
    );
    common::write_csv("coding.csv", "rate", &xs, &series);

    // --- coded live parity on a 2-channel plan (LT fountain codec) ---
    let parity_gap = coded_parity(scale, opts, &layout);

    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let rows: Vec<String> = losses
        .iter()
        .enumerate()
        .flat_map(|(l, &loss)| {
            let outcomes = &outcomes[l];
            rates.iter().enumerate().map(move |(r, &rate)| {
                let o = &outcomes[r];
                format!(
                    "    {{\"rate\": {rate:.2}, \"loss\": {loss:.2}, \
                     \"mean_response\": {:.4}, \"hit_rate\": {:.4}, \"gaps\": {}, \
                     \"recoveries\": {}, \"recoveries_coded\": {}, \
                     \"symbols_decoded\": {}, \"mean_wait\": {:.4}, \
                     \"p99_wait\": {}, \"max_wait\": {}, \"analytic_lossy\": {:.4}, \
                     \"analytic_excess\": {:.4}}}",
                    o.mean,
                    o.hit,
                    o.gaps,
                    o.recoveries,
                    o.recoveries_coded,
                    o.symbols_decoded,
                    o.mean_wait,
                    o.p99_wait,
                    o.max_wait,
                    o.analytic,
                    o.analytic_excess
                )
            })
        })
        .collect();
    let coding_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-coding/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"operating_point\": {{\n    \"config\": \"D5\", \"delta\": 3, \"offset\": 0, \
         \"noise\": 0.0, \
         \"policy\": \"LIX\", \"group\": {GROUP}, \"codec\": \"lt\", \
         \"clients_per_point\": {}, \"fault_seed\": {}, \"coding_seed\": {}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"rate_monotonic\": true,\n  \
         \"live_parity\": {{\"channels\": 2, \"codec\": \"lt\", \
         \"worst_gap\": {parity_gap:.3e}, \"tolerance\": {PARITY_TOLERANCE:e}}}\n}}\n",
        sweep_clients(scale),
        fault_seed(),
        coding_seed(),
        rows.join(",\n"),
    );
    bench::emit("BENCH_coding.json", &coding_json);
    validate(&coding_json, rates.len() * losses.len());

    linger(server, opts.serve_secs);
}

/// The live engine on a *coded* 2-channel plan (LT fountain) over the
/// lossless bus: every client must be bit-identical to `simulate_plan` on
/// the same plan, and must decode nothing. Returns the worst observed gap.
fn coded_parity(scale: Scale, opts: &LiveOptions, layout: &DiskLayout) -> f64 {
    let plan = BroadcastPlan::generate(layout, 2)
        .expect("2-channel D5 plan")
        .with_coding(CodingConfig::lt(0.10, GROUP, coding_seed()))
        .expect("parity coding config is valid");
    let policies = [PolicyKind::Pix, PolicyKind::Lix, PolicyKind::Lru];
    let seeds = seeds_from_base(common::context().base_seed, policies.len());
    let roster: Vec<(PolicyKind, u64)> = policies.iter().copied().zip(seeds).collect();
    let config = |policy| SimConfig {
        channels: 2,
        switch_slots: 0.0,
        ..common::caching_config(scale, policy, 0.30)
    };

    println!(
        "\n=== coding: live parity — {} clients on a coded 2-channel plan (LT) ===",
        roster.len()
    );
    println!("{}", plan.summary());

    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    let subs: Vec<_> = roster.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = roster
        .iter()
        .map(|&(policy, seed)| {
            LiveClient::with_plan(&config(policy), layout, plan.clone(), seed)
                .expect("live client config is valid")
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        plan.clone(),
        EngineConfig {
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        engine.run(&mut bus);
        for h in handles {
            h.join().expect("parity client must not panic");
        }
    })
    .expect("coded parity run must not panic");

    let results: Vec<_> = clients.into_iter().map(|c| c.into_results()).collect();
    let mut worst_gap: f64 = 0.0;
    for (&(policy, seed), result) in roster.iter().zip(&results) {
        assert_eq!(result.gaps, 0, "{policy:?}: lossless feed saw gaps");
        assert_eq!(
            result.symbols_decoded, 0,
            "{policy:?}: a lossless feed must never decode"
        );
        assert_eq!(result.recoveries_coded, 0);
        let sim = simulate_plan(&config(policy), layout, plan.clone(), seed)
            .expect("simulator run on the coded plan");
        let out = &result.outcome;
        for (live_v, sim_v) in [
            (out.mean_response_time, sim.mean_response_time),
            (out.hit_rate, sim.hit_rate),
            (out.end_time, sim.end_time),
        ] {
            worst_gap = worst_gap.max((live_v - sim_v).abs());
        }
        assert!(
            worst_gap < PARITY_TOLERANCE,
            "{policy:?}/seed {seed}: coded 2-channel live diverged from \
             simulate_plan (gap {worst_gap:.3e})"
        );
    }
    println!(
        "parity: EXACT — {} clients on the coded plan, worst gap {worst_gap:.3e} \
         (tolerance {PARITY_TOLERANCE:e})",
        roster.len()
    );
    worst_gap
}

/// Shape check for `BENCH_coding.json`; panics (failing CI) on regression.
fn validate(text: &str, expected_rows: usize) {
    let v = json::parse(text).expect("BENCH_coding.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-coding/v1"),
        "coding bench schema tag"
    );
    let op = v.get("operating_point").expect("operating_point object");
    for key in [
        "delta",
        "offset",
        "noise",
        "group",
        "clients_per_point",
        "fault_seed",
    ] {
        assert!(
            op.get(key).and_then(json::Value::as_f64).is_some(),
            "operating_point.{key} must be a number"
        );
    }
    let sweep = v
        .get("sweep")
        .and_then(json::Value::as_array)
        .expect("sweep array");
    assert_eq!(sweep.len(), expected_rows, "one sweep row per (rate, loss)");
    for row in sweep {
        for key in [
            "rate",
            "loss",
            "mean_response",
            "hit_rate",
            "gaps",
            "recoveries",
            "recoveries_coded",
            "symbols_decoded",
            "mean_wait",
            "p99_wait",
            "max_wait",
            "analytic_lossy",
            "analytic_excess",
        ] {
            assert!(
                row.get(key).and_then(json::Value::as_f64).is_some(),
                "sweep row.{key} must be a number"
            );
        }
    }
    assert!(
        matches!(v.get("rate_monotonic"), Some(json::Value::Bool(true))),
        "rate_monotonic witness must be true"
    );
    let parity = v.get("live_parity").expect("live_parity object");
    let gap = parity
        .get("worst_gap")
        .and_then(json::Value::as_f64)
        .expect("live_parity.worst_gap must be a number");
    let tol = parity
        .get("tolerance")
        .and_then(json::Value::as_f64)
        .expect("live_parity.tolerance must be a number");
    assert!(gap < tol, "recorded coded parity gap exceeds tolerance");
    // Sanity: channel ids in the parity stage are well-formed (touches the
    // typed id to keep the import meaningful).
    let _ = ChannelId(0);
}
