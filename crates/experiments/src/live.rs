//! `repro live` — runs the real broadcast engine (`bdisk-broker`) at the
//! paper's Figure 13 operating point and validates the live measurements
//! against simulator predictions.
//!
//! Operating point: configuration D5 ⟨500, 2000, 2500⟩, Δ = 3,
//! CacheSize = Offset = 500, Noise = 30%, policies LRU / L / LIX / PIX —
//! the clients are split evenly across the four policies, with per-client
//! seeds derived from the invocation's base seed.
//!
//! Parity contract: on the lossless in-memory bus every client sees every
//! slot, so each live client's measurements must be **bit-identical** to
//! the simulator run with the same seed (tolerance 1e-9, i.e. exact up to
//! float printing). Over TCP, backpressure may drop frames for a slow
//! client — a dropped page simply comes around on a later broadcast cycle,
//! which perturbs response times but barely moves hit rates, so per-policy
//! hit rates are checked within a 2-percentage-point tolerance instead.

use std::time::Duration;

use bdisk_broker::{
    aggregate, Backpressure, BroadcastEngine, BusTuning, EngineConfig, EventedTcpTransport,
    InMemoryBus, LiveClient, LiveClientResult, TcpFrameReader, TcpTransport, TcpTransportConfig,
    Transport,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::BroadcastPlan;
use bdisk_sim::{seeds_from_base, simulate_plan, SimConfig, SimOutcome};

use crate::common::{self, Scale};

/// Which transport `repro live` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveTransport {
    /// In-memory broadcast bus, lossless (exact simulator parity).
    Bus,
    /// Loopback TCP with drop-newest backpressure, one writer thread per
    /// connection.
    Tcp,
    /// Loopback TCP on the single-threaded epoll event loop — same wire
    /// format and semantics, scales to 10k+ connections.
    TcpEvented,
}

impl std::str::FromStr for LiveTransport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bus" => Ok(LiveTransport::Bus),
            "tcp" | "tcp-threaded" => Ok(LiveTransport::Tcp),
            "tcp-evented" | "evented" => Ok(LiveTransport::TcpEvented),
            other => Err(format!(
                "unknown transport '{other}' (expected bus, tcp, or tcp-evented)"
            )),
        }
    }
}

/// `repro live` options (from `--transport`, `--clients`, `--page-size`,
/// `--metrics-addr`, `--serve-secs`).
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Transport to drive.
    pub transport: LiveTransport,
    /// Concurrent clients (at least 4, one per policy).
    pub clients: usize,
    /// Broadcast channels to stripe the layout across (default 1 — the
    /// paper's single channel; parity stays bit-exact at any count).
    pub channels: usize,
    /// Bytes of page payload per frame (`PageSize`, paper Table 2).
    pub page_size: usize,
    /// Serve `GET /metrics` and `GET /events` on this address during the run.
    pub metrics_addr: Option<String>,
    /// Keep the metrics endpoint up this many seconds after the run, so
    /// scrapers (and the CI smoke test) can collect the final state.
    pub serve_secs: u64,
}

impl Default for LiveOptions {
    fn default() -> Self {
        Self {
            transport: LiveTransport::Bus,
            clients: 16,
            channels: 1,
            page_size: 64,
            metrics_addr: None,
            serve_secs: 0,
        }
    }
}

/// Registers every layer's metric families and, when `--metrics-addr` was
/// given, binds the HTTP endpoint — eager registration means `/metrics`
/// shows the full inventory from the first scrape, not just what traffic
/// has touched.
pub(crate) fn start_metrics(opts: &LiveOptions) -> Option<bdisk_obs::MetricsServer> {
    bdisk_broker::register_metrics();
    bdisk_cache::register_metrics();
    bdisk_sim::register_metrics();
    let addr = opts.metrics_addr.as_deref()?;
    match bdisk_obs::MetricsServer::bind(addr) {
        Ok(server) => {
            // With an endpoint up, `/events` and `/trace` should have
            // something to serve: both the journal and the span ring are
            // bounded and never block the broadcast path, so tracing
            // rides along for free (1-in-64 request/slot sampling).
            bdisk_obs::set_tracing_enabled(true);
            bdisk_obs::trace::set_sample_every(64);
            println!(
                "metrics: serving http://{}/metrics, /events and /trace",
                server.addr()
            );
            Some(server)
        }
        Err(e) => {
            eprintln!("warning: cannot bind metrics endpoint {addr}: {e}");
            None
        }
    }
}

/// Holds the metrics endpoint open after the run for late scrapers.
pub(crate) fn linger(server: Option<bdisk_obs::MetricsServer>, secs: u64) {
    if let Some(mut server) = server {
        if secs > 0 {
            println!(
                "metrics: serving for {secs}s more at http://{}/",
                server.addr()
            );
            std::thread::sleep(Duration::from_secs(secs));
        }
        server.stop();
    }
}

/// The Figure 13 policy line-up.
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::L,
    PolicyKind::Lix,
    PolicyKind::Pix,
];

/// Bit-identical tolerance for the lossless bus.
const BUS_TOLERANCE: f64 = 1e-9;
/// Hit-rate tolerance (absolute) for the lossy TCP path.
const TCP_HIT_TOLERANCE: f64 = 0.02;

/// Runs the live engine and validates it against the simulator.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = start_metrics(opts);
    let n_clients = opts.clients.max(POLICIES.len());
    let layout = common::layout("D5", 3);
    let plan = BroadcastPlan::generate(&layout, opts.channels).expect("paper layout is valid");
    let seeds = seeds_from_base(common::context().base_seed, n_clients);

    // Client i runs policy i mod 4 with its own derived seed.
    let roster: Vec<(PolicyKind, u64)> = (0..n_clients)
        .map(|i| (POLICIES[i % POLICIES.len()], seeds[i]))
        .collect();

    println!(
        "\n=== live broadcast: D5, Delta=3, Noise=30%, {} clients over {}, {} channel(s) ===",
        n_clients,
        match opts.transport {
            LiveTransport::Bus => "in-memory bus",
            LiveTransport::Tcp => "loopback TCP (threaded)",
            LiveTransport::TcpEvented => "loopback TCP (evented)",
        },
        opts.channels
    );

    let tcp_config = TcpTransportConfig {
        queue_capacity: 8192,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    };
    let (report, results) = match opts.transport {
        LiveTransport::Bus => run_bus(scale, opts, &roster, &layout, &plan),
        LiveTransport::Tcp => {
            let transport = TcpTransport::bind(tcp_config).expect("loopback bind must succeed");
            run_tcp(scale, opts, &roster, &layout, &plan, transport)
        }
        LiveTransport::TcpEvented => {
            let transport =
                EventedTcpTransport::bind(tcp_config).expect("loopback bind must succeed");
            run_tcp(scale, opts, &roster, &layout, &plan, transport)
        }
    };

    println!(
        "engine: {} slots ({} major cycles) in {:.2}s = {:.0} slots/sec",
        report.slots_sent,
        report.major_cycles,
        report.elapsed.as_secs_f64(),
        report.slots_per_sec
    );
    println!(
        "        {} frames delivered, {} dropped, {} clients disconnected, max lag {} frames",
        report.frames_delivered,
        report.frames_dropped,
        report.clients_disconnected,
        report.max_client_lag
    );
    println!(
        "        {:.1} MB of {}-byte pages shipped ({:.1} MB/s fan-out)",
        report.bytes_sent as f64 / 1e6,
        opts.page_size,
        report.bytes_sent as f64 / 1e6 / report.elapsed.as_secs_f64().max(1e-9)
    );
    assert!(
        report.major_cycles >= 2,
        "live run must span at least two full broadcast periods"
    );

    // Simulator predictions for the same roster (in parallel).
    let predictions: Vec<SimOutcome> = bdisk_sim::sweep(
        roster.clone(),
        common::threads(),
        |&(policy, seed): &(PolicyKind, u64)| {
            let cfg = config(scale, policy, plan.num_channels());
            simulate_plan(&cfg, &layout, plan.clone(), seed).expect("simulator run must succeed")
        },
    );

    let fleet = aggregate(report, results);
    let fleet_hit = fleet
        .hit_rate
        .expect("a finished live run has measured requests");
    println!(
        "fleet:  {} measured requests, mean response {:.1}, hit rate {:.3}",
        fleet.measured_requests, fleet.mean_response_time, fleet_hit
    );
    println!(
        "        service latency p50 {:.0}  p95 {:.0}  p99 {:.0}  p999 {:.0} (broadcast units)",
        fleet.p50, fleet.p95, fleet.p99, fleet.p999
    );

    // Per-policy comparison table: live vs simulator.
    let mut xs = Vec::new();
    let mut live_mean = Vec::new();
    let mut sim_mean = Vec::new();
    let mut live_hit = Vec::new();
    let mut sim_hit = Vec::new();
    let mut live_p99 = Vec::new();
    let mut sim_p99 = Vec::new();
    let mut live_p999 = Vec::new();
    let mut sim_p999 = Vec::new();
    let mut worst_hit_gap: f64 = 0.0;
    let mut worst_mean_gap: f64 = 0.0;
    for &policy in &POLICIES {
        let members: Vec<usize> = roster
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == policy)
            .map(|(i, _)| i)
            .collect();
        let mean = |outs: &[&SimOutcome]| {
            outs.iter().map(|o| o.mean_response_time).sum::<f64>() / outs.len() as f64
        };
        let hit =
            |outs: &[&SimOutcome]| outs.iter().map(|o| o.hit_rate).sum::<f64>() / outs.len() as f64;
        let p99 =
            |outs: &[&SimOutcome]| outs.iter().map(|o| o.p99).sum::<f64>() / outs.len() as f64;
        let p999 =
            |outs: &[&SimOutcome]| outs.iter().map(|o| o.p999).sum::<f64>() / outs.len() as f64;
        let live_outs: Vec<&SimOutcome> = members.iter().map(|&i| &fleet.per_client[i]).collect();
        let sim_outs: Vec<&SimOutcome> = members.iter().map(|&i| &predictions[i]).collect();
        let (lm, sm) = (mean(&live_outs), mean(&sim_outs));
        let (lh, sh) = (hit(&live_outs), hit(&sim_outs));
        worst_mean_gap = worst_mean_gap.max((lm - sm).abs());
        worst_hit_gap = worst_hit_gap.max((lh - sh).abs());
        xs.push(policy.name().to_string());
        live_mean.push(lm);
        sim_mean.push(sm);
        live_hit.push(lh);
        sim_hit.push(sh);
        live_p99.push(p99(&live_outs));
        sim_p99.push(p99(&sim_outs));
        live_p999.push(p999(&live_outs));
        sim_p999.push(p999(&sim_outs));
    }

    common::print_table(
        "live vs simulator (Figure 13 operating point)",
        "policy",
        &xs,
        &[
            ("live_mean".to_string(), live_mean.clone()),
            ("sim_mean".to_string(), sim_mean.clone()),
            ("live_hit".to_string(), live_hit.clone()),
            ("sim_hit".to_string(), sim_hit.clone()),
            ("live_p99".to_string(), live_p99.clone()),
            ("sim_p99".to_string(), sim_p99.clone()),
            ("live_p999".to_string(), live_p999.clone()),
            ("sim_p999".to_string(), sim_p999.clone()),
        ],
    );
    common::write_csv(
        "live.csv",
        "policy",
        &xs,
        &[
            ("live_mean".to_string(), live_mean),
            ("sim_mean".to_string(), sim_mean),
            ("live_hit".to_string(), live_hit),
            ("sim_hit".to_string(), sim_hit),
            ("live_p99".to_string(), live_p99),
            ("sim_p99".to_string(), sim_p99),
            ("live_p999".to_string(), live_p999),
            ("sim_p999".to_string(), sim_p999),
        ],
    );

    match opts.transport {
        LiveTransport::Bus => {
            assert!(
                worst_mean_gap < BUS_TOLERANCE && worst_hit_gap < BUS_TOLERANCE,
                "lossless bus must match the simulator exactly \
                 (mean gap {worst_mean_gap:.3e}, hit gap {worst_hit_gap:.3e})"
            );
            println!(
                "parity: EXACT — every client bit-identical to its simulated twin \
                 (tolerance {BUS_TOLERANCE:e})"
            );
        }
        LiveTransport::Tcp | LiveTransport::TcpEvented => {
            if worst_hit_gap <= TCP_HIT_TOLERANCE {
                println!(
                    "parity: OK — worst per-policy hit-rate gap {:.4} within tolerance {}",
                    worst_hit_gap, TCP_HIT_TOLERANCE
                );
            } else {
                println!(
                    "parity: WARN — hit-rate gap {:.4} exceeds {} (heavy frame loss?)",
                    worst_hit_gap, TCP_HIT_TOLERANCE
                );
            }
        }
    }

    linger(server, opts.serve_secs);
}

/// `repro trace` — a short live run on the in-memory bus with the event
/// journal enabled, tailed concurrently to stdout (first events + per-kind
/// totals) and in full to `results/trace.csv`.
///
/// The journal is a fixed-size ring that overwrites the oldest entries
/// rather than ever blocking the broadcast path, so the tailer reports an
/// explicit count of events it was too slow to collect.
pub fn trace(scale: Scale, opts: &LiveOptions) {
    use bdisk_obs::expo::{render_event_csv_row, EVENT_CSV_HEADER};
    use std::sync::atomic::{AtomicBool, Ordering};

    let server = start_metrics(opts);
    bdisk_obs::set_tracing_enabled(true);

    // Trace runs are about the event stream, not statistics: keep the
    // fleet small so the CSV stays readable.
    let trace_opts = LiveOptions {
        clients: opts.clients.min(POLICIES.len()),
        ..opts.clone()
    };
    let n_clients = trace_opts.clients.max(POLICIES.len());
    let layout = common::layout("D5", 3);
    let plan =
        BroadcastPlan::generate(&layout, trace_opts.channels).expect("paper layout is valid");
    let seeds = seeds_from_base(common::context().base_seed, n_clients);
    let roster: Vec<(PolicyKind, u64)> = (0..n_clients)
        .map(|i| (POLICIES[i % POLICIES.len()], seeds[i]))
        .collect();

    println!(
        "\n=== trace: D5, Delta=3, {} clients over in-memory bus, journal -> stdout + trace.csv ===",
        n_clients
    );

    // Tail the journal while the run executes: poll for new events, print
    // the first few, and buffer collected rows for the CSV. A free-running
    // engine emits millions of events per run, so the CSV keeps the first
    // `CSV_MAX_EVENTS` and the per-kind totals keep counting past the cap.
    const STDOUT_EVENTS: usize = 24;
    const CSV_MAX_EVENTS: u64 = 250_000;
    let done = AtomicBool::new(false);
    let start_seq = bdisk_obs::journal().head();
    let (report, results, csv, total, dropped) = crossbeam::scope(|scope| {
        let done = &done;
        let tailer = scope.spawn(move |_| {
            let journal = bdisk_obs::journal();
            let mut next = start_seq;
            let mut csv = String::from(EVENT_CSV_HEADER);
            csv.push('\n');
            let mut total: u64 = 0;
            let mut dropped: u64 = 0;
            let mut printed = 0usize;
            let mut counts = [0u64; 16];
            loop {
                let finished = done.load(Ordering::Acquire);
                let batch = journal.since(next);
                next = batch.next_seq;
                dropped += batch.dropped;
                for ev in &batch.events {
                    total += 1;
                    counts[ev.kind as usize & 15] += 1;
                    if total <= CSV_MAX_EVENTS {
                        csv.push_str(&render_event_csv_row(ev));
                        csv.push('\n');
                    }
                    if printed < STDOUT_EVENTS {
                        println!(
                            "  [{:>6}] {:<18} a={} b={}",
                            ev.seq,
                            ev.kind.name(),
                            ev.a,
                            ev.b
                        );
                        printed += 1;
                    } else if printed == STDOUT_EVENTS {
                        println!("  ... (full stream in trace.csv)");
                        printed += 1;
                    }
                }
                if finished {
                    return (csv, total, dropped, counts);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let (report, results) = run_bus(scale, &trace_opts, &roster, &layout, &plan);
        done.store(true, Ordering::Release);
        let (csv, total, dropped, counts) = tailer.join().expect("tailer must not panic");

        println!("\nevent totals over {} collected events:", total);
        for kind in 0..12u8 {
            if counts[kind as usize] > 0 {
                let name = bdisk_obs::EventKind::from_u8(kind)
                    .map(|k| k.name())
                    .unwrap_or("?");
                println!("  {:<18} {}", name, counts[kind as usize]);
            }
        }
        (report, results, csv, total, dropped)
    })
    .expect("trace run must not panic");

    // The ring never blocks the broadcast path, so a slow tailer loses
    // events; the reader's dropped count is part of the result, printed
    // even when it's the happy zero.
    println!("  reader dropped: {dropped} events overwritten before collection");
    if total > CSV_MAX_EVENTS {
        println!(
            "  (trace.csv truncated to the first {CSV_MAX_EVENTS} of {total} collected events)"
        );
    }
    let fleet = aggregate(report, results);
    println!(
        "run:    {} slots, {} measured requests, {} events tailed",
        fleet.engine.slots_sent, fleet.measured_requests, total
    );

    let dir = common::context().out_dir.as_path();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    } else {
        // Footer, not header: the dropped total is only known once the
        // tailer has drained the ring after the run.
        let mut csv = csv;
        csv.push_str(&format!("# dropped={dropped}\n"));
        let path = dir.join("trace.csv");
        match std::fs::write(&path, csv) {
            Ok(()) => println!("  -> {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    linger(server, opts.serve_secs);
}

/// The Figure 13 caching config for one policy at `channels`.
fn config(scale: Scale, policy: PolicyKind, channels: usize) -> SimConfig {
    SimConfig {
        channels,
        switch_slots: 0.0,
        ..common::caching_config(scale, policy, 0.30)
    }
}

fn run_bus(
    scale: Scale,
    opts: &LiveOptions,
    roster: &[(PolicyKind, u64)],
    layout: &bdisk_sched::DiskLayout,
    plan: &BroadcastPlan,
) -> (bdisk_broker::EngineReport, Vec<LiveClientResult>) {
    // The zero-copy fast path: batched flushes + worker-shard fan-out. The
    // bus stays lossless (Block), so parity with the simulator is exact.
    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    let subs: Vec<_> = roster.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = roster
        .iter()
        .map(|&(policy, seed)| {
            let cfg = config(scale, policy, plan.num_channels());
            LiveClient::with_plan(&cfg, layout, plan.clone(), seed)
                .expect("live client config is valid")
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        plan.clone(),
        EngineConfig {
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().expect("client thread must not panic");
        }
        report
    })
    .expect("live run must not panic");

    let results = clients.into_iter().map(|c| c.into_results()).collect();
    (report, results)
}

/// The accessors `run_tcp` needs beyond [`Transport`], provided by both
/// TCP server implementations.
trait TcpServer: Transport {
    fn local_addr(&self) -> std::net::SocketAddr;
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool;
}

impl TcpServer for TcpTransport {
    fn local_addr(&self) -> std::net::SocketAddr {
        TcpTransport::local_addr(self)
    }
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        TcpTransport::wait_for_clients(self, n, timeout)
    }
}

impl TcpServer for EventedTcpTransport {
    fn local_addr(&self) -> std::net::SocketAddr {
        EventedTcpTransport::local_addr(self)
    }
    fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        EventedTcpTransport::wait_for_clients(self, n, timeout)
    }
}

fn run_tcp<T: TcpServer>(
    scale: Scale,
    opts: &LiveOptions,
    roster: &[(PolicyKind, u64)],
    layout: &bdisk_sched::DiskLayout,
    plan: &BroadcastPlan,
    mut transport: T,
) -> (bdisk_broker::EngineReport, Vec<LiveClientResult>) {
    let addr = transport.local_addr();

    let handles: Vec<_> = roster
        .iter()
        .map(|&(policy, seed)| {
            let cfg = config(scale, policy, plan.num_channels());
            let layout = layout.clone();
            let plan = plan.clone();
            std::thread::spawn(move || {
                let mut reader = TcpFrameReader::connect(addr).expect("connect to broker");
                let mut client =
                    LiveClient::with_plan(&cfg, &layout, plan, seed).expect("valid client config");
                while let Ok(Some(frame)) = reader.recv() {
                    if client.on_frame(&frame) {
                        break;
                    }
                }
                client.into_results()
            })
        })
        .collect();

    assert!(
        transport.wait_for_clients(roster.len(), Duration::from_secs(30)),
        "clients failed to connect"
    );
    let engine = BroadcastEngine::with_plan(
        plan.clone(),
        EngineConfig {
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);
    let results = handles
        .into_iter()
        .map(|h| h.join().expect("client thread must not panic"))
        .collect();
    (report, results)
}
