//! Figures 3 and 12: the paper's two worked examples, reproduced as
//! narrated program output.

use bdisk_analytic::ProgramAnalysis;
use bdisk_cache::{CachePolicy, LixPolicy};
use bdisk_sched::{BroadcastProgram, DiskLayout, PageId};

/// Figure 3: deriving a server broadcast program (3 disks, rel freq 4:2:1).
pub fn figure3() {
    println!("\n=== Figure 3: Deriving a Server Broadcast Program ===");
    let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).expect("figure 3 layout");
    let program = BroadcastProgram::generate(&layout).expect("figure 3 program");

    println!("database: 11 pages; disks of {:?} pages", layout.sizes());
    println!("rel_freq  = {:?}", layout.freqs());
    let max_chunks = 4;
    println!("max_chunks = lcm(4,2,1) = {max_chunks}");
    println!("num_chunks = [1, 2, 4]\n");

    let minor = program.period() / max_chunks;
    for m in 0..max_chunks {
        let slots = &program.slots()[m * minor..(m + 1) * minor];
        let rendered: Vec<String> = slots
            .iter()
            .map(|s| match s {
                bdisk_sched::Slot::Page(p) => ((b'A' + p.0 as u8) as char).to_string(),
                bdisk_sched::Slot::Empty => "-".into(),
                bdisk_sched::Slot::Repair(_) => "+".into(),
                bdisk_sched::Slot::EpochFence => "|".into(),
                bdisk_sched::Slot::Pull(p) => format!("<{}", p.0),
            })
            .collect();
        println!("minor cycle {}: {}", m + 1, rendered.join(" "));
    }

    let analysis = ProgramAnalysis::of(&program);
    println!(
        "\nmajor cycle = {} slots, {} unused",
        analysis.period, analysis.empty_slots
    );
    println!(
        "page A every {} slots, pages B/C every {} slots, others every {} slots",
        program.gap(PageId(0)).unwrap(),
        program.gap(PageId(1)).unwrap(),
        program.gap(PageId(3)).unwrap()
    );
    assert!(analysis.fixed_interarrival, "figure 3 must have fixed gaps");
}

/// Figure 12: page replacement in LIX (two-disk broadcast).
pub fn figure12() {
    println!("\n=== Figure 12: Page Replacement in LIX ===");
    // Pages a..g (0..7) on disk 1, h..k (7..11) on disk 2, new page z = 11
    // arriving from disk 2.
    let page_disk: Vec<u16> = (0..12u16).map(|p| if p < 7 { 0 } else { 1 }).collect();
    let mut lix = LixPolicy::new(11, page_disk, vec![2.0, 1.0], 0.25);

    let name = |p: PageId| ((b'a' + p.0 as u8) as char).to_string();

    // Build the figure's chains: Disk1Q = a b c d e f g, Disk2Q = h i j k.
    for p in (0..7u32).rev() {
        lix.insert(PageId(p), f64::from(20 - p));
    }
    for p in (7..11u32).rev() {
        lix.insert(PageId(p), f64::from(40 - p));
    }
    // Heat k so its lix exceeds g's, then restore the chain order.
    lix.on_hit(PageId(10), 60.0);
    for p in 7..10u32 {
        lix.on_hit(PageId(p), 61.0);
    }

    let now = 70.0;
    let g = PageId(6);
    let k = PageId(10);
    println!(
        "bottom of Disk1Q: '{}' lix = {:.3}",
        name(g),
        lix.lix_value(g, now).unwrap()
    );
    println!(
        "bottom of Disk2Q: '{}' lix = {:.3}",
        name(k),
        lix.lix_value(k, now).unwrap()
    );

    let victim = lix.insert(PageId(11), now).expect("cache full");
    println!(
        "new page 'z' (disk 2) arrives -> victim = '{}' (lowest lix)",
        name(victim)
    );
    println!(
        "Disk1Q now {} pages, Disk2Q now {} pages (chains resize dynamically)",
        lix.chain_len(0),
        lix.chain_len(1)
    );
    assert_eq!(victim, g, "the figure's victim is g");
}
