//! `repro channels` — the multi-channel broadcast sweep.
//!
//! Sweeps the paper's D5 configuration (⟨500, 2000, 2500⟩, Δ = 3 — the
//! fixed 5000-page set) striped across 1–4 broadcast channels and measures
//! mean response time for PIX, LIX, and LRU at the Figure 13 caching
//! operating point (CacheSize = Offset = 500, Noise = 30%), at zero switch
//! cost. Alongside the simulation it evaluates the plan's *analytic*
//! expected delay under the region-Zipf access distribution.
//!
//! Two invariants are asserted in-process (failing the run, and CI):
//!
//! * the analytic expected delay is non-increasing in the channel count —
//!   striping only shrinks per-channel periods; and
//! * at zero switch cost the simulated mean response time is non-increasing
//!   in the channel count for PIX and LIX (exact at full scale, a small
//!   slack at `--quick` statistics).
//!
//! A final stage runs the live broadcast engine on a 2-channel plan over
//! the lossless in-memory bus and checks every client against
//! `simulate_plan` **bit-exactly** — the multi-channel extension of the
//! `repro live` parity contract — which also exercises the per-channel
//! metric families (`bd_slots_by_channel_total` and friends).
//!
//! Artifacts: `results/channels.csv` and the tracked, shape-validated
//! `BENCH_channels.json`.

use bdisk_broker::{
    aggregate, Backpressure, BroadcastEngine, BusTuning, EngineConfig, InMemoryBus, LiveClient,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::BroadcastPlan;
use bdisk_sim::{seeds_from_base, simulate_plan, SimConfig, SimOutcome};
use bdisk_workload::RegionZipf;

use crate::bench::{self, json};
use crate::common::{self, Scale};
use crate::live::{linger, start_metrics, LiveOptions};

/// Channel counts swept.
const CHANNEL_COUNTS: [usize; 4] = [1, 2, 3, 4];

/// Policies compared across channel counts.
const POLICIES: [PolicyKind; 3] = [PolicyKind::Pix, PolicyKind::Lix, PolicyKind::Lru];

/// Bit-identical tolerance for the 2-channel live parity stage.
const PARITY_TOLERANCE: f64 = 1e-9;

/// The Figure 13 caching config at `channels`, zero switch cost.
fn config(scale: Scale, policy: PolicyKind, channels: usize) -> SimConfig {
    SimConfig {
        channels,
        switch_slots: 0.0,
        ..common::caching_config(scale, policy, 0.30)
    }
}

/// Runs the sweep, the assertions, the artifacts, and the live parity stage.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = start_metrics(opts);
    let layout = common::layout("D5", 3);
    let seeds = scale.seeds();

    println!(
        "\n=== channels: D5, Delta=3, Noise=30%, {} channels x {{PIX, LIX, LRU}}, switch cost 0 ===",
        CHANNEL_COUNTS.len()
    );

    // Analytic access distribution: the region-Zipf logical probabilities
    // under the identity mapping (offset 0, noise 0), padded with zeros to
    // the full 5000-page set. Any fixed distribution works for the
    // monotonicity claim; this one matches the workload's skew.
    let base = common::base_config(scale);
    let zipf = RegionZipf::new(base.access_range, base.region_size, base.theta);
    let mut probs = zipf.probs().to_vec();
    probs.resize(layout.total_pages(), 0.0);

    let mut analytic = Vec::new();
    let mut sim_means: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
    for &channels in &CHANNEL_COUNTS {
        let plan = BroadcastPlan::generate(&layout, channels).expect("paper layout stripes");
        analytic.push(plan.expected_delay(&probs));

        // All (policy, seed) points of this channel count in parallel,
        // sharing the one generated plan.
        let points: Vec<(usize, u64)> = POLICIES
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| seeds.iter().map(move |&s| (pi, s)))
            .collect();
        let outcomes: Vec<SimOutcome> = bdisk_sim::sweep(
            points.clone(),
            common::threads(),
            |&(pi, seed): &(usize, u64)| {
                let cfg = config(scale, POLICIES[pi], channels);
                simulate_plan(&cfg, &layout, plan.clone(), seed)
                    .expect("channel sweep run must succeed")
            },
        );
        for (pi, _) in POLICIES.iter().enumerate() {
            let per_policy: Vec<f64> = points
                .iter()
                .zip(&outcomes)
                .filter(|((i, _), _)| *i == pi)
                .map(|(_, o)| o.mean_response_time)
                .collect();
            sim_means[pi].push(per_policy.iter().sum::<f64>() / per_policy.len() as f64);
        }
    }

    let xs: Vec<String> = CHANNEL_COUNTS.iter().map(|c| c.to_string()).collect();
    let mut series = vec![("analytic".to_string(), analytic.clone())];
    for (pi, policy) in POLICIES.iter().enumerate() {
        series.push((policy.name().to_lowercase(), sim_means[pi].clone()));
    }
    common::print_table(
        "mean response vs broadcast channels (D5, Delta=3)",
        "channels",
        &xs,
        &series,
    );
    common::write_csv("channels.csv", "channels", &xs, &series);

    // Striping only shrinks per-channel periods, so the analytic delay of
    // the fixed layout must be non-increasing in the channel count.
    assert_non_increasing("analytic expected delay", &analytic, 1e-9);

    // At zero switch cost the simulated means must not get worse either;
    // full scale is averaged over enough requests to assert exactly, quick
    // runs get a small statistical slack.
    let slack = match scale {
        Scale::Full => 1e-9,
        Scale::Quick => 0.05,
    };
    for (pi, policy) in POLICIES.iter().enumerate() {
        if matches!(policy, PolicyKind::Pix | PolicyKind::Lix) {
            assert_non_increasing_rel(
                &format!("{} simulated mean", policy.name()),
                &sim_means[pi],
                slack,
            );
        }
    }
    println!(
        "monotonicity: OK — delay non-increasing 1→{} channels",
        CHANNEL_COUNTS.len()
    );

    // --- live parity on a 2-channel plan ---
    let live_gap = live_parity(scale, opts, &layout);

    let mode = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let rows: Vec<String> = CHANNEL_COUNTS
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "    {{\"channels\": {c}, \"analytic_delay\": {:.4}, \
                 \"pix_mean\": {:.4}, \"lix_mean\": {:.4}, \"lru_mean\": {:.4}}}",
                analytic[i], sim_means[0][i], sim_means[1][i], sim_means[2][i]
            )
        })
        .collect();
    let channels_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-channels/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"operating_point\": {{\n    \"config\": \"D5\", \"delta\": 3, \"noise\": 0.3, \
         \"cache_size\": 500, \"switch_slots\": 0.0, \"seeds\": {}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"live_parity\": {{\"channels\": 2, \"worst_gap\": {live_gap:.3e}, \
         \"tolerance\": {PARITY_TOLERANCE:e}}}\n}}\n",
        seeds.len(),
        rows.join(",\n"),
    );
    bench::emit("BENCH_channels.json", &channels_json);
    validate(&channels_json, CHANNEL_COUNTS.len());

    linger(server, opts.serve_secs);
}

/// Asserts `values` never increases (absolute slack).
fn assert_non_increasing(what: &str, values: &[f64], slack: f64) {
    for w in values.windows(2) {
        assert!(
            w[1] <= w[0] + slack,
            "{what} must be non-increasing in channel count: {values:?}"
        );
    }
}

/// Asserts `values` never increases by more than `rel` relative slack.
fn assert_non_increasing_rel(what: &str, values: &[f64], rel: f64) {
    for w in values.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + rel),
            "{what} must be non-increasing in channel count: {values:?}"
        );
    }
}

/// The live engine on a 2-channel plan over the lossless bus: every client
/// must be bit-identical to its `simulate_plan` twin. Returns the worst
/// observed gap (for the tracked JSON).
fn live_parity(scale: Scale, opts: &LiveOptions, layout: &bdisk_sched::DiskLayout) -> f64 {
    let plan = BroadcastPlan::generate(layout, 2).expect("2-channel D5 plan");
    let seeds = seeds_from_base(common::context().base_seed, POLICIES.len());
    let roster: Vec<(PolicyKind, u64)> = POLICIES.iter().copied().zip(seeds).collect();

    println!(
        "\n=== channels: live parity — {} clients on a 2-channel plan over the bus ===",
        roster.len()
    );

    let mut bus = InMemoryBus::with_tuning(512, Backpressure::Block, BusTuning::throughput());
    let subs: Vec<_> = roster.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = roster
        .iter()
        .map(|&(policy, seed)| {
            LiveClient::with_plan(&config(scale, policy, 2), layout, plan.clone(), seed)
                .expect("live client config is valid")
        })
        .collect();

    let engine = BroadcastEngine::with_plan(
        plan.clone(),
        EngineConfig {
            page_size: opts.page_size,
            ..EngineConfig::default()
        },
    );
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().expect("client thread must not panic");
        }
        report
    })
    .expect("live parity run must not panic");

    let results: Vec<_> = clients.into_iter().map(|c| c.into_results()).collect();
    let mut worst_gap: f64 = 0.0;
    for (&(policy, seed), result) in roster.iter().zip(&results) {
        let cfg = config(scale, policy, 2);
        let sim = simulate_plan(&cfg, layout, plan.clone(), seed).expect("simulator run");
        let out = &result.outcome;
        for (live_v, sim_v) in [
            (out.mean_response_time, sim.mean_response_time),
            (out.hit_rate, sim.hit_rate),
            (out.end_time, sim.end_time),
        ] {
            worst_gap = worst_gap.max((live_v - sim_v).abs());
        }
        assert!(
            worst_gap < PARITY_TOLERANCE,
            "{policy:?}/seed {seed}: 2-channel live diverged from simulate_plan \
             (gap {worst_gap:.3e})"
        );
    }
    let fleet = aggregate(report, results);
    println!(
        "parity: EXACT — {} clients, {} measured requests, worst gap {worst_gap:.3e} \
         (tolerance {PARITY_TOLERANCE:e})",
        roster.len(),
        fleet.measured_requests
    );
    worst_gap
}

/// Shape check for `BENCH_channels.json`; panics (failing CI) on regression.
fn validate(text: &str, expected_points: usize) {
    let v = json::parse(text).expect("BENCH_channels.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-channels/v1"),
        "channels bench schema tag"
    );
    let op = v.get("operating_point").expect("operating_point object");
    for key in ["delta", "noise", "cache_size", "switch_slots", "seeds"] {
        assert!(
            op.get(key).and_then(json::Value::as_f64).is_some(),
            "operating_point.{key} must be a number"
        );
    }
    let sweep = v
        .get("sweep")
        .and_then(json::Value::as_array)
        .expect("sweep array");
    assert_eq!(sweep.len(), expected_points, "one row per channel count");
    let mut last = f64::INFINITY;
    for row in sweep {
        for key in [
            "channels",
            "analytic_delay",
            "pix_mean",
            "lix_mean",
            "lru_mean",
        ] {
            let n = row
                .get(key)
                .and_then(json::Value::as_f64)
                .unwrap_or_else(|| panic!("sweep row needs numeric {key}"));
            assert!(n > 0.0, "sweep row {key} must be positive");
        }
        let a = row
            .get("analytic_delay")
            .and_then(json::Value::as_f64)
            .unwrap();
        assert!(a <= last + 1e-9, "analytic_delay must be non-increasing");
        last = a;
    }
    let parity = v.get("live_parity").expect("live_parity object");
    let gap = parity
        .get("worst_gap")
        .and_then(json::Value::as_f64)
        .expect("live_parity.worst_gap must be a number");
    let tol = parity
        .get("tolerance")
        .and_then(json::Value::as_f64)
        .expect("live_parity.tolerance must be a number");
    assert!(gap < tol, "recorded live parity gap exceeds tolerance");
}
