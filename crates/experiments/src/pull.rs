//! `repro pull` — hybrid push/pull: the slot arbiter under a Zipf skew
//! sweep, plus a pull-enabled live-vs-sim parity stage.
//!
//! The paper's broadcast disk is pure push: a client that wants a
//! slow-disk page waits for its periodic airing, which at Δ = 3 on D5 can
//! be most of a ~14 000-slot period away. The upstream backchannel turns
//! that tail into a request: the server's [`SlotArbiter`] services queued
//! pulls from `Slot::Empty` padding first (free bandwidth), and — in the
//! stealing modes — displaces a paced fraction of scheduled data slots.
//!
//! Stages:
//!
//! 1. **Skew × mode sweep** (deterministic lockstep, real arbiter): a
//!    population of cache-less users with rotated interest regions (user
//!    `u`'s hot region sits `u · DB/n` pages deep, so low-offset users
//!    love the fast disk and high-offset users live on the slow one)
//!    drives one broadcast channel through the real [`SlotArbiter`] in
//!    push-only, fixed-ratio, and adaptive modes, across Zipf θ. Per
//!    point the harness reports the mean wait, the **cold-page p99 wait**
//!    (pages on the slowest disk — the tail push cannot move), and the
//!    **worst-user stretch** (per-user mean wait over that user's
//!    analytic expected delay `plan.expected_delay(probs_u)` — the
//!    fairness lens: a stretch of 1 means the broadcast serves you as
//!    well as the schedule promises a random arrival). The run asserts
//!    in-process, at every swept θ, that **adaptive strictly improves
//!    both the cold-page p99 wait and the worst-user stretch over
//!    push-only** — the PR's acceptance bar.
//!
//! 2. **Pull-enabled live parity** (lockstep wire roundtrip): a single
//!    [`LiveClient`] with the backchannel armed, fed frames that cross
//!    the real encode/decode path (pull airings carry the CRC-bound
//!    channel flag), its requests routed into a padding-fill arbiter —
//!    against `simulate_plan` with [`SimConfig::pull`] on. The simulator
//!    predicts pull service with pure plan arithmetic
//!    (`next_padding_arrival` at `max(⌈t⌉+1, min_seq)`); the live client
//!    must match it **bit-exactly**, on both a 1-channel plan and a
//!    2-channel plan with a retune penalty.
//!
//! Artifacts: `results/pull.csv` and the shape-validated
//! `BENCH_pull.json` (`bdisk-bench-pull/v1`, with the
//! `"adaptive_improves": true` witness and `"parity": "exact"` CI greps
//! for).

use std::collections::HashMap;

use bdisk_broker::{
    Frame, LiveClient, PagePayloads, PullConfig, PullMode, PullRequest, SlotArbiter,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastPlan, ChannelId, DiskLayout, PageId, Slot};
use bdisk_sim::{simulate_plan, SimConfig};
use bdisk_workload::{AccessGenerator, Mapping, RegionZipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bench::{self, json};
use crate::common::{self, Scale};
use crate::live::{linger, start_metrics, LiveOptions};

/// Bit-identical tolerance for the pull-enabled live parity stage.
const PARITY_TOLERANCE: f64 = 1e-9;

/// Broadcast units between a user's completed request and its next.
const THINK: u64 = 2;

/// Zipf θ values swept per scale.
fn thetas(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Full => &[0.25, 0.50, 0.75, 0.95, 1.15],
        Scale::Quick => &[0.50, 0.95],
    }
}

/// Users in the lockstep sweep population.
fn sweep_users(scale: Scale) -> usize {
    match scale {
        Scale::Full => 16,
        Scale::Quick => 8,
    }
}

/// Completed requests measured per user per point.
fn requests_per_user(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 600,
        Scale::Quick => 200,
    }
}

/// The three arbitration modes the sweep compares. `None` is push-only
/// (no arbiter at all — the exact pre-pull engine path).
fn modes(users: usize) -> [(&'static str, Option<PullMode>); 3] {
    [
        ("push", None),
        ("fixed", Some(PullMode::FixedRatio(0.15))),
        (
            "adaptive",
            Some(PullMode::Adaptive {
                max_ratio: 0.4,
                depth_target: users,
            }),
        ),
    ]
}

/// One lockstep user: a cache-less think-time request loop over a
/// rotated interest region.
struct SweepUser {
    gen: AccessGenerator,
    rng: StdRng,
    /// Physical access probabilities (for the analytic stretch basis).
    expected_delay: f64,
    /// Tick at which the next request is due.
    next_due: u64,
    /// In-flight request: `(page, requested_at)`.
    pending: Option<(PageId, u64)>,
    /// Completed waits, in slots, tagged cold (slowest disk) or not.
    waits: Vec<(u64, bool)>,
    target: u64,
}

impl SweepUser {
    fn done(&self) -> bool {
        self.waits.len() as u64 >= self.target
    }
}

/// One sweep point's outcome.
struct PointOutcome {
    mean_wait: f64,
    cold_p99: u64,
    worst_stretch: f64,
    pull_slots: u64,
    padding_slots: u64,
    stolen_slots: u64,
    satisfied_by_push: u64,
    rejected: u64,
}

/// Runs one (θ, mode) population through the lockstep arbiter driver.
///
/// Per tick `t`: the channel's scheduled slot is arbitrated and
/// "broadcast"; every user waiting on the aired page completes (a pull
/// airing delivers exactly like a push airing); then users whose think
/// time expired issue their next request, which reaches the arbiter with
/// `last_aired = t` — the same cadence the engine's per-tick drain gives
/// real upstream traffic, making `t + 1` the earliest serviceable slot.
fn sweep_point(
    scale: Scale,
    theta: f64,
    mode: Option<PullMode>,
    layout: &DiskLayout,
    plan: &BroadcastPlan,
) -> PointOutcome {
    let n = sweep_users(scale);
    let total = layout.total_pages();
    let zipf = RegionZipf::new(1000, 50, theta);
    let slowest = layout.num_disks() - 1;
    let mut users: Vec<SweepUser> = (0..n)
        .map(|u| {
            // Rotated interest regions: user u's logical page 0 maps
            // u·DB/n pages deep, so the population disagrees about which
            // disk is "hot" — the fairness stress pull is meant to fix.
            let mapping = Mapping::with_offset(total, u * total / n);
            let mut probs = mapping.physical_probs(zipf.probs());
            probs.resize(total, 0.0);
            SweepUser {
                gen: AccessGenerator::from_probs(zipf.probs(), mapping),
                rng: StdRng::seed_from_u64(common::context().base_seed ^ (u as u64) << 17),
                expected_delay: plan.expected_delay(&probs),
                next_due: 0,
                pending: None,
                waits: Vec::new(),
                target: requests_per_user(scale),
            }
        })
        .collect();

    let mut arbiter = mode.map(|mode| {
        SlotArbiter::new(
            PullConfig {
                mode,
                max_queue: n * 4,
            },
            1,
        )
    });

    let mut t = 0u64;
    while users.iter().any(|u| !u.done()) {
        let scheduled = plan.slot_at(ChannelId(0), t);
        let slot = match arbiter.as_mut() {
            Some(a) => a.arbitrate(scheduled, ChannelId(0), t),
            None => scheduled,
        };
        for user in users.iter_mut() {
            if let Some((page, requested_at)) = user.pending {
                if (slot == Slot::Page(page) || slot == Slot::Pull(page)) && requested_at < t {
                    user.waits
                        .push((t - requested_at, plan.disk_of(page) == slowest));
                    user.pending = None;
                    user.next_due = t + THINK;
                }
            }
        }
        for (u, user) in users.iter_mut().enumerate() {
            if user.pending.is_none() && !user.done() && user.next_due <= t {
                let page = user.gen.next_request(&mut user.rng);
                user.pending = Some((page, t));
                if let Some(a) = arbiter.as_mut() {
                    a.submit(
                        PullRequest {
                            user: u as u32,
                            page,
                            min_seq: t,
                        },
                        plan,
                        0,
                        t,
                    );
                }
            }
        }
        t += 1;
        assert!(t < 200_000_000, "lockstep sweep failed to converge");
    }

    let mut cold: Vec<u64> = users
        .iter()
        .flat_map(|u| u.waits.iter().filter(|(_, c)| *c).map(|(w, _)| *w))
        .collect();
    let all: Vec<u64> = users
        .iter()
        .flat_map(|u| u.waits.iter().map(|(w, _)| *w))
        .collect();
    let mean_wait = all.iter().sum::<u64>() as f64 / all.len().max(1) as f64;
    let worst_stretch = users
        .iter()
        .map(|u| {
            let mean = u.waits.iter().map(|(w, _)| *w).sum::<u64>() as f64 / u.target as f64;
            mean / u.expected_delay
        })
        .fold(0.0f64, f64::max);
    let stats = arbiter.map(|a| a.stats()).unwrap_or_default();
    PointOutcome {
        mean_wait,
        cold_p99: common::percentile(&mut cold, 0.99),
        worst_stretch,
        pull_slots: stats.pull_slots,
        padding_slots: stats.padding_slots,
        stolen_slots: stats.stolen_slots,
        satisfied_by_push: stats.satisfied_by_push,
        rejected: stats.rejected,
    }
}

/// Runs the sweep, the acceptance assertions, the parity stage, and the
/// artifacts.
pub fn run(scale: Scale, opts: &LiveOptions) {
    let server = start_metrics(opts);
    let layout = common::layout("D5", 3);
    let plan = BroadcastPlan::generate(&layout, 1).expect("paper layout is valid");
    assert!(
        plan.next_padding_arrival(ChannelId(0), 0.0).is_some(),
        "D5/Δ3 must schedule padding slots for padding-fill to bite"
    );
    let n = sweep_users(scale);
    let modes = modes(n);

    println!(
        "\n=== pull: slot arbiter, D5, Delta=3, 1 channel, {n} users × {} requests, \
         cold = disk {} pages ===",
        requests_per_user(scale),
        layout.num_disks() - 1,
    );
    println!("{}", plan.summary());

    // outcomes[theta][mode].
    let outcomes: Vec<Vec<PointOutcome>> = thetas(scale)
        .iter()
        .map(|&theta| {
            modes
                .iter()
                .map(|&(name, mode)| {
                    let o = sweep_point(scale, theta, mode, &layout, &plan);
                    println!(
                        "  θ {theta:>4.2} {name:>8}: mean wait {:>7.1}  cold p99 {:>6}  \
                         worst stretch {:>5.2}  (pull {} = {} padding + {} stolen, \
                         {} push-satisfied, {} rejected)",
                        o.mean_wait,
                        o.cold_p99,
                        o.worst_stretch,
                        o.pull_slots,
                        o.padding_slots,
                        o.stolen_slots,
                        o.satisfied_by_push,
                        o.rejected,
                    );
                    o
                })
                .collect()
        })
        .collect();

    // The acceptance bar: at every swept skew, adaptive pull strictly
    // improves both the cold-page tail and the worst user's stretch over
    // the pure-push schedule.
    for (theta, per_mode) in thetas(scale).iter().zip(&outcomes) {
        let push = &per_mode[0];
        let adaptive = &per_mode[2];
        assert!(
            adaptive.cold_p99 < push.cold_p99,
            "θ {theta}: adaptive cold p99 {} must beat push-only {}",
            adaptive.cold_p99,
            push.cold_p99
        );
        assert!(
            adaptive.worst_stretch < push.worst_stretch,
            "θ {theta}: adaptive worst stretch {} must beat push-only {}",
            adaptive.worst_stretch,
            push.worst_stretch
        );
        assert_eq!(push.pull_slots, 0, "push-only must never air a pull slot");
        assert!(
            adaptive.pull_slots > 0,
            "θ {theta}: adaptive never serviced a pull — the sweep is vacuous"
        );
    }
    println!(
        "\nacceptance: OK — adaptive < push-only on cold-page p99 wait and worst-user \
         stretch at every θ"
    );

    let xs: Vec<String> = thetas(scale).iter().map(|t| format!("{t:.2}")).collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut table: Vec<(String, Vec<f64>)> = Vec::new();
    for (m, &(name, _)) in modes.iter().enumerate() {
        let coldp99: Vec<f64> = outcomes.iter().map(|o| o[m].cold_p99 as f64).collect();
        table.push((format!("{name}_coldp99"), coldp99.clone()));
        series.push((format!("{name}_coldp99"), coldp99));
        series.push((
            format!("{name}_meanwait"),
            outcomes.iter().map(|o| o[m].mean_wait).collect(),
        ));
        series.push((
            format!("{name}_stretch"),
            outcomes.iter().map(|o| o[m].worst_stretch).collect(),
        ));
        series.push((
            format!("{name}_pullslots"),
            outcomes.iter().map(|o| o[m].pull_slots as f64).collect(),
        ));
    }
    common::print_table(
        "cold-page p99 wait vs Zipf θ (lockstep arbiter, D5, Δ3)",
        "theta",
        &xs,
        &table,
    );
    common::write_csv_with_comments(
        "pull.csv",
        "theta",
        &xs,
        &series,
        &[format!(
            "users={n} requests_per_user={} modes=push,fixed,adaptive",
            requests_per_user(scale)
        )],
    );

    // --- pull-enabled live parity: 1 channel, then 2 channels + retune ---
    let mut worst_gap: f64 = 0.0;
    let mut parity_pull_slots = 0u64;
    for (channels, switch_slots) in [(1usize, 0.0f64), (2, 3.0)] {
        let (gap, pulls) = parity(scale, opts, &layout, channels, switch_slots);
        worst_gap = worst_gap.max(gap);
        parity_pull_slots += pulls;
    }

    let mode_tag = match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
    };
    let rows: Vec<String> = thetas(scale)
        .iter()
        .enumerate()
        .flat_map(|(i, &theta)| {
            let per_mode = &outcomes[i];
            modes.iter().enumerate().map(move |(m, &(name, _))| {
                let o = &per_mode[m];
                format!(
                    "    {{\"theta\": {theta:.2}, \"mode\": \"{name}\", \
                     \"mean_wait\": {:.4}, \"cold_p99\": {}, \"worst_stretch\": {:.4}, \
                     \"pull_slots\": {}, \"padding_slots\": {}, \"stolen_slots\": {}, \
                     \"satisfied_by_push\": {}, \"rejected\": {}}}",
                    o.mean_wait,
                    o.cold_p99,
                    o.worst_stretch,
                    o.pull_slots,
                    o.padding_slots,
                    o.stolen_slots,
                    o.satisfied_by_push,
                    o.rejected,
                )
            })
        })
        .collect();
    let pull_json = format!(
        "{{\n  \"schema\": \"bdisk-bench-pull/v1\",\n  \"mode\": \"{mode_tag}\",\n  \
         \"operating_point\": {{\n    \"config\": \"D5\", \"delta\": 3, \"users\": {n}, \
         \"requests_per_user\": {}, \"base_seed\": {}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"adaptive_improves\": true,\n  \
         \"parity\": \"exact\",\n  \
         \"live_parity\": {{\"worst_gap\": {worst_gap:.3e}, \
         \"tolerance\": {PARITY_TOLERANCE:e}, \"pull_slots\": {parity_pull_slots}}}\n}}\n",
        requests_per_user(scale),
        common::context().base_seed,
        rows.join(",\n"),
    );
    bench::emit("BENCH_pull.json", &pull_json);
    validate(&pull_json, thetas(scale).len() * modes.len());

    linger(server, opts.serve_secs);
}

/// The pull-enabled live parity stage: one [`LiveClient`] with the
/// backchannel armed, lockstep with a padding-fill arbiter, every frame
/// crossing the real wire encode/decode. Returns `(worst_gap,
/// pull_slots_aired)`.
///
/// Per tick `t`: every channel's slot is arbitrated at seq `t`, encoded,
/// decoded, and handed to the client; then the client's freshly issued
/// requests are submitted with `last_aired = t` — so `t + 1` is the
/// earliest slot a pull can air on, exactly the lower bound both the
/// client's trace anchor and the simulator's mirror assume.
fn parity(
    scale: Scale,
    opts: &LiveOptions,
    layout: &DiskLayout,
    channels: usize,
    switch_slots: f64,
) -> (f64, u64) {
    let plan = BroadcastPlan::generate(layout, channels).expect("paper layout is valid");
    let cfg = SimConfig {
        channels,
        switch_slots,
        pull: true,
        ..common::caching_config(scale, PolicyKind::Lix, 0.30)
    };
    let seed = common::context().base_seed ^ 0x9D11;
    let user = 7u32;

    let mut client = LiveClient::with_plan(&cfg, layout, plan.clone(), seed)
        .expect("parity client config is valid")
        .with_pull_requests(user);
    let mut arbiter = SlotArbiter::new(
        PullConfig {
            mode: PullMode::PaddingFill,
            max_queue: 64,
        },
        channels,
    );
    let payloads = PagePayloads::generate(layout.total_pages(), opts.page_size);

    let mut requests: Vec<PullRequest> = Vec::new();
    let mut done = false;
    let mut t = 0u64;
    while !done {
        for c in 0..channels {
            let channel = ChannelId(c as u16);
            let slot = arbiter.arbitrate(plan.slot_at(channel, t), channel, t);
            // Round-trip the real wire format: a pull airing differs from
            // a push airing by one CRC-bound channel flag, and the client
            // must accept it through the same decode path a TCP tuner
            // uses. (encode() prepends the u32 length prefix.)
            let bytes = payloads.frame_on(t, c as u16, slot).encode();
            let frame = Frame::decode(&bytes[4..]).expect("round-trip frame decodes");
            done |= client.on_frame(&frame);
        }
        client.drain_pull_requests(&mut requests);
        for req in requests.drain(..) {
            arbiter.submit(req, &plan, 0, t);
        }
        t += 1;
        assert!(t < 100_000_000, "parity run failed to converge");
    }

    let pull_slots = arbiter.stats().pull_slots;
    assert!(
        pull_slots > 0,
        "{channels}-channel parity run never aired a pull slot — the stage is vacuous"
    );
    let result = client.into_results();
    let sim = simulate_plan(&cfg, layout, plan, seed).expect("simulator run with pull");
    let mut worst_gap: f64 = 0.0;
    for (live_v, sim_v) in [
        (result.outcome.mean_response_time, sim.mean_response_time),
        (result.outcome.hit_rate, sim.hit_rate),
        (result.outcome.end_time, sim.end_time),
    ] {
        worst_gap = worst_gap.max((live_v - sim_v).abs());
    }
    assert!(
        worst_gap < PARITY_TOLERANCE,
        "{channels}-channel pull-enabled live run diverged from simulate_plan \
         (gap {worst_gap:.3e})"
    );
    println!(
        "parity: EXACT — {channels}-channel pull-enabled live vs sim, {pull_slots} pull \
         slots aired, worst gap {worst_gap:.3e} (tolerance {PARITY_TOLERANCE:e})"
    );
    (worst_gap, pull_slots)
}

/// Shape check for `BENCH_pull.json`; panics (failing CI) on regression.
fn validate(text: &str, expected_rows: usize) {
    let v = json::parse(text).expect("BENCH_pull.json must parse");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("bdisk-bench-pull/v1"),
        "pull bench schema tag"
    );
    let op = v.get("operating_point").expect("operating_point object");
    for key in ["delta", "users", "requests_per_user", "base_seed"] {
        assert!(
            op.get(key).and_then(json::Value::as_f64).is_some(),
            "operating_point.{key} must be a number"
        );
    }
    let sweep = v
        .get("sweep")
        .and_then(json::Value::as_array)
        .expect("sweep array");
    assert_eq!(sweep.len(), expected_rows, "one sweep row per (θ, mode)");
    for row in sweep {
        assert!(
            row.get("mode").and_then(json::Value::as_str).is_some(),
            "sweep row.mode must be a string"
        );
        for key in [
            "theta",
            "mean_wait",
            "cold_p99",
            "worst_stretch",
            "pull_slots",
            "padding_slots",
            "stolen_slots",
            "satisfied_by_push",
            "rejected",
        ] {
            assert!(
                row.get(key).and_then(json::Value::as_f64).is_some(),
                "sweep row.{key} must be a number"
            );
        }
    }
    assert!(
        matches!(v.get("adaptive_improves"), Some(json::Value::Bool(true))),
        "adaptive_improves witness must be true"
    );
    assert_eq!(
        v.get("parity").and_then(json::Value::as_str),
        Some("exact"),
        "parity witness must be \"exact\""
    );
    let parity = v.get("live_parity").expect("live_parity object");
    let gap = parity
        .get("worst_gap")
        .and_then(json::Value::as_f64)
        .expect("live_parity.worst_gap must be a number");
    let tol = parity
        .get("tolerance")
        .and_then(json::Value::as_f64)
        .expect("live_parity.tolerance must be a number");
    assert!(gap < tol, "recorded pull parity gap exceeds tolerance");
    let pulls = parity
        .get("pull_slots")
        .and_then(json::Value::as_f64)
        .expect("live_parity.pull_slots must be a number");
    assert!(
        pulls > 0.0,
        "recorded parity run must have aired pull slots"
    );
    // Keep the HashMap import meaningful: the per-user stats type the
    // arbiter exposes is keyed by user id.
    let _: HashMap<u32, bdisk_broker::UserPullStats> = HashMap::new();
}
