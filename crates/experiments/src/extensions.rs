//! Extension experiments beyond the paper's evaluation:
//!
//! * `prefetch` — PT prefetching (paper §7 future work) vs demand PIX/LIX.
//! * `policies` — the full replacement-policy shoot-out, including the
//!   LRU-K and 2Q bases the paper suggests in Section 5.5.
//! * `design` — the automated broadcast-program designer (paper §7 asks
//!   for "concrete design principles").

use bdisk_cache::PolicyKind;
use bdisk_sched::{optimize_layout, BroadcastProgram, DiskLayout, OptimizerConfig};
use bdisk_sim::{simulate_prefetch, SimConfig};
use bdisk_workload::RegionZipf;

use crate::common::{
    base_config, caching_config, layout, print_table, run_point, threads, write_csv, Scale, NOISES,
};

/// PT prefetching vs demand caching over noise (D5, Δ = 3).
///
/// Prefetching walks every broadcast slot, so it runs at a reduced request
/// count regardless of scale.
pub fn prefetch(scale: Scale) {
    let l = layout("D5", 3);
    let requests = match scale {
        Scale::Full => 4_000,
        Scale::Quick => 1_500,
    };

    let mut demand_pix = Vec::new();
    let mut demand_lix = Vec::new();
    let mut pt = Vec::new();
    for &noise in &NOISES {
        let cfg_pix = caching_config(scale, PolicyKind::Pix, noise);
        let cfg_lix = caching_config(scale, PolicyKind::Lix, noise);
        demand_pix.push(run_point(&cfg_pix, &l, scale).mean_response_time);
        demand_lix.push(run_point(&cfg_lix, &l, scale).mean_response_time);
        let cfg_pt = SimConfig {
            requests,
            ..cfg_pix.clone()
        };
        pt.push(
            simulate_prefetch(&cfg_pt, &l, 404)
                .expect("prefetch run")
                .mean_response_time,
        );
    }

    let xs: Vec<String> = NOISES
        .iter()
        .map(|n| format!("{}%", (n * 100.0) as u32))
        .collect();
    let series = vec![
        ("LIX".to_string(), demand_lix),
        ("PIX".to_string(), demand_pix),
        ("PT-pref".to_string(), pt),
    ];
    print_table(
        "Extension: PT prefetching vs demand caching (D5, CacheSize=500, Delta=3)",
        "Noise",
        &xs,
        &series,
    );
    write_csv("ext_prefetch.csv", "noise", &xs, &series);
}

/// Every policy (paper five + extensions) at the Figure 13 operating
/// point.
pub fn policies(scale: Scale) {
    let kinds: Vec<PolicyKind> = PolicyKind::ALL
        .into_iter()
        .chain(PolicyKind::EXTENSIONS)
        .collect();
    let l = layout("D5", 3);
    let results = bdisk_sim::sweep(kinds.clone(), threads(), |&kind| {
        let cfg = caching_config(scale, kind, 0.30);
        let out = run_point(&cfg, &l, scale);
        let p99 =
            out.per_seed.iter().map(|o| o.p99).sum::<f64>() / out.per_seed.len().max(1) as f64;
        (out.mean_response_time, out.hit_rate, p99)
    });

    println!("\n=== Extension: policy shoot-out (D5, CacheSize=500, Noise=30%, Delta=3) ===");
    println!(
        "{:>10}{:>14}{:>12}{:>12}{:>12}",
        "policy", "response", "hit rate", "p99", "idealized"
    );
    for (kind, (rt, hit, p99)) in kinds.iter().zip(&results) {
        println!(
            "{:>10}{:>14.1}{:>11.1}%{:>12.0}{:>12}",
            kind.name(),
            rt,
            hit * 100.0,
            p99,
            if kind.is_idealized() { "yes" } else { "no" }
        );
    }
    let xs: Vec<String> = kinds.iter().map(|k| k.name().to_string()).collect();
    let series = vec![
        (
            "response".to_string(),
            results.iter().map(|r| r.0).collect(),
        ),
        (
            "hit_rate".to_string(),
            results.iter().map(|r| r.1).collect(),
        ),
        ("p99".to_string(), results.iter().map(|r| r.2).collect()),
    ];
    write_csv("ext_policies.csv", "policy", &xs, &series);
}

/// The automated program designer against the paper's hand configurations.
pub fn design(scale: Scale) {
    let zipf = RegionZipf::paper_default();
    let mut probs = zipf.probs().to_vec();
    probs.resize(5000, 0.0);

    println!("\n=== Extension: automated broadcast-program design ===");
    println!("workload: paper default (AccessRange 1000, theta 0.95) in 5000 pages\n");

    println!(
        "{:>24}{:>8}{:>14}{:>14}",
        "layout", "Delta", "analytic", "simulated"
    );
    let cfg = base_config(scale);
    for (name, delta) in [("D4", 4u64), ("D5", 3)] {
        let l = layout(name, delta);
        let program = BroadcastProgram::generate(&l).expect("valid");
        let analytic = bdisk_analytic::expected_response_time(&program, &probs);
        let sim = run_point(&cfg, &l, scale).mean_response_time;
        println!(
            "{:>24}{:>8}{:>14.0}{:>14.1}",
            format!("{name}{:?}", l.sizes()),
            delta,
            analytic,
            sim
        );
    }

    let best = optimize_layout(
        &probs,
        &OptimizerConfig {
            max_disks: 3,
            max_delta: 7,
            max_candidates: 40,
            max_channels: 1,
        },
    )
    .expect("optimizer runs");
    let sim = run_point(&cfg, &best.layout, scale).mean_response_time;
    println!(
        "{:>24}{:>8}{:>14.0}{:>14.1}   <- optimizer",
        format!("opt{:?}", best.layout.sizes()),
        best.delta,
        best.expected_delay,
        sim
    );

    let flat = DiskLayout::with_delta(&[5000], 0).expect("flat");
    let sim_flat = run_point(&cfg, &flat, scale).mean_response_time;
    println!(
        "{:>24}{:>8}{:>14.0}{:>14.1}",
        "flat[5000]", 0, 2500.0, sim_flat
    );
}

/// Volatile data: response time and staleness vs update rate (paper §7
/// "what if the broadcast data changed from cycle to cycle?").
pub fn updates(scale: Scale) {
    use bdisk_sim::{simulate_volatile, StalenessStrategy, VolatileConfig};

    let l = layout("D5", 3);
    let mut cfg = caching_config(scale, PolicyKind::Pix, 0.0);
    if matches!(scale, Scale::Quick) {
        cfg.requests = cfg.requests.min(3_000);
    }

    let rates = [0.0f64, 10.0, 50.0, 200.0, 1000.0];
    println!("\n=== Extension: volatile data (D5, Delta=3, CacheSize=500, PIX) ===");
    println!(
        "{:>14}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "updates/cycle", "inval resp", "drops", "stale resp", "stale reads", "overflow"
    );
    let mut xs = Vec::new();
    let mut inval_rt = Vec::new();
    let mut stale_rt = Vec::new();
    let mut stale_frac = Vec::new();
    for &rate in &rates {
        let inval = simulate_volatile(
            &cfg,
            &VolatileConfig {
                updates_per_cycle: rate,
                update_skew: 1.0,
                strategy: StalenessStrategy::Invalidate,
            },
            &l,
            606,
        )
        .expect("volatile run");
        let stale = simulate_volatile(
            &cfg,
            &VolatileConfig {
                updates_per_cycle: rate,
                update_skew: 1.0,
                strategy: StalenessStrategy::ServeStale,
            },
            &l,
            606,
        )
        .expect("volatile run");
        println!(
            "{:>14}{:>14.1}{:>14}{:>14.1}{:>13.1}%{:>12}",
            rate,
            inval.base.mean_response_time,
            inval.cache_drops,
            stale.base.mean_response_time,
            stale.stale_read_rate * 100.0,
            inval.overflow_cycles
        );
        xs.push(format!("{rate}"));
        inval_rt.push(inval.base.mean_response_time);
        stale_rt.push(stale.base.mean_response_time);
        stale_frac.push(stale.stale_read_rate);
    }
    let series = vec![
        ("invalidate_resp".to_string(), inval_rt),
        ("stale_resp".to_string(), stale_rt),
        ("stale_read_rate".to_string(), stale_frac),
    ];
    write_csv("ext_updates.csv", "updates_per_cycle", &xs, &series);
    println!("\nfreshness costs latency: invalidation turns update churn into refetch");
    println!("misses; serving stale keeps latency flat but stale reads grow with churn.");
    println!("note the cliff even at low rates: Offset=CacheSize parks the hot pages on");
    println!("the *slowest* disk precisely because they are cached — an invalidated hot");
    println!("page costs half the slow disk's gap to refetch. Volatile hot data wants a");
    println!("smaller Offset (or none), coupling the broadcast design to the update rate.");
}

/// (1, m) air indexing: the access-time / tuning-time tradeoff over m
/// (Section 2.2 "extra slots … can be used to broadcast indexes"; related
/// work \[Imie94b\]).
pub fn index(_scale: Scale) {
    use bdisk_sched::IndexedBroadcast;

    let l = layout("D5", 3);
    let program = BroadcastProgram::generate(&l).expect("valid program");
    let zipf = RegionZipf::paper_default();
    let mut probs = zipf.probs().to_vec();
    probs.resize(5000, 0.0);

    // A 4 KB page holds ~512 eight-byte (page, offset) entries.
    const ENTRIES_PER_SLOT: usize = 512;

    println!("\n=== Extension: (1,m) air indexing (D5, Delta=3, 512 entries/slot) ===");
    println!(
        "{:>6}{:>12}{:>14}{:>14}{:>14}",
        "m", "overhead", "access (bu)", "tuning (bu)", "doze fraction"
    );
    // Baseline: no index — the client listens from request to arrival.
    let no_index_access = bdisk_analytic::expected_response_time(&program, &probs) + 1.0;
    println!(
        "{:>6}{:>11.2}%{:>14.1}{:>14.1}{:>14}",
        "none", 0.0, no_index_access, no_index_access, "0%"
    );

    let mut xs = vec!["0".to_string()];
    let mut access_series = vec![no_index_access];
    let mut tuning_series = vec![no_index_access];
    for m in [1usize, 2, 4, 8, 16, 32] {
        let ib = IndexedBroadcast::new(program.clone(), m, ENTRIES_PER_SLOT).expect("valid index");
        let (access, tuning) = ib.expected_access_and_tuning(&probs);
        println!(
            "{:>6}{:>11.2}%{:>14.1}{:>14.1}{:>13.1}%",
            m,
            ib.overhead() * 100.0,
            access,
            tuning,
            (1.0 - tuning / access) * 100.0
        );
        xs.push(m.to_string());
        access_series.push(access);
        tuning_series.push(tuning);
    }
    let series = vec![
        ("access".to_string(), access_series),
        ("tuning".to_string(), tuning_series),
    ];
    write_csv("ext_index.csv", "m", &xs, &series);
    println!("\na battery-powered client dozes through ~99% of its wait for a small");
    println!("access-time premium; larger m cuts the probe wait but dilutes data bandwidth.");
}
