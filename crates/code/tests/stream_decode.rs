//! Stream-level decode-rate harness: feeds a seeded i.i.d. erasure stream
//! of a real coded D5 program through `DecodeWindow` and measures what
//! fraction of lost data slots the symbols eventually reconstruct.
//!
//! This pins the *decoder's* repair power independent of any client logic:
//! at a code rate of 2.5x the loss rate with overlapping windows, peeling
//! must drain the overwhelming majority of losses.

use std::sync::Arc;

use bdisk_code::{ChannelCode, DecodeWindow};
use bdisk_sched::{BroadcastPlan, ChannelId, CodingConfig, DiskLayout, Slot};

fn payload_of(page: u32) -> Arc<[u8]> {
    (0..8u32)
        .map(|i| (page.wrapping_mul(31).wrapping_add(i)) as u8)
        .collect::<Vec<_>>()
        .into()
}

/// SplitMix64 — deterministic erasure pattern without external deps.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn overlapping_lt_windows_drain_most_losses() {
    for group in [25, 35, 45] {
        run_stream(group);
    }
}

fn run_stream(group: usize) {
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    let plan = BroadcastPlan::generate(&layout, 1)
        .unwrap()
        .with_coding(CodingConfig::lt(0.25, group, 7))
        .unwrap();
    let prog = plan.program(ChannelId(0));
    let period = prog.period() as u64;
    let code = ChannelCode::build(prog, 0, plan.coding().unwrap());

    let mut window = DecodeWindow::new(period as usize);
    let mut rng = 0xBEEFu64;
    let mut data_lost = 0u64;
    let mut repaired = 0u64;
    let mut symbols_seen = 0u64;
    let mut symbols_lost = 0u64;
    let mut lost_seqs: std::collections::HashSet<u64> = Default::default();
    let mut covered_losses: std::collections::HashMap<u64, u32> = Default::default();
    let mut repaired_seqs: std::collections::HashSet<u64> = Default::default();

    // Precompute each repair symbol's payload once per period offset.
    let loss = 0.10;
    for seq in 0..period * 12 {
        let erased = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 % 1.0 < loss;
        match prog.slots()[(seq % period) as usize] {
            Slot::Page(p) => {
                // Skip the first period: symbols there reach back before
                // the stream started and expire by design.
                if erased {
                    window.push_lost(seq, p);
                    if seq >= period {
                        data_lost += 1;
                        lost_seqs.insert(seq);
                    }
                } else {
                    window.push_heard(seq, p, payload_of(p.0));
                }
            }
            Slot::Repair(id) => {
                if erased {
                    symbols_lost += 1;
                    continue;
                }
                let Some(covers) = code.covered_seqs(id, seq) else {
                    continue; // first-period symbols reach before the stream
                };
                symbols_seen += 1;
                let mut sym = vec![0u8; 8];
                for &(s, p) in &covers {
                    bdisk_code::xor_into(&mut sym, &payload_of(p.0));
                    if lost_seqs.contains(&s) {
                        *covered_losses.entry(s).or_insert(0) += 1;
                    }
                }
                for d in window.on_repair(covers, &sym) {
                    assert_eq!(
                        &d.payload[..],
                        &payload_of(d.page.0)[..],
                        "decode must be exact"
                    );
                    if d.seq >= period {
                        repaired += 1;
                        repaired_seqs.insert(d.seq);
                    }
                }
            }
            Slot::Empty | Slot::EpochFence | Slot::Pull(_) => {}
        }
    }

    let frac = repaired as f64 / data_lost as f64;
    let zero_cov = lost_seqs
        .iter()
        .filter(|s| !covered_losses.contains_key(s))
        .count();
    let unrepaired_covered: Vec<u32> = lost_seqs
        .iter()
        .filter(|s| !repaired_seqs.contains(s))
        .filter_map(|s| covered_losses.get(s).copied())
        .collect();
    let mut cov_hist = std::collections::BTreeMap::new();
    for c in &unrepaired_covered {
        *cov_hist.entry(c).or_insert(0u32) += 1;
    }
    let covered = data_lost - zero_cov as u64;
    let covered_frac = repaired as f64 / covered as f64;
    eprintln!(
        "group={group} losses={data_lost} repaired={repaired} ({:.1}% global, {:.1}% of covered) symbols seen={symbols_seen} lost={symbols_lost} evictions={} zero_coverage={zero_cov} unrepaired_coverage_hist={cov_hist:?}",
        100.0 * frac,
        100.0 * covered_frac,
        window.evictions()
    );
    // The uncovered slots are exactly the frequency-1 disk: coverage
    // windows skip once-per-period pages by design (repair slots can only
    // displace padding or duplicate airings, so nothing could air close
    // enough behind them anyway, and including them would poison every
    // symbol whose window straddles the cold disk's chunk). Within
    // coverage the peeling decoder must drain nearly everything at 2.5x
    // overhead.
    assert!(
        covered_frac > 0.9,
        "peeling decoder should repair >90% of covered losses at 2.5x overhead, got {:.1}%",
        100.0 * covered_frac
    );
}
