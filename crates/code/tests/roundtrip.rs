//! Round-trip properties of the coded repair path, server composition to
//! client decode, over arbitrary cycles, erasure patterns, and rates:
//!
//! 1. the decoder never "recovers" a wrong payload (byte-for-byte and
//!    CRC cross-checks against the true page payload), and only ever
//!    repairs slots that were genuinely lost;
//! 2. with XOR parity and a single erasure, the decoder recovers the page
//!    if and only if some received repair symbol covers the lost airing —
//!    exactly what the code admits, no more, no less;
//! 3. a pinned example: one lost page with XOR parity is repaired at the
//!    group's closing repair slot, so the recovery wait never exceeds the
//!    group span.

use std::sync::Arc;

use bdisk_code::{ChannelCode, DecodeWindow};
use bdisk_sched::{
    BroadcastPlan, BroadcastProgram, ChannelId, CodecKind, CodingConfig, DiskLayout, PageId,
    RepairId, Slot,
};
use proptest::prelude::*;

const PAGE_SIZE: usize = 32;

/// Deterministic per-page payload (same convention as the live engine:
/// byte `i` of page `p` is `(p·131 + i) mod 256`).
fn payload_of(page: PageId) -> Arc<[u8]> {
    (0..PAGE_SIZE)
        .map(|i| (page.0 as usize * 131 + i) as u8)
        .collect::<Vec<_>>()
        .into()
}

fn xor(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// CRC-32/ISO-HDLC, bit-serial — the same polynomial the wire format
/// uses, so a decode that would fail the frame CRC fails here too.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// splitmix64 for the erasure pattern (seeded by proptest, so patterns
/// shrink with the failing case).
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A symbol's covered `(seq, page)` set in global page ids.
type Covers = Vec<(u64, PageId)>;

/// Server-side composition of the symbol aired at `seq`, in global page
/// ids: the covered `(seq, page)` set and the XOR of their payloads.
fn compose(
    plan: &BroadcastPlan,
    code: &ChannelCode,
    ch: ChannelId,
    id: RepairId,
    seq: u64,
) -> Option<(Covers, Vec<u8>)> {
    let covers: Covers = code
        .covered_seqs(id, seq)?
        .into_iter()
        .map(|(s, local)| (s, plan.global_page(ch, local)))
        .collect();
    let mut sym = vec![0u8; PAGE_SIZE];
    for &(_, g) in &covers {
        xor(&mut sym, &payload_of(g));
    }
    Some((covers, sym))
}

proptest! {
    /// Property 1: over arbitrary cycles, rates, codecs, and erasure
    /// patterns, every decode is byte- and CRC-correct and repairs a slot
    /// that was genuinely lost; no slot is repaired twice.
    #[test]
    fn decoder_never_recovers_a_wrong_payload(
        sizes in prop::collection::vec(1usize..=10, 1..=3),
        delta in 0u64..=3,
        rate in 0.02f64..0.4,
        group in 2usize..=10,
        use_lt in any::<bool>(),
        seed in any::<u64>(),
        pattern in any::<u64>(),
    ) {
        let layout = DiskLayout::with_delta(&sizes, delta).unwrap();
        let codec = if use_lt { CodecKind::Lt } else { CodecKind::Xor };
        let cfg = CodingConfig { rate, group, codec, seed };
        let plan = BroadcastPlan::generate(&layout, 1).unwrap()
            .with_coding(cfg).unwrap();
        let ch = ChannelId(0);
        let prog = plan.program(ch);
        prop_assume!(prog.repair_slots() > 0);
        let code = ChannelCode::build(prog, 0, &cfg);
        let period = prog.period();

        let mut rng = SplitMix(pattern);
        let mut window = DecodeWindow::new(2 * period);
        let mut lost: Vec<(u64, PageId)> = Vec::new();
        let mut repaired: Vec<u64> = Vec::new();
        for seq in 0..(4 * period) as u64 {
            let erased = rng.next_f64() < 0.2;
            match plan.slot_at(ch, seq) {
                Slot::Page(p) => {
                    if erased {
                        window.push_lost(seq, p);
                        lost.push((seq, p));
                    } else {
                        window.push_heard(seq, p, payload_of(p));
                    }
                }
                Slot::Empty | Slot::EpochFence | Slot::Pull(_) => {}
                Slot::Repair(id) => {
                    if erased { continue; }
                    let Some((covers, sym)) = compose(&plan, &code, ch, id, seq) else {
                        continue;
                    };
                    for d in window.on_repair(covers, &sym) {
                        let truth = payload_of(d.page);
                        prop_assert_eq!(&d.payload[..], &truth[..],
                            "wrong payload for {} at seq {}", d.page, d.seq);
                        prop_assert_eq!(crc32(&d.payload), crc32(&truth));
                        prop_assert!(lost.contains(&(d.seq, d.page)),
                            "repaired a slot that was never lost");
                        prop_assert!(!repaired.contains(&d.seq),
                            "seq {} repaired twice", d.seq);
                        repaired.push(d.seq);
                    }
                }
            }
        }
    }

    /// Property 2: XOR parity with a single erasure recovers the page
    /// exactly when the code admits it — some later repair symbol covers
    /// the lost airing — and then within one period.
    #[test]
    fn xor_recovers_exactly_what_the_code_admits(
        sizes in prop::collection::vec(1usize..=10, 1..=3),
        delta in 0u64..=3,
        rate in 0.05f64..0.4,
        group in 2usize..=10,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let layout = DiskLayout::with_delta(&sizes, delta).unwrap();
        let cfg = CodingConfig { rate, group, codec: CodecKind::Xor, seed };
        let plan = BroadcastPlan::generate(&layout, 1).unwrap()
            .with_coding(cfg).unwrap();
        let ch = ChannelId(0);
        let prog = plan.program(ch);
        prop_assume!(prog.repair_slots() > 0);
        let code = ChannelCode::build(prog, 0, &cfg);
        let period = prog.period() as u64;

        // Erase one data airing in the second period.
        let data: Vec<u64> = (period..2 * period)
            .filter(|&s| matches!(plan.slot_at(ch, s), Slot::Page(_)))
            .collect();
        let loss_seq = data[(pick % data.len() as u64) as usize];

        // What the code admits: a repair symbol after the loss whose
        // composition includes the lost airing (a later airing of the same
        // page shadows it out of subsequent windows, and then no symbol —
        // rightly — repairs the older loss).
        let mut admitted_at: Option<u64> = None;
        for seq in loss_seq + 1..4 * period {
            if let Slot::Repair(id) = plan.slot_at(ch, seq) {
                if let Some(covers) = code.covered_seqs(id, seq) {
                    if covers.iter().any(|&(s, _)| s == loss_seq) {
                        admitted_at = Some(seq);
                        break;
                    }
                }
            }
        }

        let mut window = DecodeWindow::new(2 * period as usize);
        let mut repaired_at: Option<u64> = None;
        for seq in 0..4 * period {
            match plan.slot_at(ch, seq) {
                Slot::Page(p) => {
                    if seq == loss_seq {
                        window.push_lost(seq, p);
                    } else {
                        window.push_heard(seq, p, payload_of(p));
                    }
                }
                Slot::Empty | Slot::EpochFence | Slot::Pull(_) => {}
                Slot::Repair(id) => {
                    let Some((covers, sym)) = compose(&plan, &code, ch, id, seq) else {
                        continue;
                    };
                    for d in window.on_repair(covers, &sym) {
                        prop_assert_eq!(d.seq, loss_seq);
                        prop_assert_eq!(&d.payload[..], &payload_of(d.page)[..]);
                        prop_assert!(repaired_at.is_none());
                        repaired_at = Some(seq);
                    }
                }
            }
        }

        prop_assert_eq!(repaired_at, admitted_at,
            "decoder and code disagree on recoverability of seq {}", loss_seq);
        if let (Some(r), Some(_)) = (repaired_at, admitted_at) {
            prop_assert!(r - loss_seq < period, "recovery waited a full period");
        }
    }
}

/// Pinned example: XOR parity over an explicit `A B C D +` layout repairs
/// a single loss at the group's closing repair slot — the recovery wait is
/// bounded by the group span, not the period.
#[test]
fn single_loss_recovery_wait_bounded_by_group_span() {
    let group = 4usize;
    let slots = vec![
        Slot::Page(PageId(0)),
        Slot::Page(PageId(1)),
        Slot::Page(PageId(2)),
        Slot::Page(PageId(3)),
        Slot::Repair(RepairId(0)),
        Slot::Page(PageId(0)),
        Slot::Page(PageId(1)),
        Slot::Page(PageId(2)),
        Slot::Page(PageId(3)),
        Slot::Repair(RepairId(1)),
    ];
    let prog = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
    let cfg = CodingConfig::xor(0.2, group, 99);
    let code = ChannelCode::build(&prog, 0, &cfg);

    let loss_seq = 2u64; // page C's first airing
    let mut window = DecodeWindow::new(prog.period());
    let mut wait = None;
    for seq in 0..prog.period() as u64 {
        match prog.slot_at(seq) {
            Slot::Page(p) => {
                if seq == loss_seq {
                    window.push_lost(seq, p);
                } else {
                    window.push_heard(seq, p, payload_of(p));
                }
            }
            Slot::Empty | Slot::EpochFence | Slot::Pull(_) => {}
            Slot::Repair(id) => {
                let covers = code.covered_seqs(id, seq).unwrap();
                let mut sym = vec![0u8; PAGE_SIZE];
                for &(_, p) in &covers {
                    xor(&mut sym, &payload_of(p));
                }
                for d in window.on_repair(covers, &sym) {
                    assert_eq!(d.seq, loss_seq);
                    assert_eq!(&d.payload[..], &payload_of(PageId(2))[..]);
                    wait = Some(seq - loss_seq);
                }
            }
        }
    }
    // Repaired at the group's parity slot (seq 4): wait 2, within the
    // group span and far below the 10-slot period the periodic-wait
    // fallback would cost.
    assert_eq!(wait, Some(2));
    assert!(wait.unwrap() <= group as u64);
}
