//! The client-side decode window: a bounded ring over the tuned channel's
//! data slots plus a small buffer of not-yet-decodable repair symbols,
//! peeled belief-propagation style.
//!
//! Every data slot the client observes on its tuned channel enters the
//! ring in one of two states: **heard** (the frame arrived; payload kept)
//! or **known-lost** (the client detected a sequence gap and knows from
//! the plan which pages the missing slots carried). Slots older than the
//! ring's capacity are **unknown** — a repair symbol touching them is
//! discarded rather than guessed at.
//!
//! A repair symbol decodes only when *exactly one* of its covered slots is
//! known-lost and every other is heard (or previously decoded): the missing
//! payload is the XOR of the symbol with the rest. This conservative rule
//! is what keeps live-vs-sim parity bit-exact on lossless feeds — with no
//! gaps there are no known-lost entries, so the decoder never fires and
//! the client's observable behavior is byte-identical to the uncoded path.
//! Symbols with two or more losses wait in the pending buffer; each
//! successful decode re-peels them, so overlapping LT symbols resolve
//! multi-loss patterns one page at a time.

use std::collections::VecDeque;
use std::sync::Arc;

use bdisk_sched::PageId;

use crate::xor_into;

/// A page reconstructed from a repair symbol.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// The absolute slot sequence of the lost airing that was repaired.
    pub seq: u64,
    /// The reconstructed page (channel-local id, as the window was fed).
    pub page: PageId,
    /// The reconstructed payload.
    pub payload: Arc<[u8]>,
}

#[derive(Debug)]
struct Entry {
    seq: u64,
    page: PageId,
    /// `Some` = heard (or decoded), `None` = known-lost.
    payload: Option<Arc<[u8]>>,
}

#[derive(Debug)]
struct PendingSymbol {
    covers: Vec<(u64, PageId)>,
    payload: Vec<u8>,
}

enum Attempt {
    /// Exactly one loss, everything else heard: repaired.
    Decoded(Decoded),
    /// Multiple losses still — keep the symbol for later peeling.
    Wait,
    /// No losses among the covers: the symbol has nothing left to do.
    Resolved,
    /// A covered slot is unknown (older than the ring or never observed):
    /// the symbol can never decode safely.
    Expired,
}

/// Bounded decode state for one tuned channel. See the module docs for
/// the heard / known-lost / unknown contract.
#[derive(Debug)]
pub struct DecodeWindow {
    capacity: usize,
    pending_capacity: usize,
    entries: VecDeque<Entry>,
    pending: VecDeque<PendingSymbol>,
    evictions: u64,
}

impl DecodeWindow {
    /// How many undecodable repair symbols are buffered for peeling. Sized
    /// for overlapping-window codes: at a repair spacing of ~4 slots this
    /// spans several hundred data slots, so the peeling wavefront (which
    /// advances from the *oldest* pending symbols toward the newest) is not
    /// evicted out from under a resolvable chain.
    const PENDING_CAPACITY: usize = 96;

    /// A window remembering the last `capacity` data slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            pending_capacity: Self::PENDING_CAPACITY,
            entries: VecDeque::with_capacity(capacity.max(1) + 1),
            pending: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Clears all state (used on retune: the new channel's sequence space
    /// is unrelated). Deliberate resets are not counted as evictions.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.pending.clear();
    }

    /// Records a heard data frame.
    pub fn push_heard(&mut self, seq: u64, page: PageId, payload: Arc<[u8]>) {
        self.push(Entry {
            seq,
            page,
            payload: Some(payload),
        });
    }

    /// Records a known-lost data slot (the client saw a sequence gap and
    /// derived the slot's page from the plan).
    pub fn push_lost(&mut self, seq: u64, page: PageId) {
        self.push(Entry {
            seq,
            page,
            payload: None,
        });
    }

    fn push(&mut self, entry: Entry) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.seq < entry.seq),
            "window pushes must be in increasing seq order"
        );
        self.entries.push_back(entry);
        if self.entries.len() > self.capacity {
            let evicted = self.entries.pop_front().expect("non-empty");
            if evicted.payload.is_none() {
                // A loss left the window unrepaired — it is now unknown
                // and no future symbol may decode it.
                self.evictions += 1;
            }
        }
    }

    /// Feeds a received repair symbol: `covers` is the symbol's covered
    /// `(absolute seq, page)` set (from [`crate::ChannelCode::covered_seqs`])
    /// and `payload` the symbol's wire payload. Returns every page this
    /// symbol (plus any pending symbols it unblocked) reconstructed.
    pub fn on_repair(&mut self, covers: Vec<(u64, PageId)>, payload: &[u8]) -> Vec<Decoded> {
        let mut out = Vec::new();
        match self.attempt(&covers, payload) {
            Attempt::Decoded(d) => {
                out.push(d);
                self.peel(&mut out);
            }
            Attempt::Wait => {
                if self.pending.len() == self.pending_capacity {
                    self.pending.pop_front();
                    self.evictions += 1;
                }
                self.pending.push_back(PendingSymbol {
                    covers,
                    payload: payload.to_vec(),
                });
            }
            Attempt::Resolved => {}
            Attempt::Expired => self.evictions += 1,
        }
        out
    }

    /// Re-tries pending symbols until no further decode succeeds.
    fn peel(&mut self, out: &mut Vec<Decoded>) {
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                let sym = self.pending.remove(i).expect("index in bounds");
                match self.attempt(&sym.covers, &sym.payload) {
                    Attempt::Decoded(d) => {
                        out.push(d);
                        progressed = true;
                    }
                    Attempt::Wait => {
                        self.pending.insert(i, sym);
                        i += 1;
                    }
                    Attempt::Resolved => {}
                    Attempt::Expired => self.evictions += 1,
                }
            }
        }
    }

    fn attempt(&mut self, covers: &[(u64, PageId)], payload: &[u8]) -> Attempt {
        let mut lost: Option<usize> = None;
        let mut losses = 0usize;
        for &(seq, page) in covers {
            let Some(idx) = self.find(seq) else {
                return Attempt::Expired;
            };
            let e = &self.entries[idx];
            if e.page != page {
                // Composition disagrees with what the window observed —
                // only possible on a plan mismatch; never guess.
                debug_assert!(
                    false,
                    "window holds {} at seq {seq}, symbol says {page}",
                    e.page
                );
                return Attempt::Expired;
            }
            if e.payload.is_none() {
                losses += 1;
                lost = Some(idx);
            }
        }
        match losses {
            0 => Attempt::Resolved,
            1 => {
                let idx = lost.expect("loss recorded");
                let mut acc = payload.to_vec();
                for &(seq, _) in covers {
                    let j = self.find(seq).expect("checked above");
                    if let Some(p) = &self.entries[j].payload {
                        xor_into(&mut acc, p);
                    }
                }
                let payload: Arc<[u8]> = acc.into();
                let e = &mut self.entries[idx];
                e.payload = Some(payload.clone());
                Attempt::Decoded(Decoded {
                    seq: e.seq,
                    page: e.page,
                    payload,
                })
            }
            _ => Attempt::Wait,
        }
    }

    /// Binary search by absolute seq (entries are seq-ordered but not
    /// contiguous: only data slots enter the window).
    fn find(&self, seq: u64) -> Option<usize> {
        let (mut lo, mut hi) = (0, self.entries.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.entries[mid].seq < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.entries.len() && self.entries[lo].seq == seq).then_some(lo)
    }

    /// Total evictions so far: known-lost entries that aged out
    /// unrepaired, plus repair symbols dropped by the pending buffer or
    /// expired against the ring bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of data slots currently remembered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no data slots are remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered (not yet decodable) repair symbols.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pay(tag: u8, len: usize) -> Arc<[u8]> {
        (0..len).map(|i| tag ^ (i as u8)).collect::<Vec<_>>().into()
    }

    fn xor_of(parts: &[&Arc<[u8]>]) -> Vec<u8> {
        let mut acc = vec![0u8; parts[0].len()];
        for p in parts {
            xor_into(&mut acc, p);
        }
        acc
    }

    #[test]
    fn single_loss_decodes_from_xor_symbol() {
        let mut w = DecodeWindow::new(8);
        let (a, b, c) = (pay(1, 16), pay(2, 16), pay(3, 16));
        w.push_heard(10, PageId(0), a.clone());
        w.push_lost(11, PageId(1));
        w.push_heard(12, PageId(2), c.clone());
        let symbol = xor_of(&[&a, &b, &c]);
        let covers = vec![(10, PageId(0)), (11, PageId(1)), (12, PageId(2))];
        let decoded = w.on_repair(covers, &symbol);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].seq, 11);
        assert_eq!(decoded[0].page, PageId(1));
        assert_eq!(&decoded[0].payload[..], &b[..]);
        assert_eq!(w.evictions(), 0);
    }

    #[test]
    fn lossless_feed_never_decodes() {
        let mut w = DecodeWindow::new(8);
        let (a, b) = (pay(1, 8), pay(2, 8));
        w.push_heard(0, PageId(0), a.clone());
        w.push_heard(1, PageId(1), b.clone());
        let symbol = xor_of(&[&a, &b]);
        let decoded = w.on_repair(vec![(0, PageId(0)), (1, PageId(1))], &symbol);
        assert!(decoded.is_empty());
        assert_eq!(w.pending_len(), 0);
        assert_eq!(w.evictions(), 0);
    }

    #[test]
    fn double_loss_waits_then_peels() {
        let mut w = DecodeWindow::new(8);
        let (a, b, c) = (pay(1, 8), pay(2, 8), pay(3, 8));
        w.push_heard(0, PageId(0), a.clone());
        w.push_lost(1, PageId(1));
        w.push_lost(2, PageId(2));
        // Symbol 1 covers all three: two losses → pending.
        let s1 = xor_of(&[&a, &b, &c]);
        let covers1 = vec![(0, PageId(0)), (1, PageId(1)), (2, PageId(2))];
        assert!(w.on_repair(covers1, &s1).is_empty());
        assert_eq!(w.pending_len(), 1);
        // Symbol 2 covers only page 2: decodes it, which unblocks symbol 1.
        let s2 = xor_of(&[&c]);
        let decoded = w.on_repair(vec![(2, PageId(2))], &s2);
        assert_eq!(decoded.len(), 2, "peeling should cascade");
        assert_eq!(decoded[0].page, PageId(2));
        assert_eq!(&decoded[0].payload[..], &c[..]);
        assert_eq!(decoded[1].page, PageId(1));
        assert_eq!(&decoded[1].payload[..], &b[..]);
        assert_eq!(w.pending_len(), 0);
    }

    #[test]
    fn expired_covers_never_guess() {
        let mut w = DecodeWindow::new(2);
        let (a, b, c) = (pay(1, 8), pay(2, 8), pay(3, 8));
        w.push_lost(0, PageId(0));
        w.push_heard(1, PageId(1), b.clone());
        w.push_heard(2, PageId(2), c.clone()); // seq 0 falls off (eviction)
        assert_eq!(w.evictions(), 1);
        let symbol = xor_of(&[&a, &b, &c]);
        let covers = vec![(0, PageId(0)), (1, PageId(1)), (2, PageId(2))];
        let decoded = w.on_repair(covers, &symbol);
        assert!(decoded.is_empty(), "must not decode through unknown slots");
        assert_eq!(w.evictions(), 2); // the symbol itself expired
    }

    #[test]
    fn reset_clears_without_counting_evictions() {
        let mut w = DecodeWindow::new(4);
        w.push_lost(0, PageId(0));
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.pending_len(), 0);
        assert_eq!(w.evictions(), 0);
        // The window is reusable with a fresh sequence space.
        w.push_heard(100, PageId(3), pay(9, 8));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn pending_buffer_is_bounded() {
        let mut w = DecodeWindow::new(64);
        w.push_lost(0, PageId(0));
        w.push_lost(1, PageId(1));
        let junk = vec![0u8; 8];
        for _ in 0..DecodeWindow::PENDING_CAPACITY + 3 {
            w.on_repair(vec![(0, PageId(0)), (1, PageId(1))], &junk);
        }
        assert_eq!(w.pending_len(), DecodeWindow::PENDING_CAPACITY);
        assert_eq!(w.evictions(), 3);
    }
}
