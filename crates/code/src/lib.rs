//! Erasure coding over the broadcast cycle: repair symbols that let a
//! client reconstruct a missed page in a few slots instead of waiting a
//! full period for its next airing.
//!
//! The scheduler ([`bdisk_sched::BroadcastPlan::with_coding`]) places
//! [`Slot::Repair`] slots into each channel's period; this crate defines
//! what those slots *carry*. A repair symbol is the XOR of the payloads of
//! some of the pages in its coverage window — the last `group` distinct
//! multi-airing pages aired before it (once-per-period pages are uncoded
//! by design; see [`BroadcastProgram::coverage_window`]). Which
//! subset is a pure function of `(coding seed, channel, repair id)`, so the
//! server-side encoder and every client derive identical compositions with
//! no side channel: that determinism contract is the whole design.
//!
//! Two codecs implement the selection behind the [`RepairCodec`] trait:
//!
//! * [`XorCodec`] — systematic parity: the symbol combines the *entire*
//!   window, so any single loss inside the window is repaired by the next
//!   covering symbol.
//! * [`LtCodec`] — LT/fountain coding: the symbol combines a random
//!   subset of the window, its degree drawn from a windowed soliton
//!   profile (dense ~0.6·`group` checks plus a light soliton tail).
//!   Individual symbols repair less, but overlapping symbols of mixed
//!   degree let the belief-propagation peeling decoder ([`DecodeWindow`])
//!   recover multiple losses — including patterns whole-window parity can
//!   never untangle, because interval XORs are prefix-sum constraints and
//!   lose rank under clustered losses.
//!
//! [`ChannelCode::build`] compiles a channel's program + config into the
//! per-symbol composition table both ends work from; [`DecodeWindow`] is
//! the client-side bounded ring that tracks heard/lost data slots and
//! peels repair symbols as they arrive.

#![warn(missing_docs)]

use bdisk_sched::{BroadcastProgram, CodecKind, CodingConfig, PageId, RepairId, Slot};

mod window;

pub use window::{DecodeWindow, Decoded};

/// Chooses which offsets of a repair symbol's coverage window the symbol
/// actually combines. Implementations must be pure functions of their
/// arguments — the same `(window, channel, id, seed)` must select the same
/// subset on the server and on every client, forever.
pub trait RepairCodec {
    /// Returns the selected period offsets, a non-empty subset of
    /// `window`, preserving `window`'s order.
    fn select(&self, window: &[u32], channel: u16, id: RepairId, seed: u64) -> Vec<u32>;
}

/// Systematic XOR parity: every symbol combines its whole window.
pub struct XorCodec;

impl RepairCodec for XorCodec {
    fn select(&self, window: &[u32], _channel: u16, _id: RepairId, _seed: u64) -> Vec<u32> {
        window.to_vec()
    }
}

/// LT/fountain coding: the symbol's degree `d` is drawn from a windowed
/// soliton profile over the window size, then `d` distinct window entries
/// are picked — all draws seeded by `(seed, channel, id)`.
///
/// The profile is *not* the classic robust soliton. That distribution is
/// tuned for the fountain regime — the receiver collects ~`k` symbols and
/// block-decodes — whereas a broadcast channel airs only a handful of
/// symbols per window span and the decoder peels them online. Streaming
/// repair wants moderately *dense* checks (about 0.6·k) so every slot sits
/// under several independent equations, plus a light soliton tail whose
/// degree-1/2 symbols give the peeler somewhere to start. Whole-window
/// parity is no substitute: interval XORs are prefix-sum constraints and
/// go rank-deficient under multiple losses, which is exactly when coding
/// is supposed to earn its airtime.
pub struct LtCodec;

impl RepairCodec for LtCodec {
    fn select(&self, window: &[u32], channel: u16, id: RepairId, seed: u64) -> Vec<u32> {
        let k = window.len();
        if k <= 2 {
            return window.to_vec();
        }
        let mut rng = SplitMix::new(mix64(
            seed ^ 0x4c54_c0de // domain tag: LT composition
                ^ ((channel as u64) << 32)
                ^ id.0 as u64,
        ));
        let d = windowed_degree(k, rng.next_f64(), rng.next_f64());
        // Partial Fisher-Yates: pick d distinct indices, then restore
        // window order so compositions read most-recent-first.
        let mut idx: Vec<usize> = (0..k).collect();
        for i in 0..d {
            let j = i + (rng.next_u64() as usize) % (k - i);
            idx.swap(i, j);
        }
        let mut picked = idx[..d].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| window[i]).collect()
    }
}

/// The codec for `kind`, as a shared trait object.
pub fn codec(kind: CodecKind) -> &'static dyn RepairCodec {
    match kind {
        CodecKind::Xor => &XorCodec,
        CodecKind::Lt => &LtCodec,
    }
}

/// Light-tail mass of the windowed profile: the fraction of symbols drawn
/// from the ideal soliton (degrees mostly 1–2) rather than the dense band.
const LIGHT_MASS: f64 = 0.15;

/// Draws a degree from the windowed soliton profile over a `k`-entry
/// window given two uniform draws. With probability [`LIGHT_MASS`] the
/// degree comes from the ideal soliton (CDF `F(1) = 1/k`,
/// `F(d) = 1/k + 1 − 1/d`, inverted in closed form) — these light symbols
/// repair isolated losses on the spot and seed the peeling cascade. The
/// rest are dense checks, uniform over `[⌈k/2⌉, ⌈k/2⌉ + k/5]` clamped to
/// `k`: at a repair spacing of a few slots this puts each data slot under
/// ~3 independent equations, the operating point where online peeling at
/// 2–3× overhead drains an i.i.d. 10% erasure pattern nearly completely.
fn windowed_degree(k: usize, u_kind: f64, u_val: f64) -> usize {
    debug_assert!(k >= 2);
    if u_kind < LIGHT_MASS {
        let kf = k as f64;
        if u_val < 1.0 / kf {
            return 1;
        }
        // Invert F(d) = 1/k + 1 − 1/d for d ≥ 2.
        let d = (1.0 / (1.0 - (u_val - 1.0 / kf))).ceil() as usize;
        return d.clamp(2, k);
    }
    let lo = k.div_ceil(2);
    let hi = (lo + k / 5).min(k);
    lo + (u_val * (hi - lo + 1) as f64) as usize
}

/// One repair symbol's compiled composition: where it sits in the period
/// and exactly which data airings it combines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolSpec {
    /// Period offset of the repair slot.
    pub offset: u32,
    /// The symbol's id (its index among the channel's repair slots).
    pub id: RepairId,
    /// The combined data airings as `(period offset, page)` pairs —
    /// channel-local page ids, one entry per distinct page.
    pub covers: Vec<(u32, PageId)>,
}

/// A channel's compiled code: the composition of every repair symbol in
/// its period. Built identically (from the plan + config alone) by the
/// server-side encoder and each client.
#[derive(Debug, Clone)]
pub struct ChannelCode {
    period: u32,
    symbols: Vec<SymbolSpec>,
}

impl ChannelCode {
    /// Compiles `program`'s repair slots under `cfg`. `channel` seeds the
    /// LT codec so different channels get independent compositions.
    pub fn build(program: &BroadcastProgram, channel: u16, cfg: &CodingConfig) -> Self {
        let sel = codec(cfg.codec);
        let mut symbols = Vec::with_capacity(program.repair_slots());
        for (off, slot) in program.slots().iter().enumerate() {
            if let Slot::Repair(id) = *slot {
                // The scheduler assigns ids in offset order; the encoder
                // and decoder index this table by id, so verify it.
                debug_assert_eq!(id.index(), symbols.len(), "repair ids out of order");
                let window = program.coverage_window(off as u32, cfg.group);
                let covers = sel
                    .select(&window, channel, id, cfg.seed)
                    .into_iter()
                    .map(|o| match program.slot_at(o as u64) {
                        Slot::Page(p) => (o, p),
                        other => unreachable!("window offset {o} holds {other:?}"),
                    })
                    .collect();
                symbols.push(SymbolSpec {
                    offset: off as u32,
                    id,
                    covers,
                });
            }
        }
        Self {
            period: program.period() as u32,
            symbols,
        }
    }

    /// The channel's period in slots.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// All symbols, in offset (= id) order.
    pub fn symbols(&self) -> &[SymbolSpec] {
        &self.symbols
    }

    /// The composition of symbol `id`, or `None` for an unknown id.
    pub fn symbol(&self, id: RepairId) -> Option<&SymbolSpec> {
        self.symbols.get(id.index())
    }

    /// The absolute slot sequences a symbol aired at `seq` covers, paired
    /// with the covered (channel-local) pages. A symbol covers only slots
    /// *before* its own: for each covered period offset the distance back
    /// is `(offset − o) mod period ∈ [1, period)`.
    pub fn covered_seqs(&self, id: RepairId, seq: u64) -> Option<Vec<(u64, PageId)>> {
        let spec = self.symbol(id)?;
        debug_assert_eq!(seq % self.period as u64, spec.offset as u64);
        let mut out = Vec::with_capacity(spec.covers.len());
        for &(o, page) in &spec.covers {
            let delta = (spec.offset + self.period - o) % self.period;
            debug_assert!(delta > 0);
            let delta = delta as u64;
            if seq < delta {
                // The covered airing predates the start of the broadcast
                // (only possible in the very first period).
                return None;
            }
            out.push((seq - delta, page));
        }
        Some(out)
    }
}

/// XORs `src` into `dst` (the byte-wise group operation every codec and
/// the decoder share). Panics if lengths differ — payload sizes are fixed
/// per run by the engine config.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "payload size mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// `splitmix64`'s finalizer: a fast, well-mixed 64-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minimal splitmix64 stream — deterministic, dependency-free, and stable
/// across platforms (part of the determinism contract, so we do not reach
/// for an external RNG whose stream might change).
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::{BroadcastPlan, DiskLayout};

    fn coded_plan(rate: f64, group: usize, codec: CodecKind) -> BroadcastPlan {
        let layout = DiskLayout::with_delta(&[6, 18, 24], 3).unwrap();
        let cfg = CodingConfig {
            rate,
            group,
            codec,
            seed: 0xC0DE,
        };
        BroadcastPlan::generate(&layout, 2)
            .unwrap()
            .with_coding(cfg)
            .unwrap()
    }

    #[test]
    fn build_is_deterministic_and_ordered() {
        for kind in [CodecKind::Xor, CodecKind::Lt] {
            let plan = coded_plan(0.1, 8, kind);
            let cfg = *plan.coding().unwrap();
            for c in 0..2u16 {
                let prog = plan.program(bdisk_sched::ChannelId(c));
                let a = ChannelCode::build(prog, c, &cfg);
                let b = ChannelCode::build(prog, c, &cfg);
                assert_eq!(a.symbols(), b.symbols());
                assert_eq!(a.symbols().len(), prog.repair_slots());
                for (i, s) in a.symbols().iter().enumerate() {
                    assert_eq!(s.id.index(), i);
                    assert!(!s.covers.is_empty());
                    // Covers are distinct pages at distinct offsets.
                    for (j, &(o1, p1)) in s.covers.iter().enumerate() {
                        for &(o2, p2) in &s.covers[j + 1..] {
                            assert_ne!(o1, o2);
                            assert_ne!(p1, p2);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn xor_covers_whole_window_lt_subset() {
        let plan = coded_plan(0.1, 8, CodecKind::Xor);
        let cfg = *plan.coding().unwrap();
        let prog = plan.program(bdisk_sched::ChannelId(0));
        let code = ChannelCode::build(prog, 0, &cfg);
        for s in code.symbols() {
            let window = prog.coverage_window(s.offset, cfg.group);
            assert_eq!(s.covers.len(), window.len());
        }

        let plan = coded_plan(0.1, 8, CodecKind::Lt);
        let cfg = *plan.coding().unwrap();
        let prog = plan.program(bdisk_sched::ChannelId(0));
        let code = ChannelCode::build(prog, 0, &cfg);
        let mut degrees: Vec<usize> = Vec::new();
        for s in code.symbols() {
            let window = prog.coverage_window(s.offset, cfg.group);
            assert!(s.covers.len() <= window.len());
            // Every cover comes from the window.
            for &(o, _) in &s.covers {
                assert!(window.contains(&o));
            }
            degrees.push(s.covers.len());
        }
        // Soliton sampling mixes degrees (mostly small, some large).
        if degrees.len() >= 4 {
            let distinct: std::collections::HashSet<_> = degrees.iter().collect();
            assert!(distinct.len() > 1, "all LT degrees equal: {degrees:?}");
        }
    }

    #[test]
    fn covered_seqs_point_strictly_backwards() {
        let plan = coded_plan(0.15, 6, CodecKind::Xor);
        let cfg = *plan.coding().unwrap();
        let prog = plan.program(bdisk_sched::ChannelId(1));
        let code = ChannelCode::build(prog, 1, &cfg);
        let period = prog.period() as u64;
        for s in code.symbols() {
            let seq = 5 * period + s.offset as u64;
            let covered = code.covered_seqs(s.id, seq).unwrap();
            for &(cs, page) in &covered {
                assert!(cs < seq && seq - cs < period);
                assert_eq!(prog.slot_at(cs), Slot::Page(page));
            }
        }
    }

    #[test]
    fn windowed_degrees_mix_light_and_dense() {
        let k = 20;
        let (mut light, mut dense) = (0, 0);
        for i in 0..1000 {
            let u_kind = (i as f64 + 0.5) / 1000.0;
            for j in 0..20 {
                let u_val = (j as f64 + 0.5) / 20.0;
                let d = windowed_degree(k, u_kind, u_val);
                assert!((1..=k).contains(&d), "degree {d} out of range");
                if u_kind < LIGHT_MASS {
                    light += 1;
                } else {
                    // Dense checks stay in the [k/2, k/2 + k/5] band.
                    assert!((10..=14).contains(&d), "dense degree {d}");
                    dense += 1;
                }
            }
        }
        // The light tail exists (peeling needs somewhere to start) but the
        // bulk of symbols are dense checks.
        assert!(
            light > 0 && dense > 4 * light,
            "light={light} dense={dense}"
        );
    }

    #[test]
    fn xor_into_is_involutive() {
        let a: Vec<u8> = (0..32).collect();
        let b: Vec<u8> = (0..32).map(|i| i * 7 + 3).collect();
        let mut s = a.clone();
        xor_into(&mut s, &b);
        xor_into(&mut s, &b);
        assert_eq!(s, a);
    }
}
