//! # bdisk-analytic — closed-form performance models
//!
//! The Broadcast Disks paper grounds its design in a handful of analytic
//! facts; this crate implements them exactly so that the simulator can be
//! validated against closed forms:
//!
//! * **Expected delay of any periodic program.** A request arriving at a
//!   uniformly random instant waits, for a page whose broadcasts are
//!   separated by gaps `g_1..g_k` (summing to the period `T`),
//!   `E[w] = Σ g_j² / (2T)`. This single formula yields all of Table 1.
//! * **The Bus Stop Paradox** (Section 2.1): for a fixed average broadcast
//!   rate, variance in the inter-arrival gaps strictly increases expected
//!   delay — which is why the Multi-disk program (fixed gaps) beats the
//!   skewed program (clustered copies) at equal bandwidth share.
//! * **Square-root bandwidth allocation**: the classic result that expected
//!   delay of an idealized (variance-free) broadcast is minimized when each
//!   page's share of bandwidth is proportional to the square root of its
//!   access probability. Used as a theoretical reference point for the
//!   optimizer.
//! * **No-cache expected response time** of a multi-disk program under a
//!   client access distribution — the quantity plotted in Figure 5, exact
//!   because multi-disk gaps are fixed.

#![warn(missing_docs)]

use bdisk_sched::{BroadcastProgram, PageId};

pub mod table1;

pub use table1::{table1, Table1Row};

/// Expected wait (in broadcast units) for a single page under a program,
/// assuming the request instant is uniform over the period.
///
/// Exact for *any* periodic program, even with uneven gaps:
/// `E[w] = Σ g_j² / (2T)`.
///
/// ```
/// use bdisk_sched::{skewed_program, flat_program, PageId};
/// use bdisk_analytic::expected_delay;
///
/// // Figure 2(b): A A B C — page A's gaps are 1 and 3.
/// let skewed = skewed_program(&[2, 1, 1]).unwrap();
/// assert_eq!(expected_delay(&skewed, PageId(0)), 1.25); // (1² + 3²) / (2·4)
///
/// // Flat A B C: every page waits 1.5 on average.
/// let flat = flat_program(3).unwrap();
/// assert_eq!(expected_delay(&flat, PageId(0)), 1.5);
/// ```
pub fn expected_delay(program: &BroadcastProgram, page: PageId) -> f64 {
    let t = program.period() as f64;
    let gaps = program.gaps(page);
    gaps.iter().map(|g| g * g).sum::<f64>() / (2.0 * t)
}

/// Expected response time of a cache-less client: the probability-weighted
/// expected delay over all pages.
///
/// `probs[p]` is the access probability of page `p`; pages beyond
/// `probs.len()` are assumed never accessed. Exact for any program.
pub fn expected_response_time(program: &BroadcastProgram, probs: &[f64]) -> f64 {
    assert!(
        probs.len() <= program.num_pages(),
        "access range larger than the broadcast ({} > {})",
        probs.len(),
        program.num_pages()
    );
    probs
        .iter()
        .enumerate()
        .map(|(p, &pr)| pr * expected_delay(program, PageId(p as u32)))
        .sum()
}

/// Expected delay for a page broadcast with *fixed* inter-arrival gap `g`:
/// simply `g / 2` (no variance term).
pub fn fixed_gap_delay(gap: f64) -> f64 {
    gap / 2.0
}

/// The Bus Stop Paradox penalty: expected delay of a page whose broadcasts
/// per period are spread with the given gaps, minus the delay it would have
/// if the same number of broadcasts were evenly spaced.
///
/// Always `>= 0`, and `0` exactly when the gaps are all equal.
pub fn bus_stop_penalty(gaps: &[f64]) -> f64 {
    assert!(!gaps.is_empty());
    let t: f64 = gaps.iter().sum();
    let k = gaps.len() as f64;
    let actual = gaps.iter().map(|g| g * g).sum::<f64>() / (2.0 * t);
    let even = t / (2.0 * k);
    actual - even
}

/// Square-root rule: the bandwidth share for each page that minimizes
/// expected delay in an idealized variance-free broadcast is proportional
/// to `sqrt(prob)`.
///
/// Returns normalized shares summing to 1. Pages with zero probability get
/// zero share (they would get an infinitesimal share in the continuous
/// ideal; callers building real programs must give every page at least one
/// slot per period).
pub fn optimal_bandwidth_shares(probs: &[f64]) -> Vec<f64> {
    let roots: Vec<f64> = probs.iter().map(|&p| p.max(0.0).sqrt()).collect();
    let total: f64 = roots.iter().sum();
    if total == 0.0 {
        return vec![0.0; probs.len()];
    }
    roots.iter().map(|r| r / total).collect()
}

/// Lower bound on expected delay achievable by *any* variance-free
/// broadcast for the given access probabilities: with optimal square-root
/// shares, `E[w] = (Σ_p sqrt(prob_p))² / 2` in one-page broadcast units.
pub fn sqrt_rule_lower_bound(probs: &[f64]) -> f64 {
    let s: f64 = probs.iter().map(|&p| p.max(0.0).sqrt()).sum();
    s * s / 2.0
}

/// Summary statistics of a broadcast program used by reports and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramAnalysis {
    /// Broadcast period in slots.
    pub period: usize,
    /// Number of distinct pages.
    pub num_pages: usize,
    /// Unused padding slots per period.
    pub empty_slots: usize,
    /// Fraction of bandwidth wasted on padding.
    pub waste: f64,
    /// True when every page has fixed inter-arrival times.
    pub fixed_interarrival: bool,
    /// Expected delay per page, uniform-instant arrivals.
    pub per_page_delay: Vec<f64>,
}

impl ProgramAnalysis {
    /// Analyzes `program`.
    pub fn of(program: &BroadcastProgram) -> Self {
        let per_page_delay: Vec<f64> = (0..program.num_pages())
            .map(|p| expected_delay(program, PageId(p as u32)))
            .collect();
        let fixed_interarrival =
            (0..program.num_pages()).all(|p| program.gap(PageId(p as u32)).is_some());
        Self {
            period: program.period(),
            num_pages: program.num_pages(),
            empty_slots: program.empty_slots(),
            waste: program.waste(),
            fixed_interarrival,
            per_page_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_sched::{flat_program, skewed_program, DiskLayout, Slot};

    #[test]
    fn flat_delay_is_half_period() {
        let p = flat_program(100).unwrap();
        for page in (0..100).step_by(7) {
            assert_eq!(expected_delay(&p, PageId(page)), 50.0);
        }
    }

    #[test]
    fn multi_disk_delay_is_half_gap() {
        let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        let p = BroadcastProgram::generate(&layout).unwrap();
        assert_eq!(expected_delay(&p, PageId(0)), 2.0); // gap 4
        assert_eq!(expected_delay(&p, PageId(1)), 4.0); // gap 8
        assert_eq!(expected_delay(&p, PageId(5)), 8.0); // gap 16
    }

    #[test]
    fn skewed_pays_bus_stop_penalty() {
        // Same bandwidth shares, different spacing: AABC vs ABAC.
        let skewed = skewed_program(&[2, 1, 1]).unwrap();
        let multi = BroadcastProgram::from_slots(
            vec![
                Slot::Page(PageId(0)),
                Slot::Page(PageId(1)),
                Slot::Page(PageId(0)),
                Slot::Page(PageId(2)),
            ],
            None,
            vec![],
        )
        .unwrap();
        assert!(expected_delay(&skewed, PageId(0)) > expected_delay(&multi, PageId(0)));
        // B and C identical in both.
        assert_eq!(
            expected_delay(&skewed, PageId(1)),
            expected_delay(&multi, PageId(1))
        );
    }

    #[test]
    fn response_time_weights_by_probability() {
        let flat = flat_program(3).unwrap();
        // Uniform: 1.5 regardless.
        assert!((expected_response_time(&flat, &[1.0 / 3.0; 3]) - 1.5).abs() < 1e-12);
        // All mass on one page: still 1.5 for a flat disk.
        assert_eq!(expected_response_time(&flat, &[1.0, 0.0, 0.0]), 1.5);
    }

    #[test]
    fn response_time_allows_partial_access_range() {
        // AccessRange < ServerDBSize: only the first two pages accessed.
        let flat = flat_program(10).unwrap();
        let r = expected_response_time(&flat, &[0.5, 0.5]);
        assert_eq!(r, 5.0);
    }

    #[test]
    #[should_panic(expected = "access range larger")]
    fn response_time_rejects_oversized_range() {
        let flat = flat_program(2).unwrap();
        let _ = expected_response_time(&flat, &[0.3, 0.3, 0.4]);
    }

    #[test]
    fn bus_stop_penalty_zero_for_even_gaps() {
        assert_eq!(bus_stop_penalty(&[2.0, 2.0]), 0.0);
        assert!(bus_stop_penalty(&[1.0, 3.0]) > 0.0);
        // (1+9)/8 - 4/4 = 1.25 - 1.0
        assert!((bus_stop_penalty(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn penalty_grows_with_variance() {
        let p1 = bus_stop_penalty(&[1.9, 2.1]);
        let p2 = bus_stop_penalty(&[1.0, 3.0]);
        let p3 = bus_stop_penalty(&[0.1, 3.9]);
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn sqrt_shares_normalize() {
        let shares = optimal_bandwidth_shares(&[0.64, 0.16, 0.16, 0.04]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // sqrt(p) ratios: 0.8 : 0.4 : 0.4 : 0.2 → 4:2:2:1.
        assert!((shares[0] / shares[3] - 4.0).abs() < 1e-9);
        assert!((shares[1] / shares[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sqrt_shares_handle_zeros() {
        let shares = optimal_bandwidth_shares(&[1.0, 0.0]);
        assert_eq!(shares, vec![1.0, 0.0]);
        assert_eq!(optimal_bandwidth_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn sqrt_rule_bound_below_flat() {
        // For a skewed distribution the sqrt-rule bound beats a flat disk.
        let probs = [0.9, 0.05, 0.05];
        let bound = sqrt_rule_lower_bound(&probs);
        let flat = flat_program(3).unwrap();
        assert!(bound < expected_response_time(&flat, &probs));
        // For uniform access the bound equals the flat disk's performance.
        let uni = [1.0 / 3.0; 3];
        let bound_uni = sqrt_rule_lower_bound(&uni);
        assert!((bound_uni - 1.5).abs() < 1e-12);
    }

    #[test]
    fn analysis_summarizes() {
        let layout = DiskLayout::new(vec![1, 3], vec![2, 1]).unwrap();
        let p = BroadcastProgram::generate(&layout).unwrap();
        let a = ProgramAnalysis::of(&p);
        assert_eq!(a.period, 6);
        assert_eq!(a.num_pages, 4);
        assert_eq!(a.empty_slots, 1);
        assert!(a.fixed_interarrival);
        assert_eq!(a.per_page_delay[0], 1.5); // gap 3
    }

    #[test]
    fn analysis_flags_uneven_programs() {
        let p = skewed_program(&[2, 1]).unwrap();
        let a = ProgramAnalysis::of(&p);
        assert!(!a.fixed_interarrival);
    }
}
