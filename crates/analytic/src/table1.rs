//! Table 1 of the paper: expected delay for the three example broadcast
//! programs of Figure 2 over a three-page database.
//!
//! The programs are:
//!
//! * **(a) Flat**    — `A B C`  (period 3)
//! * **(b) Skewed**  — `A A B C` (period 4, A's copies clustered)
//! * **(c) Multi-disk** — `A B A C` (period 4, A's copies evenly spaced)
//!
//! Each row of the table evaluates the three programs under one access
//! probability distribution for pages A, B, C. The published values are
//!
//! | P(A), P(B), P(C)        | Flat | Skewed | Multi-disk |
//! |-------------------------|------|--------|------------|
//! | 0.333, 0.333, 0.333     | 1.50 | 1.75   | 1.67       |
//! | 0.50, 0.25, 0.25        | 1.50 | 1.63   | 1.50       |
//! | 0.75, 0.125, 0.125      | 1.50 | 1.44   | 1.25       |
//! | 0.90, 0.05, 0.05        | 1.50 | 1.33   | 1.10       |
//! | 1.0, 0.0, 0.0           | 1.50 | 1.25   | 1.00       |
//!
//! and [`table1`] regenerates them from the closed-form delay model.

use bdisk_sched::{flat_program, skewed_program, BroadcastProgram, PageId, Slot};

use crate::expected_response_time;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Access probabilities for pages A, B, C.
    pub probs: [f64; 3],
    /// Expected delay under the flat program `A B C`.
    pub flat: f64,
    /// Expected delay under the skewed program `A A B C`.
    pub skewed: f64,
    /// Expected delay under the multi-disk program `A B A C`.
    pub multi_disk: f64,
}

/// The three example programs of Figure 2.
pub fn figure2_programs() -> (BroadcastProgram, BroadcastProgram, BroadcastProgram) {
    let flat = flat_program(3).expect("3 pages");
    let skewed = skewed_program(&[2, 1, 1]).expect("valid copies");
    let multi = BroadcastProgram::from_slots(
        vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(2)),
        ],
        None,
        vec![2, 1],
    )
    .expect("valid slots");
    (flat, skewed, multi)
}

/// The five access-probability distributions used in Table 1.
pub const TABLE1_DISTRIBUTIONS: [[f64; 3]; 5] = [
    [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
    [0.50, 0.25, 0.25],
    [0.75, 0.125, 0.125],
    [0.90, 0.05, 0.05],
    [1.0, 0.0, 0.0],
];

/// Regenerates Table 1 analytically.
pub fn table1() -> Vec<Table1Row> {
    let (flat, skewed, multi) = figure2_programs();
    TABLE1_DISTRIBUTIONS
        .iter()
        .map(|&probs| Table1Row {
            probs,
            flat: expected_response_time(&flat, &probs),
            skewed: expected_response_time(&skewed, &probs),
            multi_disk: expected_response_time(&multi, &probs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 0.005
    }

    #[test]
    fn matches_published_values() {
        let rows = table1();
        let expected = [
            (1.50, 1.75, 1.67),
            (1.50, 1.63, 1.50),
            (1.50, 1.44, 1.25),
            (1.50, 1.33, 1.10),
            (1.50, 1.25, 1.00),
        ];
        for (row, (f, s, m)) in rows.iter().zip(expected) {
            assert!(
                close(row.flat, f),
                "flat {} vs {f} at {:?}",
                row.flat,
                row.probs
            );
            assert!(
                close(row.skewed, s),
                "skewed {} vs {s} at {:?}",
                row.skewed,
                row.probs
            );
            assert!(
                close(row.multi_disk, m),
                "multi {} vs {m} at {:?}",
                row.multi_disk,
                row.probs
            );
        }
    }

    #[test]
    fn point_one_flat_best_at_uniform() {
        // "for uniform page access probabilities, a flat disk has the best
        //  expected performance"
        let row = &table1()[0];
        assert!(row.flat < row.skewed);
        assert!(row.flat < row.multi_disk);
    }

    #[test]
    fn point_two_nonflat_wins_with_skew() {
        // "as the access probabilities become increasingly skewed, the
        //  non-flat programs perform increasingly better"
        let rows = table1();
        for row in &rows[2..] {
            assert!(row.multi_disk < row.flat, "probs {:?}", row.probs);
            assert!(row.skewed < row.flat, "probs {:?}", row.probs);
        }
        // And monotonically so.
        for w in rows.windows(2) {
            assert!(w[1].multi_disk <= w[0].multi_disk);
            assert!(w[1].skewed <= w[0].skewed);
        }
    }

    #[test]
    fn point_three_multi_disk_beats_skewed_everywhere() {
        // "the Multi-disk program always performs better than the skewed
        //  program" (Bus Stop Paradox)
        for row in table1() {
            assert!(row.multi_disk < row.skewed, "probs {:?}", row.probs);
        }
    }

    #[test]
    fn figure2_program_shapes() {
        let (flat, skewed, multi) = figure2_programs();
        assert_eq!(flat.render(), "A B C");
        assert_eq!(skewed.render(), "A A B C");
        assert_eq!(multi.render(), "A B A C");
    }
}
