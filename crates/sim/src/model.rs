//! The client process: the heart of the Section 4.1 execution model.
//!
//! "The client runs a continuous loop that randomly requests a page
//! according to a specified distribution. […] If the requested page is not
//! cache-resident, then the client waits for the page to arrive on the
//! broadcast and then brings the requested page into its cache. […] Once
//! the requested page is cache resident, the client waits ThinkTime
//! broadcast units of time and then makes the next request."
//!
//! Measurement follows Section 5's methodology: "the cache warm-up effects
//! were eliminated by beginning our measurements only after the cache was
//! full, and then running the experiment for 15,000 or more client page
//! requests".

use bdesim::{Action, Process, ProcessExecutor, Time};
use bdisk_obs::trace::{self, Span, SpanKind};
use bdisk_sched::{BroadcastPlan, BroadcastProgram, ChannelId, DiskLayout, PageId};
use bdisk_workload::{Mapping, RegionZipf};
use rand::rngs::StdRng;

use crate::config::{SimConfig, SimError};
use crate::core::ClientCore;
use crate::metrics::{AccessLocation, SimOutcome};

/// What the client is doing between wake-ups.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// About to issue the next request.
    Request,
    /// Waiting on the broadcast for a missed page.
    Receive {
        page: PageId,
        requested_at: f64,
        /// Wait-attribution anchors when this request is sampled:
        /// `(no_switch, expected)` arrival times. Computed with pure plan
        /// arithmetic only — tracing never draws from the RNG, so sampled
        /// and unsampled runs stay bit-identical.
        trace: Option<(f64, f64)>,
    },
    /// Finished measuring.
    Finished,
}

/// The simulated client (one per run; the server is implicit in the
/// broadcast plan's arithmetic).
///
/// The request stream, cache policy, warm-up, and measurement logic all
/// live in [`ClientCore`], shared with the live engine's clients; this
/// wrapper adds the discrete-event waiting strategy (jump the clock to the
/// page's next arrival) and the **single-tuner constraint** of the
/// multi-channel model: the client listens to one channel at a time. A miss
/// on the tuned channel waits in place; a miss on another channel retunes —
/// the earliest receivable slot on the target channel starts at
/// `⌊t⌋ + 1 + switch_slots`, since the slot in flight at the switch instant
/// is already lost. With one channel the client never switches and the
/// model is bit-identical to the original single-program simulator.
pub struct ClientModel {
    core: ClientCore,
    plan: BroadcastPlan,
    /// The channel the single tuner currently listens to.
    tuned: ChannelId,
    switch_slots: f64,
    /// Padding-fill pull mirror: misses also wait on the next empty slot
    /// of the page's home channel (see [`SimConfig::pull`]).
    pull: bool,
    phase: Phase,
    end_time: f64,
    /// Span identity (the seed for seeded constructors, 0 otherwise).
    trace_id: u64,
    /// Sampled wait-attribution spans, in completion order. Empty (and
    /// never allocated into) unless span sampling is on.
    spans: Vec<Span>,
}

impl ClientModel {
    /// Builds the client for `cfg` against a generated broadcast program,
    /// deriving the Offset/Noise mapping from the config.
    pub fn new(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: BroadcastProgram,
        seed: u64,
    ) -> Result<Self, SimError> {
        let core = ClientCore::new(cfg, layout, &program, seed)?;
        Ok(Self::assemble(
            cfg,
            core,
            BroadcastPlan::single(program),
            seed,
        ))
    }

    /// Builds the client against a multi-channel [`BroadcastPlan`]. The
    /// tuner starts on channel 0.
    pub fn new_plan(
        cfg: &SimConfig,
        layout: &DiskLayout,
        plan: BroadcastPlan,
        seed: u64,
    ) -> Result<Self, SimError> {
        let core = ClientCore::new_plan(cfg, layout, &plan, seed)?;
        Ok(Self::assemble(cfg, core, plan, seed))
    }

    /// Builds the client with an explicit logical→physical mapping (used by
    /// the multi-client population model, where each client has its own
    /// interest region).
    pub fn with_mapping(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: BroadcastProgram,
        mapping: Mapping,
        rng: StdRng,
    ) -> Result<Self, SimError> {
        let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);
        Self::with_workload(cfg, layout, program, zipf.probs(), mapping, rng)
    }

    /// Builds the client with an explicit logical-page probability vector
    /// instead of the region-Zipf distribution (used by the Table 1
    /// simulation cross-check and custom workloads).
    pub fn with_workload(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: BroadcastProgram,
        logical_probs: &[f64],
        mapping: Mapping,
        rng: StdRng,
    ) -> Result<Self, SimError> {
        let core = ClientCore::with_workload(cfg, layout, &program, logical_probs, mapping, rng)?;
        Ok(Self::assemble(cfg, core, BroadcastPlan::single(program), 0))
    }

    fn assemble(cfg: &SimConfig, core: ClientCore, plan: BroadcastPlan, trace_id: u64) -> Self {
        Self {
            core,
            plan,
            tuned: ChannelId(0),
            switch_slots: cfg.switch_slots,
            pull: cfg.pull,
            phase: Phase::Request,
            end_time: 0.0,
            trace_id,
            spans: Vec::new(),
        }
    }

    /// Consumes the client, producing the run's outcome.
    pub fn into_outcome(self) -> SimOutcome {
        self.core.finish(self.end_time).0
    }

    /// Consumes the client, producing the outcome together with the
    /// wait-attribution spans sampled during the run (empty unless
    /// [`bdisk_obs::trace::set_sample_every`] enabled sampling).
    pub fn into_traced_outcome(self) -> (SimOutcome, Vec<Span>) {
        (self.core.finish(self.end_time).0, self.spans)
    }

    /// Records one sampled request span: into the process span ring (which
    /// asserts the conservation invariant) and into this client's local
    /// span list for in-process consumers.
    fn emit_span(&mut self, requested_at: f64, no_switch: f64, expected: f64, received_at: f64) {
        let total = received_at - requested_at;
        // The simulator is lossless: the fallback periodic airing *is* the
        // expected arrival, so loss and credit are exactly zero.
        let phases =
            trace::attribute_wait(requested_at, no_switch, expected, received_at, received_at);
        let index = self.core.measured_count();
        let seq = trace::record_request(self.trace_id, index, total, phases);
        self.spans.push(Span {
            seq,
            kind: SpanKind::Request,
            client: self.trace_id,
            index,
            total,
            phases,
        });
    }

    /// The padding-fill pull prediction: the first empty slot of the
    /// page's home channel at or after `max(⌈t⌉ + 1, min_seq)`. A request
    /// issued during slot `⌈t⌉` reaches the arbiter that same tick (the
    /// lockstep drivers submit with `last_aired = ⌈t⌉`), so the earliest
    /// slot the arbiter can grant is `⌈t⌉ + 1` — and never before the
    /// client's own receive floor `min_seq` (the retune penalty). This is
    /// byte-for-byte the live client's `pull_arrival` with `base = 0`.
    fn pull_arrival(&self, page: PageId, requested_at: f64, min_seq: u64) -> Option<f64> {
        let home = self.plan.channel_of(page);
        let lb = (requested_at.ceil() + 1.0).max(min_seq as f64);
        self.plan.next_padding_arrival(home, lb)
    }
}

impl Process for ClientModel {
    fn resume(&mut self, now: Time) -> Action {
        let t = now.as_f64();
        match self.phase {
            Phase::Request => {
                let page = self.core.next_request();
                // Sampling is decided at issue time: one request is in
                // flight and the measuring flag only flips inside
                // complete_request, so the index gate here matches the
                // index the request is recorded under.
                let traced = self.core.measuring() && trace::sampled(self.core.measured_count());
                if self.core.contains(page) {
                    self.core.on_hit(page, t);
                    if traced {
                        // A cache hit waits on nothing: the all-zero span.
                        self.emit_span(t, t, t, t);
                    }
                    if self.core.complete_request(0.0, AccessLocation::Cache) {
                        self.end_time = t;
                        self.phase = Phase::Finished;
                        return Action::Done;
                    }
                    Action::Sleep(Time::new(self.core.think_delay()))
                } else {
                    let channel = self.plan.channel_of(page);
                    let (min_seq, periodic, no_switch) = if channel == self.tuned {
                        let periodic = self.plan.next_arrival(page, t);
                        (0u64, periodic, periodic)
                    } else {
                        // Single-tuner constraint: retuning forfeits the
                        // slot in flight and pays the switch penalty. The
                        // no-switch anchor is what the wait would have been
                        // had the tuner already been on the page's channel;
                        // the gap to the actual arrival is the switch cost.
                        self.tuned = channel;
                        let after = t.floor() + 1.0 + self.switch_slots;
                        (
                            after.ceil() as u64,
                            self.plan.next_arrival(page, after),
                            self.plan.next_arrival(page, t),
                        )
                    };
                    let mut arrival = periodic;
                    if self.pull {
                        // Backchannel mirror: the effective arrival is the
                        // earlier of the periodic airing and the pull
                        // service — same arithmetic as the live client.
                        if let Some(pa) = self.pull_arrival(page, t, min_seq) {
                            arrival = arrival.min(pa);
                        }
                    }
                    let anchors = traced.then_some((no_switch, arrival));
                    self.phase = Phase::Receive {
                        page,
                        requested_at: t,
                        trace: anchors,
                    };
                    Action::Until(Time::new(arrival))
                }
            }
            Phase::Receive {
                page,
                requested_at,
                trace: anchors,
            } => {
                self.core.insert(page, t);
                let disk = self.plan.disk_of(page);
                self.phase = Phase::Request;
                if let Some((no_switch, expected)) = anchors {
                    self.emit_span(requested_at, no_switch, expected, t);
                }
                if self
                    .core
                    .complete_request(t - requested_at, AccessLocation::Disk(disk))
                {
                    self.end_time = t;
                    self.phase = Phase::Finished;
                    return Action::Done;
                }
                Action::Sleep(Time::new(self.core.think_delay()))
            }
            Phase::Finished => Action::Done,
        }
    }
}

/// Runs one full simulation: generates the broadcast plan for `layout`
/// (striped across `cfg.channels` channels; 1 reproduces the paper's
/// single-channel program bit for bit), drives the client to completion,
/// returns the steady-state outcome.
pub fn simulate(cfg: &SimConfig, layout: &DiskLayout, seed: u64) -> Result<SimOutcome, SimError> {
    let plan = BroadcastPlan::generate(layout, cfg.channels)?;
    simulate_plan(cfg, layout, plan, seed)
}

/// Like [`simulate`] but with a caller-supplied broadcast program (used for
/// the skewed/random baselines and to reuse a generated program across
/// seeds). Always single-channel: the program *is* the one channel.
pub fn simulate_program(
    cfg: &SimConfig,
    layout: &DiskLayout,
    program: BroadcastProgram,
    seed: u64,
) -> Result<SimOutcome, SimError> {
    run_client(ClientModel::new(cfg, layout, program, seed)?).map(|(outcome, _)| outcome)
}

/// Like [`simulate`] but with a caller-supplied multi-channel plan (used to
/// reuse one generated plan across seeds and by the live broker's
/// simulated-twin predictions).
pub fn simulate_plan(
    cfg: &SimConfig,
    layout: &DiskLayout,
    plan: BroadcastPlan,
    seed: u64,
) -> Result<SimOutcome, SimError> {
    run_client(ClientModel::new_plan(cfg, layout, plan, seed)?).map(|(outcome, _)| outcome)
}

/// Like [`simulate_plan`] but also returns the wait-attribution spans the
/// run sampled (empty unless [`bdisk_obs::trace::set_sample_every`] turned
/// sampling on). Tracing reads no randomness, so the outcome is
/// bit-identical to [`simulate_plan`]'s at any sampling rate.
pub fn simulate_plan_traced(
    cfg: &SimConfig,
    layout: &DiskLayout,
    plan: BroadcastPlan,
    seed: u64,
) -> Result<(SimOutcome, Vec<Span>), SimError> {
    run_client(ClientModel::new_plan(cfg, layout, plan, seed)?)
}

fn run_client(client: ClientModel) -> Result<(SimOutcome, Vec<Span>), SimError> {
    let mut executor = ProcessExecutor::new();
    executor.spawn_at(Time::ZERO, client);
    executor.run_to_completion();
    let mut states = executor.into_states();
    let (outcome, spans) = states.remove(0).into_traced_outcome();
    let m = crate::obs::metrics();
    m.runs.inc();
    m.measured_requests.add(outcome.measured_requests);
    m.virtual_time.set_max(outcome.end_time as i64);
    Ok((outcome, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;

    fn small_cfg() -> SimConfig {
        SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 1,
            offset: 0,
            noise: 0.0,
            policy: PolicyKind::Pix,
            requests: 4_000,
            warmup_requests: 200,
            ..SimConfig::default()
        }
    }

    #[test]
    fn flat_disk_response_is_half_db() {
        // Experiment 1 sanity: Δ=0, no cache → response ≈ ServerDBSize/2.
        let layout = DiskLayout::with_delta(&[100, 150, 250], 0).unwrap();
        let out = simulate(&small_cfg(), &layout, 1).unwrap();
        assert!(
            (out.mean_response_time - 250.0).abs() < 15.0,
            "mean {}",
            out.mean_response_time
        );
        assert_eq!(out.measured_requests, 4_000);
    }

    #[test]
    fn simulation_matches_analytic_expectation() {
        // No cache, no noise: the simulator must agree with the closed
        // form within a few percent.
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let zipf = RegionZipf::new(100, 5, 0.95);
        let analytic = bdisk_analytic::expected_response_time(&program, zipf.probs());
        let out = simulate(&small_cfg(), &layout, 42).unwrap();
        let rel = (out.mean_response_time - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "sim {} vs analytic {analytic} ({}%)",
            out.mean_response_time,
            rel * 100.0
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let a = simulate(&small_cfg(), &layout, 9).unwrap();
        let b = simulate(&small_cfg(), &layout, 9).unwrap();
        assert_eq!(a.mean_response_time, b.mean_response_time);
        assert_eq!(a.hit_rate, b.hit_rate);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn different_seeds_differ() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let a = simulate(&small_cfg(), &layout, 1).unwrap();
        let b = simulate(&small_cfg(), &layout, 2).unwrap();
        assert_ne!(a.mean_response_time, b.mean_response_time);
    }

    #[test]
    fn caching_improves_response_time() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let no_cache = simulate(&small_cfg(), &layout, 5).unwrap();
        let cached_cfg = SimConfig {
            cache_size: 50,
            offset: 50,
            ..small_cfg()
        };
        let cached = simulate(&cached_cfg, &layout, 5).unwrap();
        assert!(
            cached.mean_response_time < no_cache.mean_response_time,
            "cached {} vs uncached {}",
            cached.mean_response_time,
            no_cache.mean_response_time
        );
        assert!(cached.hit_rate > 0.3, "hit rate {}", cached.hit_rate);
    }

    #[test]
    fn access_fractions_sum_to_one() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let cfg = SimConfig {
            cache_size: 25,
            offset: 25,
            noise: 0.3,
            ..small_cfg()
        };
        let out = simulate(&cfg, &layout, 3).unwrap();
        let sum: f64 = out.access_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(out.access_fractions.len(), 4); // cache + 3 disks
        assert_eq!(out.access_fractions[0], out.hit_rate);
    }

    #[test]
    fn percentiles_are_ordered() {
        let layout = DiskLayout::with_delta(&[50, 450], 3).unwrap();
        let out = simulate(&small_cfg(), &layout, 8).unwrap();
        assert!(out.p50 <= out.p95);
        assert!(out.p95 <= out.p99);
        assert!(out.p99 <= out.max_response_time + 1.0);
        assert!(out.max_response_time <= layout.total_pages() as f64 * 4.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let layout = DiskLayout::with_delta(&[10, 40], 1).unwrap();
        let cfg = SimConfig {
            access_range: 100, // > 50 pages
            ..SimConfig::default()
        };
        assert!(simulate(&cfg, &layout, 0).is_err());
    }

    #[test]
    fn one_channel_plan_matches_program_path() {
        // The plan-based simulate() must be bit-identical to the original
        // program-based path when channels = 1 (the refactor's contract).
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let cfg = SimConfig {
            cache_size: 30,
            offset: 30,
            noise: 0.2,
            policy: PolicyKind::Lix,
            ..small_cfg()
        };
        let program = BroadcastProgram::generate(&layout).unwrap();
        let via_program = simulate_program(&cfg, &layout, program, 21).unwrap();
        let via_plan = simulate(&cfg, &layout, 21).unwrap();
        assert_eq!(via_plan.mean_response_time, via_program.mean_response_time);
        assert_eq!(via_plan.hit_rate, via_program.hit_rate);
        assert_eq!(via_plan.end_time, via_program.end_time);
        assert_eq!(via_plan.access_fractions, via_program.access_fractions);
    }

    #[test]
    fn more_channels_cut_response_at_zero_switch_cost() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let mut last = f64::INFINITY;
        for channels in [1usize, 2, 4] {
            let cfg = SimConfig {
                channels,
                ..small_cfg()
            };
            let out = simulate(&cfg, &layout, 17).unwrap();
            assert!(
                out.mean_response_time < last,
                "{channels} channels: {} not below {last}",
                out.mean_response_time
            );
            last = out.mean_response_time;
        }
    }

    #[test]
    fn switch_penalty_increases_response() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let free = SimConfig {
            channels: 2,
            switch_slots: 0.0,
            ..small_cfg()
        };
        let costly = SimConfig {
            channels: 2,
            switch_slots: 25.0,
            ..small_cfg()
        };
        let a = simulate(&free, &layout, 29).unwrap();
        let b = simulate(&costly, &layout, 29).unwrap();
        assert!(
            b.mean_response_time > a.mean_response_time,
            "switch penalty should cost: {} vs {}",
            b.mean_response_time,
            a.mean_response_time
        );
    }

    #[test]
    fn sampled_spans_conserve_and_pin_the_outcome_bit_exactly() {
        // Serialize use of the global sampling knob within this binary.
        static KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = KNOB.lock().unwrap_or_else(|e| e.into_inner());

        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let cfg = SimConfig {
            cache_size: 30,
            offset: 30,
            noise: 0.2,
            channels: 2,
            switch_slots: 3.0,
            requests: 1_500,
            ..small_cfg()
        };
        let plan = BroadcastPlan::generate(&layout, cfg.channels).unwrap();

        bdisk_obs::trace::set_sample_every(1);
        let traced = simulate_plan_traced(&cfg, &layout, plan.clone(), 31).unwrap();
        bdisk_obs::trace::set_sample_every(0);
        let (outcome, spans) = traced;

        // Every measured request produced exactly one span, in order.
        assert_eq!(spans.len() as u64, outcome.measured_requests);
        let mut hits = 0u64;
        let mut switched = 0u64;
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(span.index, i as u64);
            assert_eq!(span.client, 31);
            // Conservation, bit-exact: the signed phase sum IS the total.
            assert_eq!(span.phase_sum().to_bits(), span.total.to_bits());
            // The simulator is lossless: no loss, no credit.
            assert_eq!(span.phases[2], 0.0);
            assert_eq!(span.phases[3], 0.0);
            hits += u64::from(span.total == 0.0);
            switched += u64::from(span.phases[1] > 0.0);
        }
        assert!(hits > 0, "the cached config must sample some hits");
        assert!(switched > 0, "two channels must sample some switch waits");

        // Replaying the span totals through the same running-statistics
        // machinery reproduces the outcome's mean bit for bit.
        let mut stats = bdesim::RunningStats::new();
        for span in &spans {
            stats.record(span.total);
        }
        assert_eq!(
            stats.mean().to_bits(),
            outcome.mean_response_time.to_bits(),
            "spans must pin SimOutcome bit-exactly"
        );

        // And sampling itself never perturbs the simulation.
        let plain = simulate_plan(&cfg, &layout, plan, 31).unwrap();
        assert_eq!(plain.mean_response_time, outcome.mean_response_time);
        assert_eq!(plain.end_time, outcome.end_time);
    }

    #[test]
    fn pull_padding_fill_cuts_response_time() {
        // The pull mirror only ever moves an arrival *earlier* (to a
        // padding slot before the periodic airing), so with padding in the
        // schedule the mean must strictly improve; with pull off the knob
        // must be a no-op (the default-config runs above pin that path).
        let layout = DiskLayout::with_delta(&[50, 150, 300], 3).unwrap();
        let plan = BroadcastPlan::generate(&layout, 1).unwrap();
        assert!(
            plan.next_padding_arrival(ChannelId(0), 0.0).is_some(),
            "layout must yield padding slots for this test to bite"
        );
        let push = simulate(&small_cfg(), &layout, 13).unwrap();
        let pulled_cfg = SimConfig {
            pull: true,
            ..small_cfg()
        };
        let pulled = simulate(&pulled_cfg, &layout, 13).unwrap();
        assert!(
            pulled.mean_response_time < push.mean_response_time,
            "pull {} vs push-only {}",
            pulled.mean_response_time,
            push.mean_response_time
        );
        // Determinism holds with the backchannel armed.
        let again = simulate(&pulled_cfg, &layout, 13).unwrap();
        assert_eq!(again.mean_response_time, pulled.mean_response_time);
        assert_eq!(again.end_time, pulled.end_time);
    }

    #[test]
    fn skewed_program_runs_and_pays_penalty() {
        // Drive the simulator with a skewed baseline program and confirm
        // the Bus Stop Paradox shows up end to end.
        let layout = DiskLayout::new(vec![500], vec![1]).unwrap();
        let copies: Vec<u64> = (0..500).map(|p| if p < 50 { 4 } else { 1 }).collect();
        let skewed = bdisk_sched::skewed_program(&copies).unwrap();
        let multi_layout = DiskLayout::new(vec![50, 450], vec![4, 1]).unwrap();
        let multi = BroadcastProgram::generate(&multi_layout).unwrap();

        let cfg = small_cfg();
        let skew_out = simulate_program(&cfg, &layout, skewed, 77).unwrap();
        let multi_out = simulate_program(&cfg, &multi_layout, multi, 77).unwrap();
        assert!(
            multi_out.mean_response_time < skew_out.mean_response_time,
            "multi {} vs skewed {}",
            multi_out.mean_response_time,
            skew_out.mean_response_time
        );
    }
}
