//! # bdisk-sim — the Section 4 simulation model
//!
//! Reimplements the paper's CSIM-based simulator: "a single server that
//! continuously broadcasts pages and a single client that continuously
//! accesses pages from the broadcast and from its cache", measured in
//! broadcast units.
//!
//! The pieces:
//!
//! * [`SimConfig`] — Tables 2–4: `ThinkTime`, `CacheSize`, `AccessRange`,
//!   θ, `RegionSize`, `Offset`, `Noise`, replacement policy, request
//!   counts.
//! * [`ClientModel`] — the client process: draw a logical page from the
//!   region-Zipf distribution, map it to a physical page, probe the cache,
//!   wait on the broadcast on a miss, insert via the replacement policy,
//!   think, repeat. Runs on the `bdesim` process executor.
//! * [`SimOutcome`] — steady-state response time (with a batch-means
//!   confidence interval), cache hit rate, and the access-location
//!   breakdown of Figures 11 and 14.
//! * [`runner`] — multi-seed averaging and parallel parameter sweeps for
//!   the experiment harness.
//!
//! ## Example
//!
//! ```
//! use bdisk_sched::DiskLayout;
//! use bdisk_sim::{simulate, PolicyKind, SimConfig};
//!
//! // A small D5-like configuration, PIX policy.
//! let layout = DiskLayout::with_delta(&[50, 200, 250], 3).unwrap();
//! let cfg = SimConfig {
//!     access_range: 100,
//!     region_size: 5,
//!     cache_size: 50,
//!     offset: 50,
//!     noise: 0.30,
//!     policy: PolicyKind::Pix,
//!     requests: 2_000,
//!     warmup_requests: 500,
//!     ..SimConfig::default()
//! };
//! let out = simulate(&cfg, &layout, 7).unwrap();
//! assert!(out.mean_response_time > 0.0);
//! assert!(out.hit_rate > 0.0 && out.hit_rate < 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod metrics;
pub mod model;
pub mod obs;
pub mod population;
pub mod prefetch;
pub mod runner;
pub mod volatile;

pub use bdisk_cache::PolicyKind;
pub use bdisk_workload::Mapping;
pub use config::{SimConfig, SimError};
pub use core::ClientCore;
pub use metrics::{AccessLocation, Measurements, SimOutcome};
pub use model::{simulate, simulate_plan, simulate_plan_traced, simulate_program, ClientModel};
pub use obs::register_metrics;
pub use population::{simulate_population, ClientSpec, PopulationOutcome};
pub use prefetch::simulate_prefetch;
pub use runner::{
    average_seeds, average_seeds_from_base, seeds_from_base, sweep, AveragedOutcome, SEED_STRIDE,
};
pub use volatile::{simulate_volatile, StalenessStrategy, VolatileConfig, VolatileOutcome};
