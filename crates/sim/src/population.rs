//! Multi-client populations: the zero-sum broadcast tradeoff, directly.
//!
//! Section 3: "tuning the performance of the broadcast is a zero-sum game;
//! improving the broadcast for any one access probability distribution will
//! hurt the performance of clients with different access distributions."
//!
//! The single-client simulator models other clients *implicitly* through
//! `Noise`. This module models them explicitly: each [`ClientSpec`] has its
//! own interest region (where its hot pages sit in the server's database),
//! its own cache, and its own policy. Clients of a broadcast never contend
//! with each other — the channel is shared and read-only — so each client
//! is simulated independently against the same program and the results are
//! aggregated.

use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_workload::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimError};
use crate::metrics::SimOutcome;
use crate::model::ClientModel;
use crate::runner::sweep;

/// One client in a population.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Physical page at which this client's hottest page sits; clients with
    /// different interests point at different parts of the database.
    pub interest_start: usize,
    /// Per-client simulation parameters (cache size, policy, workload…).
    /// `offset`/`noise` inside are ignored — interest placement replaces
    /// them.
    pub config: SimConfig,
    /// Extra per-client noise applied on top of the interest placement.
    pub noise: f64,
}

/// Aggregated population results.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// Outcome of each client, in spec order.
    pub per_client: Vec<SimOutcome>,
    /// Request-weighted mean response time across the population.
    pub mean_response_time: f64,
    /// Worst single-client mean (the fairness headline).
    pub worst_response_time: f64,
    /// Best single-client mean.
    pub best_response_time: f64,
}

/// Simulates every client of the population against the same broadcast
/// program, in parallel.
pub fn simulate_population(
    layout: &DiskLayout,
    specs: &[ClientSpec],
    seed: u64,
    threads: usize,
) -> Result<PopulationOutcome, SimError> {
    assert!(!specs.is_empty(), "population needs at least one client");
    let program = BroadcastProgram::generate(layout)?;
    let db = layout.total_pages();

    let indexed: Vec<(usize, ClientSpec)> = specs.iter().cloned().enumerate().collect();
    let results: Vec<Result<SimOutcome, SimError>> = sweep(indexed, threads, |(k, spec)| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(*k as u64 * 0x9E37_79B9));
        // Rotate the identity so the client's logical page 0 lands on
        // physical page `interest_start`: offset = (db − start) mod db.
        let mut mapping = Mapping::with_offset(db, (db - spec.interest_start % db) % db);
        mapping.apply_noise(layout, spec.noise, &mut rng);
        let client =
            ClientModel::with_mapping(&spec.config, layout, program.clone(), mapping, rng)?;
        let mut ex = bdesim::ProcessExecutor::new();
        ex.spawn_at(bdesim::Time::ZERO, client);
        ex.run_to_completion();
        Ok(ex.into_states().remove(0).into_outcome())
    });

    let mut per_client = Vec::with_capacity(results.len());
    for r in results {
        per_client.push(r?);
    }

    let total_requests: u64 = per_client.iter().map(|o| o.measured_requests).sum();
    let mean_response_time = per_client
        .iter()
        .map(|o| o.mean_response_time * o.measured_requests as f64)
        .sum::<f64>()
        / total_requests.max(1) as f64;
    let worst = per_client
        .iter()
        .map(|o| o.mean_response_time)
        .fold(f64::NEG_INFINITY, f64::max);
    let best = per_client
        .iter()
        .map(|o| o.mean_response_time)
        .fold(f64::INFINITY, f64::min);

    Ok(PopulationOutcome {
        per_client,
        mean_response_time,
        worst_response_time: worst,
        best_response_time: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;

    fn spec(interest_start: usize) -> ClientSpec {
        ClientSpec {
            interest_start,
            config: SimConfig {
                access_range: 100,
                region_size: 5,
                cache_size: 1,
                policy: PolicyKind::Pix,
                requests: 1_500,
                warmup_requests: 100,
                ..SimConfig::default()
            },
            noise: 0.0,
        }
    }

    #[test]
    fn favored_client_beats_unfavored() {
        // Client A's interest is the fast disk; client B's is deep in the
        // slow disk. The zero-sum tradeoff must be visible.
        let layout = DiskLayout::with_delta(&[100, 150, 250], 4).unwrap();
        let out = simulate_population(&layout, &[spec(0), spec(350)], 3, 2).unwrap();
        let a = out.per_client[0].mean_response_time;
        let b = out.per_client[1].mean_response_time;
        assert!(a < b, "favored {a} vs unfavored {b}");
        assert_eq!(out.best_response_time, a);
        assert_eq!(out.worst_response_time, b);
        assert!(out.mean_response_time > a && out.mean_response_time < b);
    }

    #[test]
    fn flat_broadcast_is_fair() {
        // Δ=0: every page equidistant, so interest placement is irrelevant
        // (up to seed noise).
        let layout = DiskLayout::with_delta(&[100, 150, 250], 0).unwrap();
        let out = simulate_population(&layout, &[spec(0), spec(250)], 9, 2).unwrap();
        let a = out.per_client[0].mean_response_time;
        let b = out.per_client[1].mean_response_time;
        let rel = (a - b).abs() / a;
        assert!(rel < 0.08, "flat broadcast should be fair: {a} vs {b}");
    }

    #[test]
    fn caching_rescues_the_unfavored_client() {
        let layout = DiskLayout::with_delta(&[100, 150, 250], 4).unwrap();
        let mut cached = spec(350);
        cached.config.cache_size = 40;
        let out = simulate_population(&layout, &[spec(350), cached], 11, 2).unwrap();
        let uncached_rt = out.per_client[0].mean_response_time;
        let cached_rt = out.per_client[1].mean_response_time;
        assert!(
            cached_rt < uncached_rt,
            "cache should help: {cached_rt} vs {uncached_rt}"
        );
    }

    #[test]
    fn deterministic_population() {
        let layout = DiskLayout::with_delta(&[100, 400], 2).unwrap();
        let specs = vec![spec(0), spec(100), spec(200)];
        let a = simulate_population(&layout, &specs, 5, 3).unwrap();
        let b = simulate_population(&layout, &specs, 5, 1).unwrap();
        for (x, y) in a.per_client.iter().zip(&b.per_client) {
            assert_eq!(x.mean_response_time, y.mean_response_time);
        }
    }
}
