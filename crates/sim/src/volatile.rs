//! Volatile data: broadcast content that changes from cycle to cycle.
//!
//! The paper restricts itself to read-only data but asks (Section 7):
//! *"How would our results have to change if we allowed the broadcast data
//! to change from cycle to cycle? What kinds of changes would be allowed
//! in order to keep the scheme manageable…?"* — and notes earlier that
//! periodicity "may be important for providing correct semantics for
//! updates (e.g., as was done in Datacycle)" and that unused slots "can be
//! used to broadcast additional information such as indexes, updates, or
//! invalidations" (Section 2.2).
//!
//! This module implements the Datacycle-style discipline those remarks
//! sketch:
//!
//! * updates are applied **between major cycles** — within a cycle the
//!   broadcast is a consistent snapshot;
//! * at each cycle boundary the server announces the set of pages updated
//!   during the previous cycle. The announcement rides in the program's
//!   padding slots; we track how often it would overflow them.
//! * clients follow one of two [`StalenessStrategy`]s:
//!   [`StalenessStrategy::Invalidate`] drops updated pages from the cache
//!   (subsequent reads refetch from the broadcast);
//!   [`StalenessStrategy::ServeStale`] keeps serving cached copies and we
//!   *measure* how stale the client's reads get.

use std::collections::HashMap;

use bdisk_cache::{build_policy, PolicyContext};
use bdisk_sched::{BroadcastProgram, DiskLayout, PageId};
use bdisk_workload::{AccessGenerator, Mapping, RegionZipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{SimConfig, SimError};
use crate::metrics::{AccessLocation, Measurements};

/// How a client reacts to server update announcements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessStrategy {
    /// Drop updated pages from the cache at the cycle boundary; the next
    /// read misses and refetches the fresh copy.
    Invalidate,
    /// Ignore announcements; cached copies may serve stale data.
    ServeStale,
}

/// Parameters of the update workload.
#[derive(Debug, Clone)]
pub struct VolatileConfig {
    /// Expected number of pages updated per major cycle.
    pub updates_per_cycle: f64,
    /// Skew of the update distribution: 0 = uniform over all physical
    /// pages; larger values concentrate updates on read-hot pages with
    /// weight ∝ prob(page)^skew — volatile data such as stock quotes is
    /// usually update-hot exactly where it is read-hot.
    pub update_skew: f64,
    /// Client reaction to updates.
    pub strategy: StalenessStrategy,
}

impl Default for VolatileConfig {
    fn default() -> Self {
        Self {
            updates_per_cycle: 50.0,
            update_skew: 0.0,
            strategy: StalenessStrategy::Invalidate,
        }
    }
}

/// Results of a volatile-data run.
#[derive(Debug, Clone)]
pub struct VolatileOutcome {
    /// The standard response-time/hit-rate metrics.
    pub base: crate::metrics::SimOutcome,
    /// Measured reads that returned a stale version (ServeStale only).
    pub stale_reads: u64,
    /// Stale reads as a fraction of measured requests.
    pub stale_read_rate: f64,
    /// Total invalidations announced over the measured run.
    pub invalidations_sent: u64,
    /// Cycle boundaries whose announcement did not fit in the program's
    /// empty (padding) slots, assuming one page id per padding slot.
    pub overflow_cycles: u64,
    /// Cache drops actually performed (Invalidate only).
    pub cache_drops: u64,
}

/// Runs the volatile-data client.
pub fn simulate_volatile(
    cfg: &SimConfig,
    vcfg: &VolatileConfig,
    layout: &DiskLayout,
    seed: u64,
) -> Result<VolatileOutcome, SimError> {
    cfg.validate(layout)?;
    if vcfg.updates_per_cycle < 0.0 || !vcfg.updates_per_cycle.is_finite() {
        return Err(SimError::BadParameter(
            "updates_per_cycle must be non-negative",
        ));
    }
    if vcfg.update_skew < 0.0 || !vcfg.update_skew.is_finite() {
        return Err(SimError::BadParameter("update_skew must be non-negative"));
    }

    let program = BroadcastProgram::generate(layout)?;
    let period = program.period() as f64;
    let db = layout.total_pages();

    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);
    let mapping = Mapping::build(layout, cfg.offset, cfg.noise, &mut rng);
    let probs = mapping.physical_probs(zipf.probs());
    let generator = AccessGenerator::from_probs(zipf.probs(), mapping);

    let ctx = PolicyContext {
        probs: probs.clone(),
        page_disk: (0..db)
            .map(|p| layout.disk_of(PageId(p as u32)) as u16)
            .collect(),
        disk_freqs: layout.freqs().to_vec(),
        alpha: cfg.alpha,
    };
    let mut policy = build_policy(cfg.policy, cfg.cache_size, &ctx);

    // Update-target sampler over physical pages: uniform at skew 0,
    // read-probability-proportional (to the `skew` power) otherwise.
    let update_weights: Vec<f64> = if vcfg.update_skew == 0.0 {
        vec![1.0; db]
    } else {
        let w: Vec<f64> = probs.iter().map(|&p| p.powf(vcfg.update_skew)).collect();
        if w.iter().sum::<f64>() > 0.0 {
            w
        } else {
            vec![1.0; db]
        }
    };
    let update_table = bdisk_workload::AliasTable::new(&update_weights);

    // Version bookkeeping.
    let mut current_version: Vec<u64> = vec![0; db];
    let mut cached_version: HashMap<PageId, u64> = HashMap::new();

    let mut measurements =
        Measurements::new(layout.num_disks(), cfg.batch_size, program.period() + 1);
    let mut stale_reads = 0u64;
    let mut invalidations_sent = 0u64;
    let mut overflow_cycles = 0u64;
    let mut cache_drops = 0u64;

    let mut measuring = false;
    let mut warmup_left = cfg.warmup_requests;
    let mut warmup_seen = 0u64;
    // Under heavy churn the cache may never refill to capacity after each
    // invalidation wave, so the "wait for a full cache" discipline gets a
    // hard cap — steady state is reached by then anyway.
    let warmup_cap = 4 * cfg.warmup_requests.max(1_000);
    let mut measured = 0u64;
    let mut t = 0.0f64;
    let mut cycles_done = 0u64;

    while measured < cfg.requests {
        // 1. Apply updates for every cycle boundary the clock has passed.
        let cycle_now = (t / period) as u64;
        while cycles_done < cycle_now {
            cycles_done += 1;
            // Poisson-ish count: sample each expected update independently
            // (deterministic given the seed).
            let count = sample_count(&mut rng, vcfg.updates_per_cycle);
            if measuring {
                invalidations_sent += count;
                if count as usize > program.empty_slots() {
                    overflow_cycles += 1;
                }
            }
            for _ in 0..count {
                let page = PageId(update_table.sample(&mut rng) as u32);
                current_version[page.index()] += 1;
                if vcfg.strategy == StalenessStrategy::Invalidate && policy.invalidate(page) {
                    cached_version.remove(&page);
                    if measuring {
                        cache_drops += 1;
                    }
                }
            }
        }

        // 2. One client request.
        let page = generator.next_request(&mut rng);
        let (response, loc) = if policy.contains(page) {
            policy.on_hit(page, t);
            if vcfg.strategy == StalenessStrategy::ServeStale {
                let cached = cached_version.get(&page).copied().unwrap_or(0);
                if cached < current_version[page.index()] && measuring {
                    stale_reads += 1;
                }
            }
            (0.0, AccessLocation::Cache)
        } else {
            let arrival = program.next_arrival(page, t);
            let response = arrival - t;
            t = arrival;
            if let Some(victim) = policy.insert(page, t) {
                cached_version.remove(&victim);
            }
            cached_version.insert(page, current_version[page.index()]);
            (response, AccessLocation::Disk(program.disk_of(page)))
        };

        // 3. Measurement bookkeeping (same discipline as the demand model).
        if measuring {
            measurements.record(response, loc);
            measured += 1;
        } else {
            warmup_seen += 1;
            if policy.len() >= policy.capacity() || warmup_seen >= warmup_cap {
                if warmup_left == 0 {
                    measuring = true;
                } else {
                    warmup_left -= 1;
                }
            }
        }

        t += cfg.think_time
            + if cfg.think_jitter > 0.0 {
                rng.random::<f64>() * cfg.think_jitter
            } else {
                0.0
            };
    }

    let base = measurements.finish(t);
    let stale_read_rate = stale_reads as f64 / base.measured_requests.max(1) as f64;
    Ok(VolatileOutcome {
        base,
        stale_reads,
        stale_read_rate,
        invalidations_sent,
        overflow_cycles,
        cache_drops,
    })
}

/// Samples an update count with the given mean: the integer part plus a
/// Bernoulli for the fraction (cheap, deterministic, mean-exact).
fn sample_count<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let whole = mean.floor() as u64;
    let frac = mean - mean.floor();
    whole + u64::from(rng.random::<f64>() < frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;

    fn cfg() -> SimConfig {
        SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 40,
            offset: 40,
            noise: 0.0,
            policy: PolicyKind::Pix,
            requests: 3_000,
            warmup_requests: 500,
            ..SimConfig::default()
        }
    }

    fn layout() -> DiskLayout {
        DiskLayout::with_delta(&[50, 200, 250], 3).unwrap()
    }

    #[test]
    fn zero_update_rate_matches_static_model() {
        let vcfg = VolatileConfig {
            updates_per_cycle: 0.0,
            ..VolatileConfig::default()
        };
        let out = simulate_volatile(&cfg(), &vcfg, &layout(), 7).unwrap();
        assert_eq!(out.stale_reads, 0);
        assert_eq!(out.invalidations_sent, 0);
        assert_eq!(out.cache_drops, 0);
        // And the response time is in the same ballpark as the static run.
        let static_out = crate::model::simulate(&cfg(), &layout(), 7).unwrap();
        let rel = (out.base.mean_response_time - static_out.mean_response_time).abs()
            / static_out.mean_response_time;
        assert!(
            rel < 0.25,
            "volatile {} vs static {}",
            out.base.mean_response_time,
            static_out.mean_response_time
        );
    }

    #[test]
    fn invalidation_costs_response_time() {
        let calm = simulate_volatile(
            &cfg(),
            &VolatileConfig {
                updates_per_cycle: 0.0,
                ..VolatileConfig::default()
            },
            &layout(),
            5,
        )
        .unwrap();
        let churn = simulate_volatile(
            &cfg(),
            &VolatileConfig {
                updates_per_cycle: 40.0,
                update_skew: 0.5,
                strategy: StalenessStrategy::Invalidate,
            },
            &layout(),
            5,
        )
        .unwrap();
        assert!(churn.cache_drops > 0);
        assert!(
            churn.base.mean_response_time > calm.base.mean_response_time,
            "updates must cost: {} vs {}",
            churn.base.mean_response_time,
            calm.base.mean_response_time
        );
        assert_eq!(churn.stale_reads, 0, "invalidation never serves stale data");
    }

    #[test]
    fn serving_stale_is_fast_but_stale() {
        let vcfg_inval = VolatileConfig {
            updates_per_cycle: 40.0,
            update_skew: 0.5,
            strategy: StalenessStrategy::Invalidate,
        };
        let vcfg_stale = VolatileConfig {
            strategy: StalenessStrategy::ServeStale,
            ..vcfg_inval.clone()
        };
        let inval = simulate_volatile(&cfg(), &vcfg_inval, &layout(), 9).unwrap();
        let stale = simulate_volatile(&cfg(), &vcfg_stale, &layout(), 9).unwrap();
        // The freshness/latency tradeoff in one assertion pair:
        assert!(stale.base.mean_response_time <= inval.base.mean_response_time * 1.05);
        assert!(
            stale.stale_reads > 0,
            "heavy churn must surface stale reads"
        );
        assert!(stale.stale_read_rate > 0.0 && stale.stale_read_rate < 1.0);
    }

    #[test]
    fn update_skew_concentrates_damage() {
        // Updates aimed at the (server-)hot pages hurt more than uniform
        // updates at the same rate, because hot pages are the cached ones.
        let uniform = simulate_volatile(
            &cfg(),
            &VolatileConfig {
                updates_per_cycle: 30.0,
                update_skew: 0.0,
                strategy: StalenessStrategy::Invalidate,
            },
            &layout(),
            13,
        )
        .unwrap();
        let skewed = simulate_volatile(
            &cfg(),
            &VolatileConfig {
                updates_per_cycle: 30.0,
                update_skew: 1.0,
                strategy: StalenessStrategy::Invalidate,
            },
            &layout(),
            13,
        )
        .unwrap();
        assert!(
            skewed.cache_drops > uniform.cache_drops,
            "skewed updates should hit the cache more: {} vs {}",
            skewed.cache_drops,
            uniform.cache_drops
        );
    }

    #[test]
    fn overflow_detection() {
        // A tiny program with few padding slots and a huge update rate
        // must overflow its announcement capacity.
        let l = DiskLayout::new(vec![1, 3], vec![2, 1]).unwrap(); // 1 pad slot
        let c = SimConfig {
            access_range: 4,
            region_size: 1,
            cache_size: 2,
            offset: 0,
            requests: 500,
            warmup_requests: 10,
            ..SimConfig::default()
        };
        let out = simulate_volatile(
            &c,
            &VolatileConfig {
                updates_per_cycle: 3.0,
                ..VolatileConfig::default()
            },
            &l,
            3,
        )
        .unwrap();
        assert!(out.overflow_cycles > 0);
    }

    #[test]
    fn rejects_bad_rates() {
        let v = VolatileConfig {
            updates_per_cycle: -1.0,
            ..VolatileConfig::default()
        };
        assert!(simulate_volatile(&cfg(), &v, &layout(), 0).is_err());
    }
}
