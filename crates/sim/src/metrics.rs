//! Steady-state measurements collected by the client model.

use bdesim::{BatchMeans, Counter, Histogram, RunningStats};

/// Where a request was satisfied (the breakdown of Figures 11 and 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLocation {
    /// Served from the client cache.
    Cache,
    /// Waited on the broadcast for a page of this disk (0-based).
    Disk(usize),
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Mean response time over measured requests, in broadcast units.
    pub mean_response_time: f64,
    /// 95% batch-means half-width for the mean (when enough batches ran).
    pub ci_half_width: Option<f64>,
    /// Fraction of measured requests served from the cache.
    pub hit_rate: f64,
    /// Fraction of requests served from each location:
    /// index 0 = cache, 1 = disk 1 (fastest), …, N = disk N.
    pub access_fractions: Vec<f64>,
    /// Response-time median (bucketed to whole broadcast units).
    pub p50: f64,
    /// Response-time 95th percentile.
    pub p95: f64,
    /// Response-time 99th percentile (the tail the mean hides).
    pub p99: f64,
    /// Response-time 99.9th percentile (the extreme tail — where loss
    /// recovery and switch penalties live).
    pub p999: f64,
    /// Largest observed response time.
    pub max_response_time: f64,
    /// Requests measured after warm-up.
    pub measured_requests: u64,
    /// Virtual time at which measurement ended.
    pub end_time: f64,
}

/// Accumulates per-request observations during the measurement phase.
///
/// Public so out-of-crate drivers (the live broadcast engine) can collect
/// with the same machinery and merge client histograms into fleet-wide
/// percentiles.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Running response-time mean/variance.
    pub stats: RunningStats,
    /// Batch-means accumulator for the confidence interval.
    pub batches: BatchMeans,
    /// Unit-bucket response-time histogram (percentile queries).
    pub hist: Histogram,
    /// Access-location tally: bucket 0 = cache, 1.. = disks.
    pub locations: Counter,
}

impl Measurements {
    /// `num_disks` disks plus the cache bucket; histogram sized to hold a
    /// full broadcast period.
    pub fn new(num_disks: usize, batch_size: u64, max_wait: usize) -> Self {
        Self {
            stats: RunningStats::new(),
            batches: BatchMeans::new(batch_size),
            hist: Histogram::new(max_wait.max(1)),
            locations: Counter::new(num_disks + 1),
        }
    }

    /// Records one measured request.
    pub fn record(&mut self, response: f64, location: AccessLocation) {
        self.stats.record(response);
        self.batches.record(response);
        self.hist.record(response);
        match location {
            AccessLocation::Cache => self.locations.bump(0),
            AccessLocation::Disk(d) => self.locations.bump(d + 1),
        }
        let m = crate::obs::metrics();
        m.requests.inc();
        m.response_time.record(response as u64);
    }

    /// Summarizes the run into a [`SimOutcome`].
    pub fn finish(self, end_time: f64) -> SimOutcome {
        let hit_rate = self.locations.fraction(0);
        SimOutcome {
            mean_response_time: self.stats.mean(),
            ci_half_width: self.batches.half_width_95(),
            hit_rate,
            access_fractions: self.locations.fractions(),
            p50: self.hist.quantile(0.5).unwrap_or(0.0),
            p95: self.hist.quantile(0.95).unwrap_or(0.0),
            p99: self.hist.quantile(0.99).unwrap_or(0.0),
            p999: self.hist.quantile(0.999).unwrap_or(0.0),
            max_response_time: self.stats.max().unwrap_or(0.0),
            measured_requests: self.stats.count(),
            end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut m = Measurements::new(3, 2, 100);
        m.record(0.0, AccessLocation::Cache);
        m.record(10.0, AccessLocation::Disk(0));
        m.record(20.0, AccessLocation::Disk(2));
        m.record(30.0, AccessLocation::Disk(2));
        let out = m.finish(123.0);
        assert_eq!(out.measured_requests, 4);
        assert!((out.mean_response_time - 15.0).abs() < 1e-12);
        assert_eq!(out.hit_rate, 0.25);
        assert_eq!(out.access_fractions, vec![0.25, 0.25, 0.0, 0.5]);
        assert_eq!(out.max_response_time, 30.0);
        assert!(out.p50 <= out.p95 && out.p95 <= out.p99 && out.p99 <= out.p999);
        assert_eq!(out.p99, 30.0);
        assert_eq!(out.p999, 30.0);
        assert_eq!(out.end_time, 123.0);
        assert!(out.ci_half_width.is_some());
    }

    #[test]
    fn empty_measurements_are_safe() {
        let m = Measurements::new(2, 10, 50);
        let out = m.finish(0.0);
        assert_eq!(out.measured_requests, 0);
        assert_eq!(out.mean_response_time, 0.0);
        assert_eq!(out.hit_rate, 0.0);
        assert_eq!(out.ci_half_width, None);
    }
}
