//! Simulator telemetry: request throughput, response-time distribution,
//! and run-level progress.
//!
//! The per-request metrics are recorded inside [`crate::Measurements`], so
//! they cover every driver of [`crate::ClientCore`] — the discrete-event
//! simulator *and* the live engine's clients — with one instrumentation
//! point. Run-level metrics (`bd_sim_runs_total`, `bd_sim_virtual_time`)
//! are fed by [`crate::simulate_program`].

use std::sync::OnceLock;

use bdisk_obs::registry::{self, Counter, Gauge, Histogram, RESPONSE_BOUNDS};

/// Simulator-layer metric handles.
pub(crate) struct SimMetrics {
    /// `bd_sim_requests_total`
    pub requests: &'static Counter,
    /// `bd_sim_response_time`
    pub response_time: &'static Histogram,
    /// `bd_sim_runs_total`
    pub runs: &'static Counter,
    /// `bd_sim_measured_requests_total`
    pub measured_requests: &'static Counter,
    /// `bd_sim_virtual_time`
    pub virtual_time: &'static Gauge,
}

pub(crate) fn metrics() -> &'static SimMetrics {
    static M: OnceLock<SimMetrics> = OnceLock::new();
    M.get_or_init(|| SimMetrics {
        requests: registry::counter(
            "bd_sim_requests_total",
            "Measured client requests recorded (simulated and live)",
        ),
        response_time: registry::histogram(
            "bd_sim_response_time",
            "Measured response times in broadcast units",
            RESPONSE_BOUNDS,
        ),
        runs: registry::counter(
            "bd_sim_runs_total",
            "Completed discrete-event simulation runs",
        ),
        measured_requests: registry::counter(
            "bd_sim_measured_requests_total",
            "Requests measured by completed simulation runs",
        ),
        virtual_time: registry::gauge(
            "bd_sim_virtual_time",
            "Largest virtual end time reached by any completed run, in broadcast units",
        ),
    })
}

/// Eagerly registers the simulator metrics (idempotent); call when starting
/// a metrics server so `/metrics` shows the `bd_sim_*` family before
/// traffic.
pub fn register_metrics() {
    let _ = metrics();
}
