//! Simulation parameters (Tables 2, 3 and 4 of the paper).

use bdisk_cache::PolicyKind;
use bdisk_sched::{DiskLayout, SchedError};

/// All client- and server-side parameters of one simulation run.
///
/// Defaults are the paper's Table 4 settings (the disk layout itself is
/// passed separately so sweeps can share one config across layouts).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Pages the client actually accesses (`AccessRange`, paper: 1000).
    pub access_range: usize,
    /// Pages per uniform-probability region (`RegionSize`, paper: 50).
    pub region_size: usize,
    /// Zipf skew parameter (θ, paper: 0.95).
    pub theta: f64,
    /// Broadcast units between the completion of one request and the next
    /// (`ThinkTime`, paper: 2.0).
    pub think_time: f64,
    /// Extra uniform-random think time in `[0, think_jitter)` added to each
    /// think. The paper uses a fixed think time; a jitter of ~1 broadcast
    /// unit removes phase-lattice artifacts when the broadcast period is
    /// tiny (e.g. the 3-page Table 1 programs).
    pub think_jitter: f64,
    /// Client cache capacity in pages (`CacheSize`; the paper's "no
    /// caching" setting is 1 — the client still holds the page it just
    /// fetched; 0 disables retention entirely).
    pub cache_size: usize,
    /// Pages shifted from the fastest disk to the tail of the slowest
    /// (`Offset`; the paper uses `CacheSize` when caching is on).
    pub offset: usize,
    /// Per-page probability of a mapping swap (`Noise`, 0.0–1.0).
    pub noise: f64,
    /// Cache replacement policy.
    pub policy: PolicyKind,
    /// Requests measured after warm-up (paper: 15 000 or more).
    pub requests: u64,
    /// Requests discarded after the cache fills before measurement starts.
    pub warmup_requests: u64,
    /// EWMA constant for LIX/L (paper: 0.25).
    pub alpha: f64,
    /// Batch size for the batch-means confidence interval.
    pub batch_size: u64,
    /// Bytes per page on the wire (`PageSize`, paper Table 2). The
    /// simulator's timing is payload-agnostic — a slot is one broadcast
    /// unit whatever its size — but the live broker uses this to size the
    /// real page payloads it ships, so it lives here with the other
    /// Table 2 knobs. 0 broadcasts bare (metadata-only) frames.
    pub page_size: usize,
    /// Number of broadcast channels the layout is striped across
    /// (`BroadcastPlan` generalization; 1 = the paper's single channel).
    pub channels: usize,
    /// Retune penalty in broadcast units a single-tuner client pays when a
    /// cache miss sends it to a *different* channel: after deciding to
    /// switch at time `t`, the earliest slot it can receive on the target
    /// channel starts at `⌊t⌋ + 1 + switch_slots`. Irrelevant when
    /// `channels == 1` (the client never switches).
    pub switch_slots: f64,
    /// Mirror of the broker's upstream backchannel in padding-fill mode
    /// (`PullMode::PaddingFill` with the client's pull requests armed):
    /// a cache miss also asks the server for the page, and the server
    /// services the request at the first empty padding slot of the page's
    /// home channel once the request is eligible. The effective arrival is
    /// then the *earlier* of the periodic airing and the pull service —
    /// the same arithmetic the live client and the broker's `SlotArbiter`
    /// execute, which is what keeps a pull-enabled live run bit-identical
    /// to its simulated twin. Off by default (the paper's pure-push model).
    pub pull: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            access_range: 1000,
            region_size: 50,
            theta: 0.95,
            think_time: 2.0,
            think_jitter: 0.0,
            cache_size: 1,
            offset: 0,
            noise: 0.0,
            policy: PolicyKind::Pix,
            requests: 15_000,
            warmup_requests: 3_000,
            alpha: 0.25,
            batch_size: 500,
            page_size: 64,
            channels: 1,
            switch_slots: 0.0,
            pull: false,
        }
    }
}

impl SimConfig {
    /// Validates the configuration against a disk layout.
    pub fn validate(&self, layout: &DiskLayout) -> Result<(), SimError> {
        let db = layout.total_pages();
        if self.access_range == 0 || self.access_range > db {
            return Err(SimError::BadAccessRange {
                access_range: self.access_range,
                db_size: db,
            });
        }
        if self.region_size == 0 {
            return Err(SimError::BadParameter("region_size must be positive"));
        }
        if self.offset >= db {
            return Err(SimError::BadParameter(
                "offset must be smaller than the database",
            ));
        }
        if self.cache_size > self.access_range {
            // The client only ever touches access_range distinct pages, so
            // a larger cache could never fill and warm-up would not end.
            return Err(SimError::BadParameter(
                "cache_size must not exceed access_range",
            ));
        }
        if !(0.0..=1.0).contains(&self.noise) {
            return Err(SimError::BadParameter("noise must be within [0, 1]"));
        }
        if self.think_time < 0.0 || !self.think_time.is_finite() {
            return Err(SimError::BadParameter("think_time must be non-negative"));
        }
        if self.think_jitter < 0.0 || !self.think_jitter.is_finite() {
            return Err(SimError::BadParameter("think_jitter must be non-negative"));
        }
        if self.requests == 0 {
            return Err(SimError::BadParameter("requests must be positive"));
        }
        if self.batch_size == 0 {
            return Err(SimError::BadParameter("batch_size must be positive"));
        }
        if self.channels == 0 {
            return Err(SimError::BadParameter("channels must be positive"));
        }
        if self.switch_slots < 0.0 || !self.switch_slots.is_finite() {
            return Err(SimError::BadParameter("switch_slots must be non-negative"));
        }
        Ok(())
    }
}

/// Errors from configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `AccessRange` must be positive and no larger than `ServerDBSize`.
    BadAccessRange {
        /// Offending access range.
        access_range: usize,
        /// Total pages in the broadcast.
        db_size: usize,
    },
    /// A parameter failed validation.
    BadParameter(&'static str),
    /// Broadcast program generation failed.
    Sched(SchedError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadAccessRange {
                access_range,
                db_size,
            } => write!(
                f,
                "access range {access_range} must be in 1..={db_size} (ServerDBSize)"
            ),
            SimError::BadParameter(msg) => f.write_str(msg),
            SimError::Sched(e) => write!(f, "schedule generation failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for SimError {
    fn from(e: SchedError) -> Self {
        SimError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> DiskLayout {
        DiskLayout::with_delta(&[50, 200, 250], 2).unwrap()
    }

    #[test]
    fn defaults_match_table4() {
        let c = SimConfig::default();
        assert_eq!(c.access_range, 1000);
        assert_eq!(c.region_size, 50);
        assert_eq!(c.theta, 0.95);
        assert_eq!(c.think_time, 2.0);
        assert_eq!(c.alpha, 0.25);
        assert!(c.requests >= 15_000);
    }

    #[test]
    fn default_validates_against_paper_layout() {
        let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
        SimConfig::default().validate(&layout).unwrap();
    }

    #[test]
    fn rejects_access_range_beyond_db() {
        let cfg = SimConfig {
            access_range: 1000,
            ..SimConfig::default()
        };
        let err = cfg.validate(&layout()).unwrap_err();
        assert!(matches!(err, SimError::BadAccessRange { db_size: 500, .. }));
    }

    #[test]
    fn rejects_bad_parameters() {
        let base = SimConfig {
            access_range: 100,
            ..SimConfig::default()
        };
        for (name, cfg) in [
            (
                "offset",
                SimConfig {
                    offset: 500,
                    ..base.clone()
                },
            ),
            (
                "jitter",
                SimConfig {
                    think_jitter: -0.5,
                    ..base.clone()
                },
            ),
            (
                "noise",
                SimConfig {
                    noise: 1.5,
                    ..base.clone()
                },
            ),
            (
                "think",
                SimConfig {
                    think_time: -1.0,
                    ..base.clone()
                },
            ),
            (
                "requests",
                SimConfig {
                    requests: 0,
                    ..base.clone()
                },
            ),
            (
                "region",
                SimConfig {
                    region_size: 0,
                    ..base.clone()
                },
            ),
            (
                "batch",
                SimConfig {
                    batch_size: 0,
                    ..base.clone()
                },
            ),
            (
                "channels",
                SimConfig {
                    channels: 0,
                    ..base.clone()
                },
            ),
            (
                "switch",
                SimConfig {
                    switch_slots: -1.0,
                    ..base.clone()
                },
            ),
        ] {
            assert!(cfg.validate(&layout()).is_err(), "{name} should fail");
        }
    }

    #[test]
    fn error_display() {
        let e = SimError::BadAccessRange {
            access_range: 9,
            db_size: 5,
        };
        assert!(e.to_string().contains("ServerDBSize"));
        let e: SimError = SchedError::NoDisks.into();
        assert!(e.to_string().contains("schedule generation failed"));
    }

    #[test]
    fn configs_compare_for_sweep_dedup() {
        let a = SimConfig::default();
        let mut b = SimConfig::default();
        assert_eq!(a, b);
        b.noise = 0.3;
        assert_ne!(a, b);
    }
}
