//! The client's protocol state, shared between the discrete-event
//! simulator ([`crate::ClientModel`]) and the live broadcast engine's
//! clients (`bdisk-broker`).
//!
//! Both drivers execute the same Section 4.1 loop — draw a page, probe the
//! cache, wait on the broadcast on a miss, think, repeat — they only differ
//! in *how* they wait: the simulator jumps the virtual clock to the page's
//! next arrival, while a live client watches real frames go by. Keeping the
//! request stream, cache policy, warm-up accounting, and measurement logic
//! in one struct guarantees that, for the same seed and configuration, a
//! live client issues bit-identical requests to its simulated twin — which
//! is what lets `repro live` validate the engine against simulator
//! predictions.

use bdisk_cache::{build_policy, CachePolicy, PolicyContext};
use bdisk_sched::{BroadcastPlan, BroadcastProgram, DiskLayout, PageId};
use bdisk_workload::{AccessGenerator, Mapping, RegionZipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimError};
use crate::metrics::{AccessLocation, Measurements, SimOutcome};

/// Everything about a client except how it waits for the broadcast: the
/// seeded request stream, the replacement policy, warm-up state, and the
/// steady-state measurements.
pub struct ClientCore {
    generator: AccessGenerator,
    policy: Box<dyn CachePolicy>,
    rng: StdRng,
    think_time: f64,
    think_jitter: f64,
    /// Requests still to discard once the cache is full.
    warmup_left: u64,
    /// True once measurement has begun.
    measuring: bool,
    measured_target: u64,
    measurements: Measurements,
}

impl ClientCore {
    /// Builds the core for `cfg` against a generated broadcast program,
    /// deriving the Offset/Noise mapping from the config.
    ///
    /// The construction order — seed the generator, build the mapping,
    /// then the policy and access generator — is part of the determinism
    /// contract: every driver that seeds with the same value consumes
    /// random draws in the same sequence.
    pub fn new(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: &BroadcastProgram,
        seed: u64,
    ) -> Result<Self, SimError> {
        cfg.validate(layout)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::build(layout, cfg.offset, cfg.noise, &mut rng);
        let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);
        Self::with_workload(cfg, layout, program, zipf.probs(), mapping, rng)
    }

    /// Like [`ClientCore::new`] but against a multi-channel
    /// [`BroadcastPlan`]. The construction consumes random draws in exactly
    /// the same order, so a 1-channel plan yields a core bit-identical to
    /// [`ClientCore::new`] with the wrapped program.
    pub fn new_plan(
        cfg: &SimConfig,
        layout: &DiskLayout,
        plan: &BroadcastPlan,
        seed: u64,
    ) -> Result<Self, SimError> {
        cfg.validate(layout)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::build(layout, cfg.offset, cfg.noise, &mut rng);
        let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);
        Self::build(cfg, layout, plan.max_period(), zipf.probs(), mapping, rng)
    }

    /// Builds the core with an explicit logical-page probability vector and
    /// mapping (used by the population model and custom workloads).
    pub fn with_workload(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: &BroadcastProgram,
        logical_probs: &[f64],
        mapping: Mapping,
        rng: StdRng,
    ) -> Result<Self, SimError> {
        Self::build(cfg, layout, program.period(), logical_probs, mapping, rng)
    }

    /// Like [`ClientCore::with_workload`] but against a multi-channel plan.
    pub fn with_workload_plan(
        cfg: &SimConfig,
        layout: &DiskLayout,
        plan: &BroadcastPlan,
        logical_probs: &[f64],
        mapping: Mapping,
        rng: StdRng,
    ) -> Result<Self, SimError> {
        Self::build(cfg, layout, plan.max_period(), logical_probs, mapping, rng)
    }

    /// Shared construction: the wait horizon is the longest period any
    /// channel can make a request wait (sizes the response histogram).
    ///
    /// Note the policy context speaks *aggregate* cross-channel frequency:
    /// PIX/LIX's `X` is the page's disk-level relative frequency from the
    /// layout, which striping preserves on every channel (a page's airings
    /// per unit time scale uniformly with the channel count).
    fn build(
        cfg: &SimConfig,
        layout: &DiskLayout,
        max_period: usize,
        logical_probs: &[f64],
        mapping: Mapping,
        rng: StdRng,
    ) -> Result<Self, SimError> {
        cfg.validate(layout)?;

        let ctx = PolicyContext {
            probs: mapping.physical_probs(logical_probs),
            page_disk: (0..layout.total_pages())
                .map(|p| layout.disk_of(PageId(p as u32)) as u16)
                .collect(),
            disk_freqs: layout.freqs().to_vec(),
            alpha: cfg.alpha,
        };
        let policy = build_policy(cfg.policy, cfg.cache_size, &ctx);
        let generator = AccessGenerator::from_probs(logical_probs, mapping);
        let measurements = Measurements::new(layout.num_disks(), cfg.batch_size, max_period + 1);

        Ok(Self {
            generator,
            policy,
            rng,
            think_time: cfg.think_time,
            think_jitter: cfg.think_jitter,
            warmup_left: cfg.warmup_requests,
            measuring: false,
            measured_target: cfg.requests,
            measurements,
        })
    }

    /// Draws the next requested page from the seeded access stream.
    pub fn next_request(&mut self) -> PageId {
        self.generator.next_request(&mut self.rng)
    }

    /// True when `page` is cache-resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.policy.contains(page)
    }

    /// Records a cache hit on `page` at time `now`.
    pub fn on_hit(&mut self, page: PageId, now: f64) {
        self.policy.on_hit(page, now);
    }

    /// Inserts `page` (just received from the broadcast) at time `now`.
    pub fn insert(&mut self, page: PageId, now: f64) {
        self.policy.insert(page, now);
    }

    /// The post-request sleep: fixed think time plus optional jitter.
    /// Draws from the RNG only when jitter is enabled (determinism
    /// contract: jitter-free configs consume no extra draws).
    pub fn think_delay(&mut self) -> f64 {
        let jitter = if self.think_jitter > 0.0 {
            use rand::Rng;
            self.rng.random::<f64>() * self.think_jitter
        } else {
            0.0
        };
        self.think_time + jitter
    }

    /// Handles one completed request; returns `true` when the measurement
    /// target has been reached and the run is done.
    pub fn complete_request(&mut self, response: f64, loc: AccessLocation) -> bool {
        if self.measuring {
            self.measurements.record(response, loc);
            if self.measurements.stats.count() >= self.measured_target {
                return true;
            }
        } else {
            // Warm-up: wait for the cache to fill, then discard a further
            // warmup_left requests so the policies reach steady state.
            let cache_full = self.policy.len() >= self.policy.capacity();
            if cache_full {
                if self.warmup_left == 0 {
                    self.measuring = true;
                } else {
                    self.warmup_left -= 1;
                }
            }
        }
        false
    }

    /// True once warm-up has ended and requests are being measured.
    pub fn measuring(&self) -> bool {
        self.measuring
    }

    /// Requests measured so far — equivalently, the measured-request index
    /// the next completed request will be recorded under. Drivers use this
    /// as the deterministic sampling key for wait-attribution spans: only
    /// one request is in flight per client and [`ClientCore::measuring`]
    /// flips only inside [`ClientCore::complete_request`], so the index
    /// seen at request-issue time is the index the request completes with.
    pub fn measured_count(&self) -> u64 {
        self.measurements.stats.count()
    }

    /// The replacement policy, for inspection (e.g. invalidations).
    pub fn policy_mut(&mut self) -> &mut dyn CachePolicy {
        &mut *self.policy
    }

    /// Re-scores the cache under a new policy context — the broadcast plan
    /// hot-swapped and page probabilities/disks/frequencies moved with it.
    /// Residency is preserved; only future eviction ranking changes. See
    /// [`CachePolicy::rescore`].
    pub fn rescore(&mut self, ctx: &PolicyContext) {
        self.policy.rescore(ctx);
    }

    /// Replaces the logical→physical page mapping mid-run (workload
    /// drift). Consumes no random draws: the logical request stream
    /// continues bit-identically, only its physical destinations move.
    pub fn set_mapping(&mut self, mapping: Mapping) {
        self.generator.set_mapping(mapping);
    }

    /// The measurements collected so far.
    pub fn measurements(&self) -> &Measurements {
        &self.measurements
    }

    /// Consumes the core, producing the run's outcome together with the
    /// raw measurements (callers aggregating across clients merge the
    /// latter for fleet-wide percentiles).
    pub fn finish(self, end_time: f64) -> (SimOutcome, Measurements) {
        let measurements = self.measurements.clone();
        (self.measurements.finish(end_time), measurements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;

    fn setup() -> (SimConfig, DiskLayout, BroadcastProgram) {
        let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let cfg = SimConfig {
            access_range: 50,
            region_size: 5,
            cache_size: 10,
            offset: 10,
            noise: 0.1,
            policy: PolicyKind::Lix,
            requests: 50,
            warmup_requests: 5,
            ..SimConfig::default()
        };
        (cfg, layout, program)
    }

    #[test]
    fn same_seed_same_request_stream() {
        let (cfg, layout, program) = setup();
        let mut a = ClientCore::new(&cfg, &layout, &program, 7).unwrap();
        let mut b = ClientCore::new(&cfg, &layout, &program, 7).unwrap();
        for _ in 0..200 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn warmup_then_measure_then_done() {
        let (cfg, layout, program) = setup();
        let mut core = ClientCore::new(&cfg, &layout, &program, 1).unwrap();
        assert!(!core.measuring());
        let mut t = 0.0;
        let mut done = false;
        let mut completions = 0u64;
        while !done {
            t += 1.0;
            let page = core.next_request();
            if core.contains(page) {
                core.on_hit(page, t);
                done = core.complete_request(0.0, AccessLocation::Cache);
            } else {
                core.insert(page, t);
                done = core.complete_request(3.0, AccessLocation::Disk(0));
            }
            completions += 1;
            assert!(completions < 100_000, "run never finished");
        }
        assert!(core.measuring());
        let (outcome, measurements) = core.finish(t);
        assert_eq!(outcome.measured_requests, 50);
        assert_eq!(measurements.stats.count(), 50);
        // Warm-up discarded: total completions exceed measured requests by
        // at least cache-fill + warmup_requests.
        assert!(completions >= 50 + 10 + 5);
    }

    #[test]
    fn think_without_jitter_is_fixed_and_draw_free() {
        let (cfg, layout, program) = setup();
        let mut a = ClientCore::new(&cfg, &layout, &program, 3).unwrap();
        let mut b = ClientCore::new(&cfg, &layout, &program, 3).unwrap();
        assert_eq!(a.think_delay(), cfg.think_time);
        // a drew nothing extra: both streams still aligned.
        for _ in 0..50 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }
}
