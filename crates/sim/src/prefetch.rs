//! Opportunistic prefetching from the broadcast — the paper's first
//! future-work item (Section 7): "The client cache manager would use the
//! broadcast as a way to opportunistically increase the temperature of its
//! cache."
//!
//! The prefetcher implemented here uses the **PT metric** explored in the
//! authors' follow-up work on broadcast-disk prefetching: at the moment a
//! page `x` goes by on the broadcast, compute
//!
//! ```text
//! pt(x, t) = p(x) · (time until x is next broadcast after t)
//! ```
//!
//! For the passing page this is `p(x) · gap(x)` (its next copy is a full
//! gap away); for a cached page it *shrinks* as the page's next broadcast
//! approaches. If the passing page's `pt` exceeds the smallest `pt` among
//! residents, they swap. Intuitively, `pt` is the expected response-time
//! cost that caching the page saves right now; two equally hot pages on
//! the same disk "tag-team" the single cache slot, each resident during
//! the half-cycle when it would be expensive to miss.
//!
//! Because a demand fetch is also a broadcast passage, the same rule
//! decides whether a demand-fetched page is worth caching — the prefetch
//! client subsumes demand caching.
//!
//! Unlike the demand client (which skips between events), this client must
//! observe *every* slot, so the simulation walks the broadcast slot by
//! slot; use smaller request counts than the demand experiments.

use std::collections::HashMap;

use bdisk_sched::{BroadcastProgram, DiskLayout, PageId, Slot};
use bdisk_workload::{AccessGenerator, Mapping, RegionZipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{SimConfig, SimError};
use crate::metrics::{AccessLocation, Measurements, SimOutcome};

/// Runs the prefetching client: identical workload and mapping to
/// [`crate::simulate`], but the cache is managed by PT prefetching instead
/// of a demand replacement policy (`cfg.policy` is ignored).
pub fn simulate_prefetch(
    cfg: &SimConfig,
    layout: &DiskLayout,
    seed: u64,
) -> Result<SimOutcome, SimError> {
    cfg.validate(layout)?;
    if cfg.cache_size == 0 {
        return Err(SimError::BadParameter(
            "prefetching needs a cache (cache_size >= 1)",
        ));
    }
    let program = BroadcastProgram::generate(layout)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = RegionZipf::new(cfg.access_range, cfg.region_size, cfg.theta);
    let mapping = Mapping::build(layout, cfg.offset, cfg.noise, &mut rng);
    let probs = mapping.physical_probs(zipf.probs());
    let generator = AccessGenerator::from_probs(zipf.probs(), mapping);

    let mut cache: HashMap<PageId, ()> = HashMap::with_capacity(cfg.cache_size);
    let mut measurements =
        Measurements::new(layout.num_disks(), cfg.batch_size, program.period() + 1);

    // Request state.
    let mut next_request: f64 = 0.0;
    let mut pending: Option<(PageId, f64)> = None; // (page, requested_at)
    let mut measuring = false;
    let mut warmup_left = cfg.warmup_requests;
    let mut measured: u64 = 0;
    let mut end_time = 0.0;

    let period = program.period();
    let mut slot_idx: usize = 0;
    // Hard stop so a mis-configured run cannot spin forever.
    let max_slots = (cfg.requests + cfg.warmup_requests + 10)
        * ((cfg.think_time + cfg.think_jitter).ceil() as u64 + period as u64 + 2);

    let complete = |response: f64,
                    loc: AccessLocation,
                    now: f64,
                    cache_len: usize,
                    measuring: &mut bool,
                    warmup_left: &mut u64,
                    measurements: &mut Measurements,
                    measured: &mut u64,
                    end_time: &mut f64| {
        if *measuring {
            measurements.record(response, loc);
            *measured += 1;
            if *measured >= cfg.requests {
                *end_time = now;
                return true;
            }
        } else if cache_len >= cfg.cache_size {
            if *warmup_left == 0 {
                *measuring = true;
            } else {
                *warmup_left -= 1;
            }
        }
        false
    };

    'sim: for tick in 0..max_slots {
        let t = tick as f64;
        // 1. Issue any requests that fire before the next slot boundary,
        //    unless one is already waiting on the broadcast.
        while pending.is_none() && next_request < t + 1.0 {
            let tr = next_request;
            let page = generator.next_request(&mut rng);
            if cache.contains_key(&page) {
                if complete(
                    0.0,
                    AccessLocation::Cache,
                    tr,
                    cache.len(),
                    &mut measuring,
                    &mut warmup_left,
                    &mut measurements,
                    &mut measured,
                    &mut end_time,
                ) {
                    break 'sim;
                }
                next_request = tr + cfg.think_time + jitter(&mut rng, cfg.think_jitter);
            } else {
                pending = Some((page, tr));
            }
        }

        // 2. The page broadcast in this slot.
        let Slot::Page(x) = program.slots()[slot_idx] else {
            slot_idx = (slot_idx + 1) % period;
            continue;
        };
        slot_idx = (slot_idx + 1) % period;

        // 2a. Deliver a pending demand request.
        if let Some((want, requested_at)) = pending {
            if want == x && requested_at <= t {
                let disk = program.disk_of(x);
                pending = None;
                if complete(
                    t - requested_at,
                    AccessLocation::Disk(disk),
                    t,
                    cache.len(),
                    &mut measuring,
                    &mut warmup_left,
                    &mut measurements,
                    &mut measured,
                    &mut end_time,
                ) {
                    break 'sim;
                }
                next_request = t + cfg.think_time + jitter(&mut rng, cfg.think_jitter);
            }
        }

        // 2b. The PT prefetch decision for the passing page.
        if !cache.contains_key(&x) {
            let pt_x = probs[x.index()] * gap_of(&program, x);
            if pt_x > 0.0 {
                if cache.len() < cfg.cache_size {
                    cache.insert(x, ());
                } else {
                    // Evict the resident with the smallest current pt.
                    let (victim, pt_min) = cache
                        .keys()
                        .map(|&r| {
                            let pt = probs[r.index()] * (program.next_arrival(r, t + 1.0) - t);
                            (r, pt)
                        })
                        .min_by(|a, b| {
                            a.1.partial_cmp(&b.1)
                                .expect("finite pt")
                                .then(a.0.cmp(&b.0))
                        })
                        .expect("cache is full");
                    if pt_x > pt_min {
                        cache.remove(&victim);
                        cache.insert(x, ());
                    }
                }
            }
        }
    }

    if pending.is_some() && measured < cfg.requests {
        return Err(SimError::BadParameter(
            "prefetch simulation hit its slot budget before finishing",
        ));
    }
    Ok(measurements.finish(end_time))
}

fn jitter<R: Rng>(rng: &mut R, amount: f64) -> f64 {
    if amount > 0.0 {
        rng.random::<f64>() * amount
    } else {
        0.0
    }
}

fn gap_of(program: &BroadcastProgram, page: PageId) -> f64 {
    program
        .gap(page)
        .unwrap_or(program.period() as f64 / program.frequency(page) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::simulate;
    use bdisk_cache::PolicyKind;

    fn cfg(cache: usize, noise: f64, requests: u64) -> SimConfig {
        SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: cache,
            offset: 0,
            noise,
            policy: PolicyKind::Pix,
            requests,
            warmup_requests: 300,
            ..SimConfig::default()
        }
    }

    #[test]
    fn prefetch_beats_demand_pix() {
        // The tag-team effect: with the same cache size, PT prefetching
        // must not lose to demand PIX caching, and typically wins clearly.
        let layout = DiskLayout::with_delta(&[50, 200, 250], 3).unwrap();
        let c = cfg(50, 0.0, 2_000);
        let demand = simulate(&c, &layout, 5).unwrap();
        let prefetch = simulate_prefetch(&c, &layout, 5).unwrap();
        assert!(
            prefetch.mean_response_time < demand.mean_response_time,
            "prefetch {} vs demand {}",
            prefetch.mean_response_time,
            demand.mean_response_time
        );
    }

    #[test]
    fn prefetch_hit_rate_exceeds_demand() {
        let layout = DiskLayout::with_delta(&[50, 200, 250], 2).unwrap();
        // Enough requests that the hit-rate gap reflects the policies, not
        // sampling noise from any particular RNG stream.
        let c = cfg(25, 0.3, 10_000);
        let demand = simulate(&c, &layout, 9).unwrap();
        let prefetch = simulate_prefetch(&c, &layout, 9).unwrap();
        // PT optimizes response time, not hit rate, so it may trade a few
        // points of hit rate for shorter misses; at this operating point
        // the converged deficit is ~2.3%, so allow up to 4%.
        assert!(
            prefetch.hit_rate >= demand.hit_rate - 0.04,
            "prefetch hit {} vs demand {}",
            prefetch.hit_rate,
            demand.hit_rate
        );
    }

    #[test]
    fn prefetch_is_deterministic() {
        let layout = DiskLayout::with_delta(&[50, 200, 250], 2).unwrap();
        let c = cfg(25, 0.15, 1_000);
        let a = simulate_prefetch(&c, &layout, 3).unwrap();
        let b = simulate_prefetch(&c, &layout, 3).unwrap();
        assert_eq!(a.mean_response_time, b.mean_response_time);
        assert_eq!(a.hit_rate, b.hit_rate);
    }

    #[test]
    fn rejects_zero_cache() {
        let layout = DiskLayout::with_delta(&[50, 200, 250], 2).unwrap();
        let c = cfg(0, 0.0, 100);
        assert!(simulate_prefetch(&c, &layout, 1).is_err());
    }

    #[test]
    fn outcome_fields_consistent() {
        let layout = DiskLayout::with_delta(&[50, 200, 250], 3).unwrap();
        let out = simulate_prefetch(&cfg(25, 0.0, 1_000), &layout, 7).unwrap();
        assert_eq!(out.measured_requests, 1_000);
        let sum: f64 = out.access_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(out.hit_rate > 0.0);
    }
}
