//! Multi-seed averaging and parallel parameter sweeps.
//!
//! Every figure in the paper is a sweep over one knob (Δ or Noise) for a
//! handful of configurations. The runner executes the grid, averaging each
//! point over several seeds, using scoped threads (`crossbeam`) so sweeps
//! scale with the host's cores while staying deterministic per point.

use bdisk_sched::{BroadcastProgram, DiskLayout};

use crate::config::{SimConfig, SimError};
use crate::metrics::SimOutcome;
use crate::model::simulate_program;

/// Seed-averaged result of one sweep point.
#[derive(Debug, Clone)]
pub struct AveragedOutcome {
    /// Mean of the per-seed mean response times.
    pub mean_response_time: f64,
    /// Min and max of the per-seed means (spread indicator).
    pub spread: (f64, f64),
    /// Mean hit rate.
    pub hit_rate: f64,
    /// Mean access fractions (cache, disk 1, …).
    pub access_fractions: Vec<f64>,
    /// Individual per-seed outcomes.
    pub per_seed: Vec<SimOutcome>,
}

/// Runs `cfg` over every seed and averages.
///
/// The broadcast program is generated once and shared across seeds (it is
/// deterministic given the layout); the mapping, workload, and policy state
/// are re-derived per seed inside the model.
pub fn average_seeds(
    cfg: &SimConfig,
    layout: &DiskLayout,
    seeds: &[u64],
) -> Result<AveragedOutcome, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let program = BroadcastProgram::generate(layout)?;
    let mut per_seed = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        per_seed.push(simulate_program(cfg, layout, program.clone(), seed)?);
    }
    Ok(combine(per_seed))
}

/// Derives `count` simulation seeds from one explicit base seed.
///
/// The derivation is a fixed affine step (`base + i * SEED_STRIDE`), so a
/// whole multi-seed sweep is reproducible bit-for-bit from the single
/// `base` recorded in the output — rerunning with the same base replays
/// every client's request stream identically.
pub fn seeds_from_base(base: u64, count: usize) -> Vec<u64> {
    assert!(count > 0, "need at least one seed");
    (0..count as u64)
        .map(|i| base.wrapping_add(i.wrapping_mul(SEED_STRIDE)))
        .collect()
}

/// Stride between derived seeds; odd and large so derived seeds never
/// collide for any realistic seed count.
pub const SEED_STRIDE: u64 = 101;

/// Runs `cfg` over `count` seeds derived from `base` and averages.
///
/// Convenience wrapper over [`average_seeds`] + [`seeds_from_base`] for
/// sweeps that record the base seed in their output headers.
pub fn average_seeds_from_base(
    cfg: &SimConfig,
    layout: &DiskLayout,
    base: u64,
    count: usize,
) -> Result<AveragedOutcome, SimError> {
    average_seeds(cfg, layout, &seeds_from_base(base, count))
}

fn combine(per_seed: Vec<SimOutcome>) -> AveragedOutcome {
    let n = per_seed.len() as f64;
    let mean_response_time = per_seed.iter().map(|o| o.mean_response_time).sum::<f64>() / n;
    let lo = per_seed
        .iter()
        .map(|o| o.mean_response_time)
        .fold(f64::INFINITY, f64::min);
    let hi = per_seed
        .iter()
        .map(|o| o.mean_response_time)
        .fold(f64::NEG_INFINITY, f64::max);
    let hit_rate = per_seed.iter().map(|o| o.hit_rate).sum::<f64>() / n;
    let buckets = per_seed[0].access_fractions.len();
    let access_fractions = (0..buckets)
        .map(|i| per_seed.iter().map(|o| o.access_fractions[i]).sum::<f64>() / n)
        .collect();
    AveragedOutcome {
        mean_response_time,
        spread: (lo, hi),
        hit_rate,
        access_fractions,
        per_seed,
    }
}

/// Runs `f` over `items` on scoped worker threads, preserving input order
/// in the output. `f` must be deterministic per item for reproducible
/// sweeps.
pub fn sweep<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let items = &items;
            let f = &f;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(&items[i]))).expect("receiver alive");
            });
        }
        drop(tx);
    })
    .expect("sweep worker panicked");
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;

    fn cfg() -> SimConfig {
        SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 10,
            offset: 10,
            policy: PolicyKind::Lix,
            requests: 1_000,
            warmup_requests: 100,
            ..SimConfig::default()
        }
    }

    #[test]
    fn averaging_reduces_to_single_seed() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let avg = average_seeds(&cfg(), &layout, &[7]).unwrap();
        assert_eq!(avg.per_seed.len(), 1);
        assert_eq!(avg.mean_response_time, avg.per_seed[0].mean_response_time);
        assert_eq!(avg.spread.0, avg.spread.1);
    }

    #[test]
    fn averaging_multiple_seeds() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let avg = average_seeds(&cfg(), &layout, &[1, 2, 3]).unwrap();
        assert_eq!(avg.per_seed.len(), 3);
        assert!(avg.spread.0 <= avg.mean_response_time);
        assert!(avg.mean_response_time <= avg.spread.1);
        let sum: f64 = avg.access_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_preserves_order() {
        let items: Vec<u64> = (0..40).collect();
        let out = sweep(items, 4, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn seeds_from_base_is_affine_and_reproducible() {
        assert_eq!(seeds_from_base(101, 3), vec![101, 202, 303]);
        assert_eq!(seeds_from_base(7, 1), vec![7]);
        assert_eq!(seeds_from_base(42, 4), seeds_from_base(42, 4));
        // Wrapping near u64::MAX must not panic.
        let near_max = seeds_from_base(u64::MAX - 50, 3);
        assert_eq!(near_max.len(), 3);
    }

    #[test]
    fn average_from_base_matches_explicit_seeds() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let from_base = average_seeds_from_base(&cfg(), &layout, 101, 2).unwrap();
        let explicit = average_seeds(&cfg(), &layout, &[101, 202]).unwrap();
        assert_eq!(from_base.mean_response_time, explicit.mean_response_time);
        assert_eq!(from_base.hit_rate, explicit.hit_rate);
    }

    #[test]
    fn sweep_single_thread() {
        let out = sweep(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn sweep_empty() {
        let out: Vec<i32> = sweep(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_sweep_of_simulations_is_deterministic() {
        let layout = DiskLayout::with_delta(&[50, 150, 300], 2).unwrap();
        let deltas: Vec<u64> = vec![0, 1, 2, 3];
        let run = |threads: usize| {
            let layouts: Vec<DiskLayout> = deltas
                .iter()
                .map(|&d| DiskLayout::with_delta(&[50, 150, 300], d).unwrap())
                .collect();
            let _ = &layout;
            sweep(layouts, threads, |l| {
                average_seeds(&cfg(), l, &[5]).unwrap().mean_response_time
            })
        };
        assert_eq!(run(1), run(4));
    }
}
