//! Shared setup helpers for the Criterion benchmark harness.
//!
//! The real content of this crate lives in `benches/`: one Criterion group
//! per paper table/figure plus microbenchmarks and ablations. This library
//! only hosts the configuration shared between them (reduced-scale
//! experiment settings so `cargo bench` completes in minutes).

/// Scale factor applied to request counts when regenerating figures under
/// Criterion (the `repro` binary runs the full-scale versions).
pub const BENCH_REQUESTS: u64 = 2_000;

/// Seeds used by benchmark runs (kept small and fixed for stability).
pub const BENCH_SEEDS: [u64; 2] = [11, 23];
