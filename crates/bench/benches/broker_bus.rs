//! Broadcast-bus throughput: how fast the engine can fan slots out as the
//! client count grows, for both lossless (Block) and lossy (DropNewest)
//! backpressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bdisk_broker::{Backpressure, BroadcastEngine, BusTuning, EngineConfig, InMemoryBus};
use bdisk_sched::{BroadcastProgram, DiskLayout};

const SLOTS: u64 = 20_000;

fn program() -> BroadcastProgram {
    let layout = DiskLayout::with_delta(&[50, 200, 250], 3).unwrap();
    BroadcastProgram::generate(&layout).unwrap()
}

/// Broadcasts `SLOTS` slots to `clients` subscribers, each drained by its
/// own thread, and returns the slots actually sent.
fn run_fanout(
    program: &BroadcastProgram,
    clients: usize,
    backpressure: Backpressure,
    tuning: BusTuning,
) -> u64 {
    let mut bus = InMemoryBus::with_tuning(256, backpressure, tuning);
    let subs: Vec<_> = (0..clients).map(|_| bus.subscribe()).collect();
    let engine = BroadcastEngine::new(
        program.clone(),
        EngineConfig {
            max_slots: SLOTS,
            stop_when_no_clients: false,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        for mut sub in subs {
            scope.spawn(move |_| {
                let mut seen = 0u64;
                while sub.recv().is_some() {
                    seen += 1;
                }
                seen
            });
        }
        engine.run(&mut bus).slots_sent
    })
    .unwrap()
}

fn bench_bus_fanout(c: &mut Criterion) {
    let program = program();
    let mut g = c.benchmark_group("bus_fanout_20k_slots");
    g.sample_size(10);
    for clients in [1usize, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("block", clients),
            &clients,
            |b, &clients| {
                b.iter(|| run_fanout(&program, clients, Backpressure::Block, BusTuning::default()));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("block_tuned", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    run_fanout(
                        &program,
                        clients,
                        Backpressure::Block,
                        BusTuning::throughput(),
                    )
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("drop_newest", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    run_fanout(
                        &program,
                        clients,
                        Backpressure::DropNewest,
                        BusTuning::default(),
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_broadcast_no_subscribers(c: &mut Criterion) {
    // Pure engine-side slot walk: the floor every transport builds on.
    let program = program();
    c.bench_function("engine_walk_20k_slots", |b| {
        b.iter(|| {
            let mut bus = InMemoryBus::new(16, Backpressure::DropNewest);
            let engine = BroadcastEngine::new(
                program.clone(),
                EngineConfig {
                    max_slots: SLOTS,
                    stop_when_no_clients: false,
                    ..EngineConfig::default()
                },
            );
            let report = engine.run(&mut bus);
            assert_eq!(report.slots_sent, SLOTS);
            report.slots_sent
        });
    });
}

criterion_group!(broker_bus, bench_bus_fanout, bench_broadcast_no_subscribers);
criterion_main!(broker_bus);
