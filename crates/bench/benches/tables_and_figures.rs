//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark runs a reduced-scale version of the experiment that
//! regenerates the table or figure (the full-scale rows come from
//! `cargo run --release -p bdisk-experiments -- all`). This keeps every
//! experiment's code path exercised by `cargo bench` while bounding total
//! wall-clock. Reduced scale = a representative subset of the sweep at
//! [`bdisk_bench::BENCH_REQUESTS`] requests per point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bdisk_bench::{BENCH_REQUESTS, BENCH_SEEDS};
use bdisk_cache::PolicyKind;
use bdisk_sched::DiskLayout;
use bdisk_sim::{average_seeds, SimConfig};

/// Reduced Table-4 configuration.
fn cfg(policy: PolicyKind, cache: usize, offset: usize, noise: f64) -> SimConfig {
    SimConfig {
        access_range: 1000,
        region_size: 50,
        cache_size: cache,
        offset,
        noise,
        policy,
        requests: BENCH_REQUESTS,
        warmup_requests: 500,
        ..SimConfig::default()
    }
}

fn d5(delta: u64) -> DiskLayout {
    DiskLayout::with_delta(&[500, 2000, 2500], delta).unwrap()
}

fn run(cfg: &SimConfig, layout: &DiskLayout) -> f64 {
    average_seeds(cfg, layout, &BENCH_SEEDS)
        .unwrap()
        .mean_response_time
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_analytic", |b| {
        b.iter(|| black_box(bdisk_analytic::table1()));
    });
}

fn bench_fig5(c: &mut Criterion) {
    // Representative slice: D4 and D5 at three deltas, no cache.
    c.bench_function("fig5_point_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sizes in [&[300usize, 1200, 3500][..], &[500, 2000, 2500][..]] {
                for delta in [1u64, 4, 7] {
                    let layout = DiskLayout::with_delta(sizes, delta).unwrap();
                    acc += run(&cfg(PolicyKind::Pix, 1, 0, 0.0), &layout);
                }
            }
            acc
        });
    });
}

fn bench_fig6_7(c: &mut Criterion) {
    // Noise sensitivity without caching: D3 (fig6) and D5 (fig7) points.
    c.bench_function("fig6_fig7_noise_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sizes in [&[2500usize, 2500][..], &[500, 2000, 2500][..]] {
                for noise in [0.15, 0.60] {
                    let layout = DiskLayout::with_delta(sizes, 3).unwrap();
                    acc += run(&cfg(PolicyKind::Pix, 1, 0, noise), &layout);
                }
            }
            acc
        });
    });
}

fn bench_fig8_9(c: &mut Criterion) {
    // P (fig8) vs PIX (fig9) under noise with a 500-page cache.
    let mut g = c.benchmark_group("fig8_fig9");
    for (name, policy) in [("fig8_P", PolicyKind::P), ("fig9_PIX", PolicyKind::Pix)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let layout = d5(3);
                run(&cfg(policy, 500, 500, 0.45), &layout)
            });
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_p_vs_pix_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for policy in [PolicyKind::P, PolicyKind::Pix] {
                for noise in [0.0, 0.45] {
                    acc += run(&cfg(policy, 500, 500, noise), &d5(3));
                }
            }
            acc
        });
    });
}

fn bench_fig11_14(c: &mut Criterion) {
    // Access-location accounting for idealized and implementable policies.
    c.bench_function("fig11_fig14_access_locations", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for policy in [
                PolicyKind::P,
                PolicyKind::Pix,
                PolicyKind::Lru,
                PolicyKind::Lix,
            ] {
                let out =
                    average_seeds(&cfg(policy, 500, 500, 0.30), &d5(3), &BENCH_SEEDS).unwrap();
                acc += out.access_fractions.iter().sum::<f64>();
            }
            acc
        });
    });
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_policies_over_delta");
    for kind in [
        PolicyKind::Lru,
        PolicyKind::L,
        PolicyKind::Lix,
        PolicyKind::Pix,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| run(&cfg(kind, 500, 500, 0.30), &d5(3)));
        });
    }
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_lru_l_lix_noise", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in [PolicyKind::Lru, PolicyKind::L, PolicyKind::Lix] {
                acc += run(&cfg(kind, 500, 500, 0.60), &d5(3));
            }
            acc
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig5, bench_fig6_7, bench_fig8_9, bench_fig10,
              bench_fig11_14, bench_fig13, bench_fig15
}
criterion_main!(figures);
