//! Microbenchmarks of the core operations: program generation, arrival
//! queries, workload sampling, and cache policy maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bdisk_cache::{build_policy, PolicyContext, PolicyKind};
use bdisk_sched::{BroadcastProgram, DiskLayout, PageId};
use bdisk_workload::{AliasTable, Mapping, RegionZipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_program_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_generation");
    for delta in [1u64, 3, 7] {
        g.bench_with_input(BenchmarkId::new("d5", delta), &delta, |b, &delta| {
            let layout = DiskLayout::with_delta(&[500, 2000, 2500], delta).unwrap();
            b.iter(|| BroadcastProgram::generate(black_box(&layout)).unwrap());
        });
    }
    g.bench_function("flat_5000", |b| {
        b.iter(|| bdisk_sched::flat_program(black_box(5000)).unwrap());
    });
    g.finish();
}

fn bench_next_arrival(c: &mut Criterion) {
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let queries: Vec<(PageId, f64)> = (0..1024)
        .map(|_| {
            (
                PageId(rng.random_range(0..5000)),
                rng.random_range(0.0..1e6),
            )
        })
        .collect();
    c.bench_function("next_arrival_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(p, t) in &queries {
                acc += program.next_arrival(black_box(p), black_box(t));
            }
            acc
        });
    });
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("zipf_build_1000", |b| {
        b.iter(|| RegionZipf::new(black_box(1000), 50, 0.95));
    });
    let zipf = RegionZipf::new(1000, 50, 0.95);
    g.bench_function("alias_build_1000", |b| {
        b.iter(|| AliasTable::new(black_box(zipf.probs())));
    });
    let table = AliasTable::new(zipf.probs());
    g.bench_function("alias_sample_1024", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1024 {
                acc += table.sample(&mut rng);
            }
            acc
        });
    });
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    g.bench_function("mapping_build_noise30", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| Mapping::build(black_box(&layout), 500, 0.30, &mut rng));
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    let ctx = PolicyContext {
        probs: (0..5000).map(|i| 1.0 / (i + 1) as f64).collect(),
        page_disk: (0..5000)
            .map(|p| layout.disk_of(PageId(p as u32)) as u16)
            .collect(),
        disk_freqs: layout.freqs().to_vec(),
        alpha: 0.25,
    };
    // A fixed mixed trace: 4096 requests over 1500 pages (some re-use).
    let mut rng = StdRng::seed_from_u64(3);
    let trace: Vec<PageId> = (0..4096)
        .map(|_| PageId(rng.random_range(0..1500)))
        .collect();

    let mut g = c.benchmark_group("policy_trace_4096");
    for kind in PolicyKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut policy = build_policy(kind, 500, &ctx);
                    for (i, &page) in trace.iter().enumerate() {
                        let now = i as f64;
                        if policy.contains(page) {
                            policy.on_hit(page, now);
                        } else {
                            black_box(policy.insert(page, now));
                        }
                    }
                    policy.len()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_program_generation,
    bench_next_arrival,
    bench_workload,
    bench_policies
);
criterion_main!(micro);
