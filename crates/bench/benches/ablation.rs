//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Each group compares variants of one design decision; the reported
//! "time" of each variant is dominated by the simulated run, so these are
//! primarily regression anchors — the *printed values* (response times)
//! for each variant come from the assertions and `repro` runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bdisk_bench::{BENCH_REQUESTS, BENCH_SEEDS};
use bdisk_cache::PolicyKind;
use bdisk_sched::{random_program, skewed_program, BroadcastProgram, DiskLayout};
use bdisk_sim::{average_seeds, simulate_program, SimConfig};
use rand::SeedableRng;

fn cfg() -> SimConfig {
    SimConfig {
        access_range: 1000,
        region_size: 50,
        cache_size: 1,
        requests: BENCH_REQUESTS,
        warmup_requests: 300,
        ..SimConfig::default()
    }
}

/// Fixed-spacing multi-disk vs clustered vs random programs at identical
/// bandwidth allocation (the Bus Stop Paradox, Section 2.1).
fn ablation_spacing(c: &mut Criterion) {
    let copies: Vec<u64> = (0..5000).map(|p| if p < 500 { 4 } else { 1 }).collect();
    let single = DiskLayout::new(vec![5000], vec![1]).unwrap();
    let multi_layout = DiskLayout::new(vec![500, 4500], vec![4, 1]).unwrap();

    let mut g = c.benchmark_group("spacing");
    g.sample_size(10);
    g.bench_function("multi_disk_fixed_gaps", |b| {
        let program = BroadcastProgram::generate(&multi_layout).unwrap();
        b.iter(|| {
            simulate_program(&cfg(), &multi_layout, program.clone(), 3)
                .unwrap()
                .mean_response_time
        });
    });
    g.bench_function("skewed_clustered", |b| {
        let program = skewed_program(&copies).unwrap();
        b.iter(|| {
            simulate_program(&cfg(), &single, program.clone(), 3)
                .unwrap()
                .mean_response_time
        });
    });
    g.bench_function("random_allocation", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let program = random_program(&copies, &mut rng).unwrap();
        b.iter(|| {
            simulate_program(&cfg(), &single, program.clone(), 3)
                .unwrap()
                .mean_response_time
        });
    });
    g.finish();
}

/// LIX estimator constant α: the paper fixes 0.25; how sensitive is it?
fn ablation_lix_alpha(c: &mut Criterion) {
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    let mut g = c.benchmark_group("lix_alpha");
    g.sample_size(10);
    for alpha in [0.05f64, 0.25, 0.75] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let cfg = SimConfig {
                cache_size: 500,
                offset: 500,
                noise: 0.30,
                policy: PolicyKind::Lix,
                alpha,
                ..cfg()
            };
            b.iter(|| {
                average_seeds(&cfg, &layout, &BENCH_SEEDS)
                    .unwrap()
                    .mean_response_time
            });
        });
    }
    g.finish();
}

/// Offset: shifting the cached-anyway hottest pages off the fast disk.
fn ablation_offset(c: &mut Criterion) {
    let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
    let mut g = c.benchmark_group("offset");
    g.sample_size(10);
    for offset in [0usize, 500] {
        g.bench_with_input(
            BenchmarkId::from_parameter(offset),
            &offset,
            |b, &offset| {
                let cfg = SimConfig {
                    cache_size: 500,
                    offset,
                    policy: PolicyKind::Pix,
                    ..cfg()
                };
                b.iter(|| {
                    average_seeds(&cfg, &layout, &BENCH_SEEDS)
                        .unwrap()
                        .mean_response_time
                });
            },
        );
    }
    g.finish();
}

/// Chunk-padding waste across Δ: how much bandwidth does the LCM chunking
/// give up to keep inter-arrival times fixed?
fn ablation_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("padding_waste");
    for delta in [1u64, 3, 5, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &delta| {
            let layout = DiskLayout::with_delta(&[500, 2000, 2500], delta).unwrap();
            b.iter(|| {
                let program = BroadcastProgram::generate(&layout).unwrap();
                program.waste()
            });
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_spacing,
    ablation_lix_alpha,
    ablation_offset,
    ablation_padding
);
criterion_main!(ablations);
