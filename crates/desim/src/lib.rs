//! # bdesim — a minimal discrete-event simulation kernel
//!
//! The Broadcast Disks paper (Acharya et al., SIGMOD 1995) evaluates its
//! design with a simulator written on top of CSIM, a proprietary
//! process-oriented simulation library for C. This crate is the Rust
//! substitute: a small, deterministic discrete-event kernel with
//!
//! * a virtual clock measured in **broadcast units** (the time to broadcast
//!   one page — the paper's unit of time, see Section 4.1),
//! * a priority event queue with deterministic FIFO tie-breaking,
//! * a process abstraction so that model code reads like CSIM processes, and
//! * statistics collectors (running moments, histograms, batch means) used
//!   by the measurement layer in `bdisk-sim`.
//!
//! The kernel is intentionally synchronous and single-threaded: the paper's
//! model is one client and one deterministic cyclic server, so determinism
//! and reproducibility matter far more than parallel event execution.
//!
//! ## Example
//!
//! ```
//! use bdesim::{Simulation, Time};
//!
//! let mut sim: Simulation<&'static str> = Simulation::new();
//! sim.schedule_at(Time::from(3.0), "c");
//! sim.schedule_at(Time::from(1.0), "a");
//! sim.schedule_in(Time::from(1.0), "b"); // now = 0, so fires at t=1 after "a"
//!
//! let mut order = Vec::new();
//! while let Some(ev) = sim.next_event() {
//!     order.push((sim.now().as_f64(), ev));
//! }
//! assert_eq!(order, vec![(1.0, "a"), (1.0, "b"), (3.0, "c")]);
//! ```

#![warn(missing_docs)]

pub mod process;
pub mod queue;
pub mod stats;
pub mod time;

pub use process::{Action, Process, ProcessExecutor};
pub use queue::EventQueue;
pub use stats::{BatchMeans, Counter, Histogram, RunningStats};
pub use time::{Duration, Time};

/// A discrete-event simulation: a clock plus an event queue.
///
/// Events are opaque payloads of type `E`; the caller interprets them as it
/// pops them. For a process-oriented style, see [`ProcessExecutor`].
#[derive(Debug, Clone)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: Time,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation with the clock at time zero.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: Time::ZERO,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the next pending event without removing it.
    pub fn queue_peek(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — discrete-event
    /// simulations must never schedule into the past.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?}, now={:?}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a delay of `delay` from the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        let at = self.now + delay;
        self.queue.push(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty (simulation over).
    pub fn next_event(&mut self) -> Option<E> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue produced a past event");
        self.now = at;
        self.processed += 1;
        Some(event)
    }

    /// Runs `handler` for every event until the queue drains or `handler`
    /// returns `false`.
    pub fn run_until_empty(&mut self, mut handler: impl FnMut(&mut Self, E) -> bool) {
        while let Some(ev) = self.next_event() {
            if !handler(self, ev) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let sim: Simulation<()> = Simulation::new();
        assert_eq!(sim.now(), Time::ZERO);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.processed(), 0);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(Time::from(5.0), 5);
        sim.schedule_at(Time::from(2.0), 2);
        sim.schedule_at(Time::from(9.0), 9);
        let mut got = Vec::new();
        while let Some(e) = sim.next_event() {
            got.push(e);
        }
        assert_eq!(got, vec![2, 5, 9]);
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut sim = Simulation::new();
        for i in 0..100 {
            sim.schedule_at(Time::from(1.0), i);
        }
        let mut got = Vec::new();
        while let Some(e) = sim.next_event() {
            got.push(e);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule_at(Time::from(10.0), "first");
        assert_eq!(sim.next_event(), Some("first"));
        sim.schedule_in(Duration::from(2.5), "second");
        assert_eq!(sim.next_event(), Some("second"));
        assert_eq!(sim.now(), Time::from(12.5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(Time::from(10.0), 1);
        sim.next_event();
        sim.schedule_at(Time::from(5.0), 2);
    }

    #[test]
    fn run_until_empty_can_stop_early() {
        let mut sim = Simulation::new();
        for i in 0..10 {
            sim.schedule_at(Time::from(i as f64), i);
        }
        let mut seen = 0;
        sim.run_until_empty(|_, _| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn handler_may_schedule_more_events() {
        // A self-perpetuating "clock tick" process.
        let mut sim = Simulation::new();
        sim.schedule_at(Time::ZERO, ());
        let mut ticks = 0;
        sim.run_until_empty(|sim, ()| {
            ticks += 1;
            if ticks < 5 {
                sim.schedule_in(Duration::from(1.0), ());
            }
            true
        });
        assert_eq!(ticks, 5);
        assert_eq!(sim.now(), Time::from(4.0));
    }
}
