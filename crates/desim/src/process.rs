//! Process-oriented layer over the event kernel.
//!
//! CSIM models are written as *processes*: sequential code that holds state
//! and sleeps on the simulated clock. Rust has no built-in coroutines on
//! stable, so a process here is a state machine: the executor calls
//! [`Process::resume`] every time the process wakes, and the process answers
//! with the [`Action`] describing when it wants to run next.
//!
//! This is all the structure the Broadcast Disks model needs — the client is
//! a single loop of `request → wait-for-broadcast → think`, and the server
//! is implicit in the schedule arithmetic — but the executor is general: any
//! number of processes may run, and they interleave deterministically.

use crate::time::{Duration, Time};
use crate::Simulation;

/// What a process wants to do next after being resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Sleep for a relative delay, then resume.
    Sleep(Duration),
    /// Sleep until an absolute instant, then resume.
    Until(Time),
    /// Resume again immediately (at the same virtual time, after any other
    /// events already scheduled for this instant).
    Yield,
    /// The process is finished and will never be resumed again.
    Done,
}

/// A simulation process: resumed by the executor at each wake-up.
pub trait Process {
    /// Runs one step of the process at virtual time `now` and reports when
    /// to resume next.
    fn resume(&mut self, now: Time) -> Action;
}

impl<F: FnMut(Time) -> Action> Process for F {
    fn resume(&mut self, now: Time) -> Action {
        self(now)
    }
}

/// Identifier of a spawned process within an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// Drives a set of [`Process`]es over a shared virtual clock.
pub struct ProcessExecutor<P: Process> {
    sim: Simulation<usize>,
    procs: Vec<P>,
    done: Vec<bool>,
    live: usize,
}

impl<P: Process> Default for ProcessExecutor<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Process> ProcessExecutor<P> {
    /// Creates an executor with no processes.
    pub fn new() -> Self {
        Self {
            sim: Simulation::new(),
            procs: Vec::new(),
            done: Vec::new(),
            live: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Number of processes that have not finished.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Adds a process that first wakes at time `start`.
    pub fn spawn_at(&mut self, start: Time, proc_: P) -> ProcessId {
        let id = self.procs.len();
        self.procs.push(proc_);
        self.done.push(false);
        self.live += 1;
        self.sim.schedule_at(start, id);
        ProcessId(id)
    }

    /// Runs until every process is done or the clock passes `deadline`.
    ///
    /// Returns the number of wake-ups executed.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut wakeups = 0;
        while let Some(next) = self.sim.queue_peek() {
            if next > deadline {
                break;
            }
            let id = self.sim.next_event().expect("peeked event must pop");
            if self.done[id] {
                continue;
            }
            wakeups += 1;
            match self.procs[id].resume(self.sim.now()) {
                Action::Sleep(d) => self.sim.schedule_in(d, id),
                Action::Until(t) => self.sim.schedule_at(t.max(self.sim.now()), id),
                Action::Yield => self.sim.schedule_at(self.sim.now(), id),
                Action::Done => {
                    self.done[id] = true;
                    self.live -= 1;
                }
            }
        }
        wakeups
    }

    /// Runs until every process finishes.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(Time::new(f64::MAX))
    }

    /// Consumes the executor, returning every process's final state in
    /// spawn order (finished or not).
    pub fn into_states(self) -> Vec<P> {
        self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker {
        period: f64,
        remaining: u32,
        fired_at: Vec<f64>,
    }

    impl Process for Ticker {
        fn resume(&mut self, now: Time) -> Action {
            self.fired_at.push(now.as_f64());
            if self.remaining == 0 {
                return Action::Done;
            }
            self.remaining -= 1;
            Action::Sleep(Duration::from(self.period))
        }
    }

    #[test]
    fn single_process_ticks() {
        let mut ex = ProcessExecutor::new();
        ex.spawn_at(
            Time::ZERO,
            Ticker {
                period: 2.0,
                remaining: 3,
                fired_at: Vec::new(),
            },
        );
        ex.run_to_completion();
        let states = ex.into_states();
        let t = &states[0];
        assert_eq!(t.fired_at, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn processes_interleave_by_time() {
        // Two tickers with different periods: wake-ups must interleave in
        // global time order.
        let mut ex = ProcessExecutor::new();
        ex.spawn_at(
            Time::ZERO,
            Ticker {
                period: 3.0,
                remaining: 2,
                fired_at: Vec::new(),
            },
        );
        ex.spawn_at(
            Time::from(1.0),
            Ticker {
                period: 3.0,
                remaining: 2,
                fired_at: Vec::new(),
            },
        );
        ex.run_to_completion();
        let states = ex.into_states();
        assert_eq!(states[0].fired_at, vec![0.0, 3.0, 6.0]);
        assert_eq!(states[1].fired_at, vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut ex = ProcessExecutor::new();
        ex.spawn_at(
            Time::ZERO,
            Ticker {
                period: 1.0,
                remaining: 1000,
                fired_at: Vec::new(),
            },
        );
        let wakeups = ex.run_until(Time::from(10.0));
        assert_eq!(wakeups, 11); // t = 0..=10
        assert_eq!(ex.live(), 1);
    }

    #[test]
    fn closure_process_works() {
        let mut count = 0;
        {
            let mut ex = ProcessExecutor::new();
            ex.spawn_at(Time::ZERO, |_now: Time| {
                count += 1;
                if count < 4 {
                    Action::Sleep(Duration::from(1.0))
                } else {
                    Action::Done
                }
            });
            ex.run_to_completion();
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn yield_resumes_same_time() {
        let mut times = Vec::new();
        let mut n = 0;
        {
            let mut ex = ProcessExecutor::new();
            ex.spawn_at(Time::from(5.0), |now: Time| {
                times.push(now.as_f64());
                n += 1;
                if n < 3 {
                    Action::Yield
                } else {
                    Action::Done
                }
            });
            ex.run_to_completion();
        }
        assert_eq!(times, vec![5.0, 5.0, 5.0]);
    }
}
