//! Statistics collectors for steady-state measurement.
//!
//! The paper reports steady-state client response times: warm-up effects are
//! discarded and the run continues "for 15,000 or more client page requests
//! (until steady state)" (Section 5). These collectors support exactly that
//! methodology:
//!
//! * [`RunningStats`] — numerically stable running mean/variance (Welford).
//! * [`Histogram`] — bounded integer histogram with percentile queries, for
//!   response-time distributions.
//! * [`BatchMeans`] — the classic batch-means method for steady-state
//!   confidence intervals from a single long run.
//! * [`Counter`] — a labelled tally, used for the access-location breakdowns
//!   of Figures 11 and 14.

/// Numerically stable running mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observation must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another collector into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Bounded integer histogram with percentile queries.
///
/// Observations are clamped into `[0, limit)` with one bucket per unit; a
/// final overflow bucket counts anything at or beyond the limit. Response
/// times in broadcast units are small integers plus a fractional phase, so a
/// unit-resolution histogram loses almost nothing.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    n: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[0, limit)` in unit buckets.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "histogram needs at least one bucket");
        Self {
            buckets: vec![0; limit],
            overflow: 0,
            n: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x >= 0.0, "histogram observations must be non-negative");
        self.n += 1;
        self.sum += x;
        let idx = x as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of all recorded observations (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Observations at or above the bucket limit.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of the bucket containing the `q`-quantile (`0 < q <= 1`).
    ///
    /// Returns `None` when empty. Overflow observations report the limit.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.n == 0 {
            return None;
        }
        let target = ((q * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i as f64);
            }
        }
        Some(self.buckets.len() as f64)
    }

    /// Bucket counts (excluding overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram into this one (used to aggregate
    /// per-client latency distributions into fleet-wide percentiles).
    ///
    /// If `other` covers a wider range, this histogram grows to match, so
    /// no observations are demoted to the overflow bucket by merging.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.overflow += other.overflow;
        self.n += other.n;
        self.sum += other.sum;
    }
}

/// Steady-state confidence interval via non-overlapping batch means.
///
/// Observations are grouped into consecutive batches of fixed size; the
/// batch means are approximately independent for large batches, so a
/// Student-t interval over them is a defensible CI for a single long run.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates a collector with the given batch size.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (`None` before the first batch).
    pub fn mean(&self) -> Option<f64> {
        if self.batch_means.is_empty() {
            return None;
        }
        Some(self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64)
    }

    /// Approximate 95% confidence half-width over batch means.
    ///
    /// Uses t ≈ 1.96 + 2.4/df, a serviceable approximation of the two-sided
    /// 97.5% Student-t quantile for df ≥ 5. Returns `None` with fewer than
    /// two batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean()?;
        let var = self
            .batch_means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        let df = (k - 1) as f64;
        let t = 1.96 + 2.4 / df;
        Some(t * (var / k as f64).sqrt())
    }
}

/// A labelled tally with share-of-total queries.
///
/// Used for the "where did each page access come from" breakdowns (cache,
/// disk 1, disk 2, disk 3) of Figures 11 and 14.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    counts: Vec<u64>,
}

impl Counter {
    /// Creates a counter with `labels` buckets.
    pub fn new(labels: usize) -> Self {
        Self {
            counts: vec![0; labels],
        }
    }

    /// Increments bucket `label`.
    pub fn bump(&mut self, label: usize) {
        self.counts[label] += 1;
    }

    /// Raw count for `label`.
    pub fn count(&self, label: usize) -> u64 {
        self.counts[label]
    }

    /// Total across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of the total in `label` (0 when empty).
    pub fn fraction(&self, label: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[label] as f64 / total as f64
        }
    }

    /// All fractions, in label order.
    pub fn fractions(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.fraction(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);

        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::new(100);
        for x in 0..100 {
            h.record(x as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 49.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), Some(49.0));
        assert_eq!(h.quantile(1.0), Some(99.0));
        assert_eq!(h.quantile(0.01), Some(0.0));
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let mut whole = Histogram::new(50);
        let mut a = Histogram::new(50);
        let mut b = Histogram::new(30); // narrower than `a`; overflow must carry over
        for x in 0..60 {
            whole.record(x as f64);
            if x % 2 == 0 {
                a.record(x as f64);
            } else {
                b.record(x as f64);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        // b's overflow (odd x >= 30) carries over on top of a's (even x >= 50).
        assert_eq!(a.overflow(), 5 + 15);
    }

    #[test]
    fn histogram_merge_widens_receiver() {
        let mut narrow = Histogram::new(5);
        let mut wide = Histogram::new(20);
        wide.record(15.0);
        narrow.merge(&wide);
        assert_eq!(narrow.buckets().len(), 20);
        assert_eq!(narrow.overflow(), 0);
        assert_eq!(narrow.quantile(1.0), Some(15.0));
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(10);
        h.record(5.0);
        h.record(500.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn batch_means_ci_shrinks_with_data() {
        let mut bm = BatchMeans::new(10);
        // Deterministic pseudo-noise around 100.
        let mut x = 7u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (x >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
            bm.record(100.0 + noise);
        }
        assert_eq!(bm.batches(), 100);
        let mean = bm.mean().unwrap();
        assert!((mean - 100.5).abs() < 0.1, "mean={mean}");
        let hw = bm.half_width_95().unwrap();
        assert!(hw < 0.1, "hw={hw}");
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..15 {
            bm.record(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.mean(), Some(1.0));
        assert_eq!(bm.half_width_95(), None);
    }

    #[test]
    fn counter_fractions() {
        let mut c = Counter::new(4);
        c.bump(0);
        c.bump(0);
        c.bump(1);
        c.bump(3);
        assert_eq!(c.total(), 4);
        assert_eq!(c.fraction(0), 0.5);
        assert_eq!(c.fraction(2), 0.0);
        assert_eq!(c.fractions(), vec![0.5, 0.25, 0.0, 0.25]);
    }
}
