//! Priority event queue with deterministic tie-breaking.
//!
//! `std::collections::BinaryHeap` is a max-heap and makes no ordering
//! promise for equal keys. Simulations need (a) a *min*-heap on time and
//! (b) FIFO order among simultaneous events so that runs are reproducible
//! bit-for-bit. We get both by keying entries on `(time, sequence)` and
//! wrapping them in `Reverse`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A min-ordered event queue: pops the earliest event; events scheduled at
/// the same instant pop in insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `event` to fire at time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from(3.0), 'c');
        q.push(Time::from(1.0), 'a');
        q.push(Time::from(2.0), 'b');
        assert_eq!(q.pop(), Some((Time::from(1.0), 'a')));
        assert_eq!(q.pop(), Some((Time::from(2.0), 'b')));
        assert_eq!(q.pop(), Some((Time::from(3.0), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from(7.0);
        for i in 0..1000 {
            q.push(t, i);
        }
        for i in 0..1000 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from(10.0), "late");
        q.push(Time::from(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(Time::from(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from(4.0), ());
        assert_eq!(q.peek_time(), Some(Time::from(4.0)));
        assert_eq!(q.len(), 1);
    }
}
