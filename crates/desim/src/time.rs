//! Virtual time.
//!
//! The paper measures everything in **broadcast units**: the time required
//! to broadcast a single page (Section 4.1). `Time` is an absolute instant
//! on that axis and `Duration` a span. Both wrap `f64` (think times such as
//! 2.0 are fractional multiples of a page slot) but enforce the invariants a
//! simulation clock needs: values are finite and totally ordered.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in broadcast units.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

/// A span of time in broadcast units.
pub type Duration = Time;

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time value, panicking on non-finite input.
    pub fn new(units: f64) -> Self {
        assert!(units.is_finite(), "time must be finite, got {units}");
        Time(units)
    }

    /// Raw value in broadcast units.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The integer broadcast slot that contains this instant
    /// (slot `k` covers `[k, k+1)`).
    pub fn slot(self) -> u64 {
        assert!(self.0 >= 0.0, "slot() requires non-negative time");
        self.0 as u64
    }

    /// Largest of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<f64> for Time {
    fn from(v: f64) -> Self {
        Time::new(v)
    }
}

impl From<u64> for Time {
    fn from(v: u64) -> Self {
        Time(v as f64)
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("Time is finite by construction")
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time::new(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    fn div(self, rhs: f64) -> Time {
        Time::new(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bu", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time::from(1.0);
        let b = Time::from(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from(3.0) + Time::from(4.5);
        assert_eq!(t, Time::from(7.5));
        assert_eq!(t - Time::from(0.5), Time::from(7.0));
        assert_eq!(t * 2.0, Time::from(15.0));
        assert_eq!(t / 3.0, Time::from(2.5));
    }

    #[test]
    fn slot_floors() {
        assert_eq!(Time::from(0.0).slot(), 0);
        assert_eq!(Time::from(0.999).slot(), 0);
        assert_eq!(Time::from(17.2).slot(), 17);
    }

    #[test]
    #[should_panic(expected = "time must be finite")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "time must be finite")]
    fn infinity_rejected() {
        let _ = Time::new(f64::INFINITY);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from(1.23456)), "1.235");
        assert_eq!(format!("{:?}", Time::from(2.0)), "2bu");
    }
}
