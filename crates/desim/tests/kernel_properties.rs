//! Property tests over the simulation kernel's invariants.

use bdesim::{EventQueue, RunningStats, Simulation, Time};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within ties.
    #[test]
    fn queue_pops_sorted_stable(times in proptest::collection::vec(0u32..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from(t as f64), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((at, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(seq > lseq, "FIFO violated within a tie");
                }
            }
            last = Some((at, seq));
        }
    }

    /// The simulation clock is monotone for any schedule of relative and
    /// absolute events.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0.0f64..50.0, 1..100)) {
        let mut sim = Simulation::new();
        for &d in &delays {
            sim.schedule_in(Time::new(d), ());
        }
        let mut prev = Time::ZERO;
        while let Some(()) = sim.next_event() {
            prop_assert!(sim.now() >= prev);
            prev = sim.now();
        }
        prop_assert_eq!(sim.processed(), delays.len() as u64);
    }

    /// Welford merge is order-independent and equals single-stream stats.
    #[test]
    fn stats_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let k = split.min(xs.len());
        let mut whole = RunningStats::new();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < k { a.record(x) } else { b.record(x) }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((ab.variance() - whole.variance()).abs() < 1e-4);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
    }
}
