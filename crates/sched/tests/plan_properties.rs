//! Property tests for the multi-channel [`BroadcastPlan`]:
//!
//! 1. a 1-channel plan is *byte-identical* to the single-channel
//!    [`BroadcastProgram`] generator — the exact slot sequence, page for
//!    page, for any valid layout (the refactor's compatibility contract);
//! 2. the paper's fixed-inter-arrival invariant survives striping: every
//!    page's consecutive airings on its assigned channel are equidistant,
//!    and no two channels ever air the same page in the same slot.

use bdisk_sched::{BroadcastPlan, BroadcastProgram, ChannelId, DiskLayout, PageId, Slot};
use proptest::prelude::*;

/// Disk sizes for random Δ-family layouts of 1–4 disks, 1–12 pages each.
fn sizes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=12, 1..=4)
}

proptest! {
    /// Satellite 1: `BroadcastPlan::generate(layout, 1)` reproduces the old
    /// generator's slot sequence exactly.
    #[test]
    fn one_channel_plan_matches_program(sizes in sizes(), delta in 0u64..=4) {
        let layout = DiskLayout::with_delta(&sizes, delta).unwrap();
        let plan = BroadcastPlan::generate(&layout, 1).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();

        prop_assert_eq!(plan.num_channels(), 1);
        let ch = ChannelId(0);
        prop_assert_eq!(plan.period_of(ch), program.period());
        for seq in 0..program.period() as u64 {
            prop_assert_eq!(plan.slot_at(ch, seq), program.slot_at(seq),
                "slot {} differs", seq);
        }
        for p in 0..layout.total_pages() as u32 {
            let page = PageId(p);
            prop_assert_eq!(plan.frequency(page), program.frequency(page));
            prop_assert_eq!(plan.disk_of(page), program.disk_of(page));
        }
    }

    /// Satellite 2: in the multi-channel case every page keeps fixed
    /// inter-arrival times on its channel, and the channels never collide
    /// on a page within a slot.
    #[test]
    fn multi_channel_keeps_fixed_interarrival(
        sizes in sizes(),
        delta in 0u64..=4,
        channels in 2usize..=4,
    ) {
        let layout = DiskLayout::with_delta(&sizes, delta).unwrap();
        let plan = match BroadcastPlan::generate(&layout, channels) {
            Ok(p) => p,
            // Layout too small for this channel count — nothing to check.
            Err(_) => return Ok(()),
        };

        // Fixed inter-arrival gap for every page on its assigned channel.
        for p in 0..layout.total_pages() as u32 {
            let page = PageId(p);
            prop_assert!(plan.gap(page).is_some(),
                "page {} unevenly spaced on {}", page, plan.channel_of(page));
        }

        // No two channels air the same page in the same slot, over the
        // joint period of all channels.
        let joint = (0..plan.num_channels())
            .map(|c| plan.period_of(ChannelId(c as u16)) as u64)
            .fold(1u64, lcm);
        prop_assume!(joint <= 50_000);
        for seq in 0..joint {
            let mut aired: Vec<PageId> = Vec::with_capacity(plan.num_channels());
            for c in 0..plan.num_channels() {
                if let Slot::Page(g) = plan.slot_at(ChannelId(c as u16), seq) {
                    prop_assert!(!aired.contains(&g),
                        "page {} on two channels at slot {}", g, seq);
                    aired.push(g);
                }
            }
        }
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
