//! The broadcast program: a periodic sequence of page-broadcast slots.
//!
//! A program is the server's entire output: slot `k` (covering virtual time
//! `[k, k+1)` in broadcast units) carries one page, or nothing when the
//! chunk-splitting step of the generation algorithm could not divide a disk
//! evenly (the paper's "unused slots"). The sequence repeats forever with
//! period [`BroadcastProgram::period`].
//!
//! Beyond the slot vector, the program pre-computes per-page broadcast
//! positions so the client model can answer *"when does page p next go by?"*
//! in `O(log f)` where `f` is the page's per-period frequency.

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::generate;

/// Identifier of a page in broadcast order (0 = the page the server
/// believes is hottest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a repair symbol within one channel's period: repair slots
/// are numbered `0..R` in period-offset order, so the id alone determines
/// (given the plan and its coding seed) exactly which pages the symbol
/// combines — server and client agree with no side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RepairId(pub u32);

impl RepairId {
    /// The repair-symbol id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RepairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One broadcast slot: a page transmission, a coded repair symbol, or an
/// unused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The slot broadcasts this page.
    Page(PageId),
    /// The slot is unused (chunk padding); real deployments would carry
    /// indexes, invalidations, or extra copies of hot pages here.
    Empty,
    /// The slot carries an erasure-coded repair symbol (a deterministic
    /// combination of recently aired pages; see `bdisk-code`).
    Repair(RepairId),
    /// An out-of-band plan-epoch fence marker. Never part of a program's
    /// periodic slot vector: the live engine airs fence frames *in
    /// addition to* a tick's data frames to announce which plan epoch is
    /// (or is about to be) on the air, so tuners can re-map page-to-slot
    /// arrivals across a hot swap. The fence's epoch and slot-clock base
    /// ride in the wire frame, not in this marker.
    EpochFence,
    /// An on-demand airing of `page` serviced from the server's pull
    /// queue rather than the periodic schedule. Like [`Slot::EpochFence`],
    /// never part of a program's periodic slot vector: the slot arbiter
    /// substitutes `Pull` frames for padding (and, in the stealing modes,
    /// for scheduled data slots) at air time, so the periodic arithmetic
    /// in [`BroadcastProgram::next_arrival`] stays valid for push traffic.
    Pull(PageId),
}

/// A periodic broadcast program.
#[derive(Debug, Clone)]
pub struct BroadcastProgram {
    slots: Vec<Slot>,
    /// Sorted slot offsets (within one period) at which each page starts.
    page_slots: Vec<Vec<u32>>,
    /// Disk index per page (0 when the program was built from raw slots).
    page_disk: Vec<u16>,
    /// Relative frequency of each disk (empty for raw-slot programs).
    disk_freqs: Vec<u64>,
    /// Number of empty (padding) slots per period.
    empty_slots: usize,
    /// Sorted slot offsets (within one period) of the empty padding slots;
    /// the pull arbiter fills these first, and the simulator mirror uses
    /// them to predict when a queued pull request goes on the air.
    empty_starts: Vec<u32>,
    /// Number of coded repair slots per period.
    repair_slots: usize,
}

impl BroadcastProgram {
    /// Generates a multi-disk program from `layout` using the Section 2.2
    /// algorithm. See [`crate::generate`] for the construction.
    pub fn generate(layout: &DiskLayout) -> Result<Self, SchedError> {
        generate::multi_disk_program(layout)
    }

    /// Builds a program from an explicit slot sequence.
    ///
    /// Used for the baseline programs (flat, skewed, random) and by tests.
    /// Page ids must be dense: every page in `0..=max` must appear at least
    /// once. `disk_of` labels each page with a disk index for access-location
    /// accounting; pass `None` to place everything on disk 0.
    pub fn from_slots(
        slots: Vec<Slot>,
        disk_of: Option<&dyn Fn(PageId) -> u16>,
        disk_freqs: Vec<u64>,
    ) -> Result<Self, SchedError> {
        let num_pages = slots
            .iter()
            .filter_map(|s| match s {
                Slot::Page(p) => Some(p.index() + 1),
                Slot::Empty | Slot::Repair(_) | Slot::EpochFence | Slot::Pull(_) => None,
            })
            .max()
            .ok_or(SchedError::EmptyProgram)?;

        let mut page_slots = vec![Vec::new(); num_pages];
        let mut empty_slots = 0;
        let mut empty_starts = Vec::new();
        let mut repair_slots = 0;
        for (i, s) in slots.iter().enumerate() {
            match s {
                Slot::Page(p) => page_slots[p.index()].push(i as u32),
                Slot::Empty => {
                    empty_slots += 1;
                    empty_starts.push(i as u32);
                }
                Slot::Repair(_) => repair_slots += 1,
                Slot::EpochFence => {
                    panic!("EpochFence is an out-of-band marker, not a program slot")
                }
                Slot::Pull(_) => {
                    panic!("Pull is substituted at air time, not a program slot")
                }
            }
        }
        for (p, ps) in page_slots.iter().enumerate() {
            if ps.is_empty() {
                // Dense page-id requirement: a "page" that is never
                // broadcast cannot be retrieved and indicates a bug in the
                // caller's slot construction.
                panic!("page p{p} never appears in the program");
            }
        }
        let page_disk = match disk_of {
            Some(f) => (0..num_pages).map(|p| f(PageId(p as u32))).collect(),
            None => vec![0; num_pages],
        };
        Ok(Self {
            slots,
            page_slots,
            page_disk,
            disk_freqs,
            empty_slots,
            empty_starts,
            repair_slots,
        })
    }

    /// The broadcast period, in slots (= broadcast units).
    pub fn period(&self) -> usize {
        self.slots.len()
    }

    /// The slot sequence for one period.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of distinct pages broadcast.
    pub fn num_pages(&self) -> usize {
        self.page_slots.len()
    }

    /// Number of unused (padding) slots per period.
    pub fn empty_slots(&self) -> usize {
        self.empty_slots
    }

    /// Number of coded repair slots per period.
    pub fn repair_slots(&self) -> usize {
        self.repair_slots
    }

    /// Fraction of bandwidth wasted on padding.
    pub fn waste(&self) -> f64 {
        self.empty_slots as f64 / self.period() as f64
    }

    /// Relative frequency of each disk, fastest first (empty for programs
    /// built from raw slots without a layout).
    pub fn disk_frequencies(&self) -> &[u64] {
        &self.disk_freqs
    }

    /// Number of disks this program distinguishes (at least 1).
    pub fn num_disks(&self) -> usize {
        self.disk_freqs.len().max(
            self.page_disk
                .iter()
                .map(|&d| d as usize + 1)
                .max()
                .unwrap_or(1),
        )
    }

    /// The disk (0-based) that broadcasts `page`.
    pub fn disk_of(&self, page: PageId) -> usize {
        self.page_disk[page.index()] as usize
    }

    /// Broadcasts of `page` per period.
    pub fn frequency(&self, page: PageId) -> u64 {
        self.page_slots[page.index()].len() as u64
    }

    /// Fraction of the total bandwidth given to `page`.
    pub fn bandwidth_share(&self, page: PageId) -> f64 {
        self.frequency(page) as f64 / self.period() as f64
    }

    /// The fixed inter-arrival gap of `page` in broadcast units, or `None`
    /// if the page's broadcasts are *not* evenly spaced (e.g. in a skewed
    /// program).
    pub fn gap(&self, page: PageId) -> Option<f64> {
        let starts = &self.page_slots[page.index()];
        if starts.len() == 1 {
            return Some(self.period() as f64);
        }
        let expect = self.period() as f64 / starts.len() as f64;
        for w in starts.windows(2) {
            if (w[1] - w[0]) as f64 != expect {
                return None;
            }
        }
        // Wrap-around gap.
        let wrap = (self.period() as u32 - starts[starts.len() - 1] + starts[0]) as f64;
        (wrap == expect).then_some(expect)
    }

    /// All inter-arrival gaps of `page` within one period (including the
    /// wrap-around gap). Used by the analytic expected-delay model.
    pub fn gaps(&self, page: PageId) -> Vec<f64> {
        let starts = &self.page_slots[page.index()];
        let mut gaps = Vec::with_capacity(starts.len());
        for w in starts.windows(2) {
            gaps.push((w[1] - w[0]) as f64);
        }
        gaps.push((self.period() as u32 - starts[starts.len() - 1] + starts[0]) as f64);
        gaps
    }

    /// Slot offsets (within one period) at which `page` is broadcast.
    pub fn page_starts(&self, page: PageId) -> &[u32] {
        &self.page_slots[page.index()]
    }

    /// The slot broadcast at absolute slot sequence number `seq`, wrapping
    /// around the period. `seq` is the live engine's monotone slot counter:
    /// slot `seq` covers broadcast-unit time `[seq, seq+1)`.
    pub fn slot_at(&self, seq: u64) -> Slot {
        self.slots[(seq % self.period() as u64) as usize]
    }

    /// Iterates the broadcast from absolute slot `seq` onward, yielding
    /// `(seq, slot)` pairs forever (the program is periodic). This is the
    /// slot-level feed a real-time broadcast server drives its transport
    /// with; take or break when done.
    pub fn slots_from(&self, seq: u64) -> impl Iterator<Item = (u64, Slot)> + '_ {
        (seq..).map(move |s| (s, self.slot_at(s)))
    }

    /// The absolute time (slot start) at which `page` is next broadcast at
    /// or after time `t` (in broadcast units).
    ///
    /// A client that missed its cache waits from `t` until this instant;
    /// the paper's response time for the request is the difference.
    pub fn next_arrival(&self, page: PageId, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        let period = self.period() as f64;
        let starts = &self.page_slots[page.index()];
        let cycle = (t / period).floor();
        let phase = t - cycle * period;
        // First broadcast at offset >= phase, else wrap to next cycle.
        let idx = starts.partition_point(|&s| (s as f64) < phase);
        if idx < starts.len() {
            cycle * period + starts[idx] as f64
        } else {
            (cycle + 1.0) * period + starts[0] as f64
        }
    }

    /// Sorted slot offsets (within one period) of the empty padding slots.
    pub fn empty_starts(&self) -> &[u32] {
        &self.empty_starts
    }

    /// The absolute time (slot start) of the next empty padding slot at or
    /// after time `t`, or `None` if the program has no padding.
    ///
    /// This is the earliest instant a padding-fill pull arbiter can put a
    /// queued page on the air: the simulator's pull mirror and the live
    /// arbiter both derive a request's service slot from it, which is what
    /// keeps live-vs-sim parity bit-exact with pull enabled.
    pub fn next_empty_arrival(&self, t: f64) -> Option<f64> {
        debug_assert!(t >= 0.0);
        if self.empty_starts.is_empty() {
            return None;
        }
        let period = self.period() as f64;
        let starts = &self.empty_starts;
        let cycle = (t / period).floor();
        let phase = t - cycle * period;
        let idx = starts.partition_point(|&s| (s as f64) < phase);
        Some(if idx < starts.len() {
            cycle * period + starts[idx] as f64
        } else {
            (cycle + 1.0) * period + starts[0] as f64
        })
    }

    /// The coverage window of a repair slot at period offset `offset`: the
    /// period offsets of the most recent airing of each of the last
    /// `group` **distinct** coded pages aired before `offset` (cyclically),
    /// most-recent-first. Deduplication matters: XOR-combining two airings
    /// of the same page would cancel it out of the symbol.
    ///
    /// Only multi-airing pages are coded. A page broadcast once per period
    /// is the archetypal cold page: losing it means waiting a full period
    /// regardless (no repair slot can be placed "soon after" an airing that
    /// happens once), and any symbol covering it is dead weight until that
    /// period elapses. Skipping such pages keeps symbols usable and lets
    /// windows reach back *across* a cold disk's chunk to protect the slots
    /// before it. In a flat program where every page airs exactly once,
    /// nothing is multi-airing and all pages participate instead.
    ///
    /// This is the canonical window contract shared by the server-side
    /// encoder, the client-side decoder, and the analytic loss model —
    /// all three must walk the same offsets or coded recovery silently
    /// corrupts (the decoder XORs the wrong pages).
    pub fn coverage_window(&self, offset: u32, group: usize) -> Vec<u32> {
        let period = self.period() as u32;
        let hot_only = self.page_slots.iter().any(|s| s.len() >= 2);
        let mut pages: Vec<PageId> = Vec::with_capacity(group);
        let mut window = Vec::with_capacity(group);
        for d in 1..period {
            let o = (offset + period - d) % period;
            if let Slot::Page(p) = self.slots[o as usize] {
                if hot_only && self.page_slots[p.index()].len() < 2 {
                    continue;
                }
                if !pages.contains(&p) {
                    pages.push(p);
                    window.push(o);
                    if window.len() == group {
                        break;
                    }
                }
            }
        }
        window
    }

    /// Renders the program as a compact string, e.g. `"A B A C"` with
    /// letters for the first 26 pages and `p<N>` beyond; `-` marks padding.
    /// Intended for examples, docs, and the Figure 3 demo.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.period() * 2);
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match s {
                Slot::Page(p) if p.0 < 26 => out.push((b'A' + p.0 as u8) as char),
                Slot::Page(p) => out.push_str(&format!("p{}", p.0)),
                Slot::Empty => out.push('-'),
                Slot::Repair(_) => out.push('+'),
                Slot::EpochFence => out.push('|'),
                Slot::Pull(p) => out.push_str(&format!("<{}", p.0)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abac() -> BroadcastProgram {
        // Program (c) of Figure 2: the Multi-disk broadcast A B A C.
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(2)),
        ];
        BroadcastProgram::from_slots(slots, None, vec![]).unwrap()
    }

    fn aabc() -> BroadcastProgram {
        // Program (b) of Figure 2: the skewed broadcast A A B C.
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(2)),
        ];
        BroadcastProgram::from_slots(slots, None, vec![]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let p = abac();
        assert_eq!(p.period(), 4);
        assert_eq!(p.num_pages(), 3);
        assert_eq!(p.frequency(PageId(0)), 2);
        assert_eq!(p.frequency(PageId(1)), 1);
        assert_eq!(p.empty_slots(), 0);
        assert_eq!(p.waste(), 0.0);
        assert_eq!(p.bandwidth_share(PageId(0)), 0.5);
    }

    #[test]
    fn gap_detects_even_spacing() {
        let p = abac();
        assert_eq!(p.gap(PageId(0)), Some(2.0)); // evenly spaced
        assert_eq!(p.gap(PageId(1)), Some(4.0)); // single copy
        let s = aabc();
        assert_eq!(s.gap(PageId(0)), None); // clustered → uneven
        assert_eq!(s.gaps(PageId(0)), vec![1.0, 3.0]);
    }

    #[test]
    fn gaps_sum_to_period_times_freq_share() {
        let p = aabc();
        for page in 0..3 {
            let g: f64 = p.gaps(PageId(page)).iter().sum();
            assert_eq!(g, p.period() as f64);
        }
    }

    #[test]
    fn next_arrival_within_cycle() {
        let p = abac(); // A at 0 and 2
        assert_eq!(p.next_arrival(PageId(0), 0.0), 0.0);
        assert_eq!(p.next_arrival(PageId(0), 0.5), 2.0);
        assert_eq!(p.next_arrival(PageId(0), 2.0), 2.0);
        assert_eq!(p.next_arrival(PageId(0), 2.1), 4.0); // wraps to next cycle
        assert_eq!(p.next_arrival(PageId(2), 3.5), 7.0); // C at offset 3
    }

    #[test]
    fn next_arrival_deep_in_time() {
        let p = abac();
        // t = 1000.25, period 4 → phase 0.25 → next A at offset 2.
        assert_eq!(p.next_arrival(PageId(0), 1000.25), 1002.0);
        // Exactly on a broadcast instant counts as catching it.
        assert_eq!(p.next_arrival(PageId(1), 1001.0), 1001.0);
    }

    #[test]
    fn next_arrival_never_in_past() {
        let p = aabc();
        for page in 0..3u32 {
            let mut t = 0.0;
            while t < 30.0 {
                let a = p.next_arrival(PageId(page), t);
                assert!(a >= t, "arrival {a} before request {t} for page {page}");
                assert!(a - t <= p.period() as f64, "waited more than a period");
                t += 0.37;
            }
        }
    }

    #[test]
    fn slot_at_wraps_the_period() {
        let p = abac();
        assert_eq!(p.slot_at(0), Slot::Page(PageId(0)));
        assert_eq!(p.slot_at(3), Slot::Page(PageId(2)));
        assert_eq!(p.slot_at(4), Slot::Page(PageId(0))); // next cycle
        assert_eq!(p.slot_at(1_000_003), p.slot_at(3));
    }

    #[test]
    fn slots_from_agrees_with_slot_at_and_next_arrival() {
        let p = abac();
        let feed: Vec<(u64, Slot)> = p.slots_from(6).take(5).collect();
        assert_eq!(feed[0], (6, p.slot_at(6)));
        assert_eq!(feed[4], (10, p.slot_at(10)));
        // Every slot carrying a page is that page's next arrival at that
        // instant — the live feed and the simulator arithmetic agree.
        for (seq, slot) in p.slots_from(0).take(12) {
            if let Slot::Page(page) = slot {
                assert_eq!(p.next_arrival(page, seq as f64), seq as f64);
            }
        }
    }

    #[test]
    fn empty_slots_counted() {
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Empty,
            Slot::Page(PageId(0)),
            Slot::Empty,
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.empty_slots(), 2);
        assert_eq!(p.waste(), 0.5);
        assert_eq!(p.num_pages(), 1);
    }

    #[test]
    fn next_empty_arrival_walks_padding_slots() {
        // A - A - : padding at offsets 1 and 3.
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Empty,
            Slot::Page(PageId(0)),
            Slot::Empty,
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.empty_starts(), &[1, 3]);
        assert_eq!(p.next_empty_arrival(0.0), Some(1.0));
        assert_eq!(p.next_empty_arrival(1.0), Some(1.0));
        assert_eq!(p.next_empty_arrival(1.5), Some(3.0));
        assert_eq!(p.next_empty_arrival(3.5), Some(5.0)); // wraps
        assert_eq!(p.next_empty_arrival(1001.0), Some(1001.0));
        // No padding → no pull opportunity.
        let dense = abac();
        assert_eq!(dense.next_empty_arrival(7.0), None);
    }

    #[test]
    fn from_slots_rejects_all_empty() {
        let r = BroadcastProgram::from_slots(vec![Slot::Empty, Slot::Empty], None, vec![]);
        assert_eq!(r.unwrap_err(), SchedError::EmptyProgram);
    }

    #[test]
    #[should_panic(expected = "never appears")]
    fn from_slots_rejects_sparse_pages() {
        // Page 1 missing while page 2 present.
        let slots = vec![Slot::Page(PageId(0)), Slot::Page(PageId(2))];
        let _ = BroadcastProgram::from_slots(slots, None, vec![]);
    }

    #[test]
    fn render_small_program() {
        assert_eq!(abac().render(), "A B A C");
        let slots = vec![Slot::Page(PageId(0)), Slot::Empty];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.render(), "A -");
    }

    #[test]
    fn repair_slots_counted_and_rendered() {
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Repair(RepairId(0)),
            Slot::Page(PageId(0)),
            Slot::Empty,
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.repair_slots(), 1);
        assert_eq!(p.empty_slots(), 1);
        assert_eq!(p.num_pages(), 2);
        assert_eq!(p.render(), "A B + A -");
        assert_eq!(p.slot_at(2), Slot::Repair(RepairId(0)));
    }

    #[test]
    fn coverage_window_dedupes_pages_most_recent_first() {
        // A B A B + : window of size 2 at offset 4 covers B's *latest*
        // airing (offset 3) then A's (offset 2) — one entry per distinct
        // page, most-recent-first.
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Repair(RepairId(0)),
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.coverage_window(4, 2), vec![3, 2]);
        // A window larger than the coded-page count saturates.
        assert_eq!(p.coverage_window(4, 8), vec![3, 2]);
        // A B A + : B airs once per period — a cold page the code cannot
        // protect — so the window skips it and covers A alone.
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(0)),
            Slot::Repair(RepairId(0)),
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.coverage_window(3, 2), vec![2]);
        assert_eq!(p.coverage_window(3, 8), vec![2]);
        // Wrap-around in a flat program: every page airs exactly once, so
        // all pages participate and the window walks back across the
        // period end.
        let slots = vec![
            Slot::Repair(RepairId(0)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
        ];
        let p = BroadcastProgram::from_slots(slots, None, vec![]).unwrap();
        assert_eq!(p.coverage_window(0, 2), vec![2, 1]);
    }

    #[test]
    fn disk_labels_from_closure() {
        let slots = vec![
            Slot::Page(PageId(0)),
            Slot::Page(PageId(1)),
            Slot::Page(PageId(0)),
            Slot::Page(PageId(2)),
        ];
        let f = |p: PageId| if p.0 == 0 { 0u16 } else { 1u16 };
        let p = BroadcastProgram::from_slots(slots, Some(&f), vec![2, 1]).unwrap();
        assert_eq!(p.disk_of(PageId(0)), 0);
        assert_eq!(p.disk_of(PageId(2)), 1);
        assert_eq!(p.disk_frequencies(), &[2, 1]);
        assert_eq!(p.num_disks(), 2);
    }
}
