//! (1, m) air indexing: trading access time for tuning time.
//!
//! The paper repeatedly gestures at broadcast indexes: unused slots "can be
//! used to broadcast additional information such as indexes" (Section 2.2),
//! and the related-work discussion credits \[Imie94b\] ("Energy Efficient
//! Indexing on Air") with interleaving index information with data so that
//! battery-powered clients can *doze* instead of monitoring every slot.
//! This module implements the classic **(1, m) indexing** scheme from that
//! line of work on top of our broadcast programs:
//!
//! * the full index (page → slot offsets) is broadcast `m` times per major
//!   cycle, evenly interleaved with the data slots;
//! * a client wanting page `p` (1) probes one slot — every slot carries a
//!   pointer to the next index segment — then dozes, (2) wakes to read the
//!   index, then dozes again, and (3) wakes exactly when `p` goes by.
//!
//! Two metrics fall out, measured in broadcast units/slots:
//!
//! * **access time** — request to page-in-hand; grows with `m` because the
//!   replicated index dilutes data bandwidth;
//! * **tuning time** — slots spent actively listening (the energy cost);
//!   collapses from "equal to access time" (no index) to
//!   `1 + index_len + 1`, independent of the database size.

use crate::error::SchedError;
use crate::program::{BroadcastProgram, PageId, Slot};

/// A broadcast program with `m` interleaved index segments per cycle.
#[derive(Debug, Clone)]
pub struct IndexedBroadcast {
    data: BroadcastProgram,
    m: usize,
    /// Slots per index copy.
    index_len: usize,
    /// Augmented-timeline slot offsets at which each index segment starts.
    index_starts: Vec<u32>,
    /// Augmented-timeline slot offsets of every page's broadcasts.
    page_starts: Vec<Vec<u32>>,
    /// Augmented period.
    period: usize,
}

impl IndexedBroadcast {
    /// Interleaves `m` copies of the index into `program`.
    ///
    /// `entries_per_slot` is how many (page, offset) index entries fit in
    /// one broadcast slot — a function of the page size (e.g. a 4 KB page
    /// holds ~512 eight-byte entries).
    pub fn new(
        program: BroadcastProgram,
        m: usize,
        entries_per_slot: usize,
    ) -> Result<Self, SchedError> {
        if m == 0 || entries_per_slot == 0 {
            return Err(SchedError::EmptyProgram);
        }
        let t = program.period();
        if m > t {
            return Err(SchedError::EmptyProgram);
        }
        let index_len = program.num_pages().div_ceil(entries_per_slot);
        let period = t + m * index_len;

        // Segment k sits in front of data block k; data blocks are as
        // even as possible (sizes differ by at most one slot).
        let mut index_starts = Vec::with_capacity(m);
        let mut page_starts = vec![Vec::new(); program.num_pages()];
        let mut aug = 0u32;
        let mut data_cursor = 0usize;
        for k in 0..m {
            index_starts.push(aug);
            aug += index_len as u32;
            let block = t / m + usize::from(k < t % m);
            for _ in 0..block {
                if let Slot::Page(p) = program.slots()[data_cursor] {
                    page_starts[p.index()].push(aug);
                }
                data_cursor += 1;
                aug += 1;
            }
        }
        debug_assert_eq!(aug as usize, period);
        debug_assert_eq!(data_cursor, t);

        Ok(Self {
            data: program,
            m,
            index_len,
            index_starts,
            page_starts,
            period,
        })
    }

    /// Augmented period (data slots + `m` index copies).
    pub fn period(&self) -> usize {
        self.period
    }

    /// Index replication factor.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Slots per index copy.
    pub fn index_len(&self) -> usize {
        self.index_len
    }

    /// Fraction of the channel consumed by index traffic.
    pub fn overhead(&self) -> f64 {
        (self.m * self.index_len) as f64 / self.period as f64
    }

    /// The underlying data program.
    pub fn data_program(&self) -> &BroadcastProgram {
        &self.data
    }

    /// Start time of the next index segment at or after `t`.
    pub fn next_index(&self, t: f64) -> f64 {
        next_from_starts(&self.index_starts, self.period, t)
    }

    /// Start time of the next broadcast of `page` at or after `t`.
    pub fn next_arrival(&self, page: PageId, t: f64) -> f64 {
        next_from_starts(&self.page_starts[page.index()], self.period, t)
    }

    /// Runs the (1, m) client protocol for one request issued at `t`.
    ///
    /// Returns `(access_time, tuning_time)`: the client probes one slot,
    /// dozes to the next index segment, listens through it, dozes to the
    /// page's next broadcast after the index, and listens for the page
    /// slot itself.
    pub fn access_and_tuning(&self, page: PageId, t: f64) -> (f64, f64) {
        // Initial probe: listen to the slot in progress to learn where the
        // next index segment starts (every slot carries that pointer).
        let probe_end = t.floor() + 1.0;
        let index_start = self.next_index(probe_end);
        let index_end = index_start + self.index_len as f64;
        // The index tells the exact slot of the page; doze until it.
        let page_start = self.next_arrival(page, index_end);
        let access = page_start + 1.0 - t;
        let tuning = (probe_end - t) + self.index_len as f64 + 1.0;
        (access, tuning)
    }

    /// Expected access and tuning time under an access distribution,
    /// averaged analytically over a uniform request instant (computed by
    /// exact summation over all slot phases).
    pub fn expected_access_and_tuning(&self, probs: &[f64]) -> (f64, f64) {
        assert!(probs.len() <= self.page_starts.len());
        let mut access = 0.0;
        let mut tuning = 0.0;
        let period = self.period as f64;
        for (p, &pr) in probs.iter().enumerate() {
            if pr == 0.0 {
                continue;
            }
            // Average over request instants uniform in one period; by
            // symmetry integrate per whole slot with the request at the
            // slot midpoint (access is affine in the offset within a slot).
            let mut acc_sum = 0.0;
            let mut tun_sum = 0.0;
            for s in 0..self.period {
                let t = s as f64 + 0.5;
                let (a, u) = self.access_and_tuning(PageId(p as u32), t);
                acc_sum += a;
                tun_sum += u;
            }
            access += pr * acc_sum / period;
            tuning += pr * tun_sum / period;
        }
        (access, tuning)
    }
}

/// Smallest start time `>= t` among periodic `starts`.
fn next_from_starts(starts: &[u32], period: usize, t: f64) -> f64 {
    let period = period as f64;
    let cycle = (t / period).floor();
    let phase = t - cycle * period;
    let idx = starts.partition_point(|&s| (s as f64) < phase);
    if idx < starts.len() {
        cycle * period + starts[idx] as f64
    } else {
        (cycle + 1.0) * period + starts[0] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskLayout;
    use crate::generate::flat_program;

    fn indexed(m: usize) -> IndexedBroadcast {
        // 16-page flat program, 4 entries per slot → index_len 4.
        let p = flat_program(16).unwrap();
        IndexedBroadcast::new(p, m, 4).unwrap()
    }

    #[test]
    fn period_accounts_for_index_copies() {
        let ib = indexed(2);
        assert_eq!(ib.index_len(), 4);
        assert_eq!(ib.period(), 16 + 2 * 4);
        assert!((ib.overhead() - 8.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn index_segments_evenly_spaced() {
        let ib = indexed(4);
        // Segments at 0, 4+4=8... data blocks of 4 each: starts 0, 8, 16, 24.
        assert_eq!(ib.index_starts, vec![0, 8, 16, 24]);
        assert_eq!(ib.period(), 32);
    }

    #[test]
    fn every_page_still_broadcast() {
        let ib = indexed(3);
        for p in 0..16u32 {
            assert_eq!(
                ib.page_starts[p as usize].len(),
                1,
                "page {p} must appear once per cycle"
            );
        }
    }

    #[test]
    fn tuning_time_is_constant_and_small() {
        let ib = indexed(2);
        for page in [0u32, 7, 15] {
            for t in [0.25, 3.7, 11.0, 23.9] {
                let (access, tuning) = ib.access_and_tuning(PageId(page), t);
                // probe remainder (<1) + index_len + 1 page slot.
                assert!(tuning <= 1.0 + 4.0 + 1.0 + 1e-9, "tuning {tuning}");
                assert!(tuning >= 4.0 + 1.0, "tuning {tuning}");
                assert!(access >= tuning - 1.0, "access below listening time");
                assert!(access <= 2.0 * ib.period() as f64, "access {access}");
            }
        }
    }

    #[test]
    fn access_follows_protocol_order() {
        let ib = indexed(2);
        // Request just after the cycle starts: probe ends at 1, but the
        // index started at 0, so the client waits for the next segment.
        let (access, _) = ib.access_and_tuning(PageId(0), 0.5);
        // Next index at 12 (start of second segment), ends 16; page 0's
        // next broadcast after 16 is at 24+4=28 (next cycle, first block).
        assert_eq!(ib.next_index(1.0), 12.0);
        assert_eq!(access, 28.0 + 1.0 - 0.5);
    }

    #[test]
    fn larger_m_cuts_probe_wait_but_adds_overhead() {
        // 256 data slots, index_len 4 → the classic optimum is
        // m* ≈ sqrt(T / index_len) = 8: access time is U-shaped in m.
        let big = |m: usize| {
            let p = flat_program(256).unwrap();
            IndexedBroadcast::new(p, m, 64).unwrap()
        };
        let probs = vec![1.0 / 256.0; 256];

        let (a1, t1) = big(1).expected_access_and_tuning(&probs);
        let (a8, t8) = big(8).expected_access_and_tuning(&probs);
        let (a64, t64) = big(64).expected_access_and_tuning(&probs);
        // Tuning time barely moves (constant protocol cost).
        assert!((t1 - t8).abs() < 1.0, "{t1} vs {t8}");
        assert!((t8 - t64).abs() < 1.0);
        // Access time: classic U-shape — probe wait dominates at m=1,
        // index dilution at m=64; the sqrt-optimum wins.
        assert!(a8 < a1, "m=8 ({a8}) should beat m=1 ({a1})");
        assert!(a8 < a64, "m=8 ({a8}) should beat m=64 ({a64})");
    }

    #[test]
    fn works_on_multi_disk_programs() {
        let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let ib = IndexedBroadcast::new(program, 4, 8).unwrap();
        assert_eq!(ib.index_len(), 2); // 11 pages / 8 per slot
        assert_eq!(ib.period(), 16 + 4 * 2);
        // Hot page still appears 4 times per cycle.
        assert_eq!(ib.page_starts[0].len(), 4);
        let (access, tuning) = ib.access_and_tuning(PageId(0), 2.3);
        assert!(access > 0.0 && tuning > 0.0);
        assert!(tuning < access, "client dozes most of the wait");
    }

    #[test]
    fn no_index_comparison_tuning_equals_access() {
        // Baseline for the tradeoff: without an index the client listens
        // from request to arrival, so tuning = access by definition. The
        // indexed client's tuning must be far below that for cold pages.
        let layout = DiskLayout::new(vec![2, 14], vec![2, 1]).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let plain_wait =
            crate::program::BroadcastProgram::next_arrival(&program, PageId(15), 0.2) - 0.2;
        let ib = IndexedBroadcast::new(program, 2, 8).unwrap();
        let (_, tuning) = ib.access_and_tuning(PageId(15), 0.2);
        assert!(
            tuning < plain_wait,
            "indexed tuning {tuning} must beat always-on listening {plain_wait}"
        );
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let p = flat_program(4).unwrap();
        assert!(IndexedBroadcast::new(p.clone(), 0, 4).is_err());
        assert!(IndexedBroadcast::new(p.clone(), 1, 0).is_err());
        assert!(IndexedBroadcast::new(p, 5, 4).is_err()); // m > period
    }
}
