//! Error type for schedule construction.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a [`crate::DiskLayout`] or generating a
/// [`crate::BroadcastProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A layout must have at least one disk.
    NoDisks,
    /// Disk sizes and relative frequencies must have the same length.
    LengthMismatch {
        /// Number of disk sizes supplied.
        sizes: usize,
        /// Number of relative frequencies supplied.
        freqs: usize,
    },
    /// Every disk must hold at least one page.
    EmptyDisk {
        /// Index (0-based) of the offending disk.
        disk: usize,
    },
    /// Relative frequencies must be positive integers (Section 2.2).
    ZeroFrequency {
        /// Index (0-based) of the offending disk.
        disk: usize,
    },
    /// Disks must be ordered fastest to slowest (frequencies non-increasing),
    /// matching the paper's convention that disk 1 is the fastest.
    UnorderedFrequencies,
    /// The program would be empty (no pages at all).
    EmptyProgram,
    /// A broadcast plan must have at least one channel.
    NoChannels,
    /// Striping the layout left a channel with no pages (more channels than
    /// the largest disk can populate).
    EmptyChannel {
        /// Index (0-based) of the offending channel.
        channel: usize,
    },
    /// A coding configuration was rejected (rate out of range, zero group).
    InvalidCoding {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoDisks => write!(f, "a disk layout needs at least one disk"),
            SchedError::LengthMismatch { sizes, freqs } => write!(
                f,
                "layout has {sizes} disk sizes but {freqs} relative frequencies"
            ),
            SchedError::EmptyDisk { disk } => {
                write!(f, "disk {} has no pages", disk + 1)
            }
            SchedError::ZeroFrequency { disk } => {
                write!(
                    f,
                    "disk {} has relative frequency 0 (must be >= 1)",
                    disk + 1
                )
            }
            SchedError::UnorderedFrequencies => write!(
                f,
                "relative frequencies must be non-increasing (disk 1 is the fastest)"
            ),
            SchedError::EmptyProgram => write!(f, "broadcast program contains no pages"),
            SchedError::NoChannels => write!(f, "a broadcast plan needs at least one channel"),
            SchedError::EmptyChannel { channel } => {
                write!(
                    f,
                    "channel {channel} has no pages (too many channels for this layout)"
                )
            }
            SchedError::InvalidCoding { reason } => {
                write!(f, "invalid coding config: {reason}")
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SchedError::NoDisks.to_string(),
            "a disk layout needs at least one disk"
        );
        assert_eq!(
            SchedError::LengthMismatch { sizes: 2, freqs: 3 }.to_string(),
            "layout has 2 disk sizes but 3 relative frequencies"
        );
        assert_eq!(
            SchedError::EmptyDisk { disk: 0 }.to_string(),
            "disk 1 has no pages"
        );
        assert!(SchedError::ZeroFrequency { disk: 1 }
            .to_string()
            .contains("disk 2"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(SchedError::EmptyProgram);
        assert!(e.to_string().contains("no pages"));
    }
}
