//! Automated broadcast-program design.
//!
//! The paper leaves "the automatic determination of these parameters for a
//! given access probability distribution" as an open optimization problem
//! (Section 2.2) and asks for "concrete design principles for deciding how
//! many disks to use, what the best relative spinning speeds should be, and
//! how to segment the client access range" (Section 7). This module is that
//! extension: a direct search over the paper's own knob space —
//! number of disks, Δ, and partition boundaries — minimizing the *analytic*
//! no-cache expected delay
//!
//! ```text
//! E[delay] = Σ_p  prob(p) · period / (2 · rel_freq(disk(p)))
//! ```
//!
//! which is exact for multi-disk programs because their per-page
//! inter-arrival times are fixed. The period accounts for chunk padding, so
//! configurations that waste many slots are penalized automatically.

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::lcm;

/// Search-space bounds for [`optimize_layout`].
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Largest number of disks to consider (the paper anticipates 2–5).
    pub max_disks: usize,
    /// Largest Δ to consider (the paper sweeps 0–7).
    pub max_delta: u64,
    /// Cap on candidate partition boundaries; when the page count exceeds
    /// this, boundaries are restricted to evenly spaced positions.
    pub max_candidates: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            max_disks: 3,
            max_delta: 7,
            max_candidates: 48,
        }
    }
}

/// Result of a layout search.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    /// The best layout found.
    pub layout: DiskLayout,
    /// The Δ that produced its frequencies.
    pub delta: u64,
    /// Its analytic expected delay, in broadcast units.
    pub expected_delay: f64,
}

/// Finds the layout (disk count, Δ, partition boundaries) minimizing the
/// analytic no-cache expected delay for the given per-page access
/// probabilities.
///
/// `probs[p]` is the access probability of page `p` *in broadcast order*
/// (hottest first — the precondition of the Section 2.2 algorithm; pass a
/// sorted distribution). Probabilities need not sum to one; they are used
/// as weights.
pub fn optimize_layout(
    probs: &[f64],
    cfg: &OptimizerConfig,
) -> Result<OptimizedLayout, SchedError> {
    if probs.is_empty() {
        return Err(SchedError::EmptyProgram);
    }
    let n = probs.len();

    // Prefix sums of probability mass for O(1) range mass.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &p in probs {
        prefix.push(prefix.last().unwrap() + p);
    }
    let total_mass: f64 = prefix[n];

    // Candidate boundaries (positions where one disk may end), excluding 0
    // and n, thinned to at most max_candidates.
    let interior = n.saturating_sub(1);
    let candidates: Vec<usize> = if interior <= cfg.max_candidates {
        (1..n).collect()
    } else {
        (1..=cfg.max_candidates)
            .map(|i| 1 + (i - 1) * (interior - 1) / (cfg.max_candidates - 1))
            .collect()
    };

    // Flat broadcast is the K = 1 baseline.
    let mut best = OptimizedLayout {
        layout: DiskLayout::new(vec![n], vec![1])?,
        delta: 0,
        expected_delay: total_mass * n as f64 / 2.0,
    };

    let max_disks = cfg.max_disks.min(n);
    for k in 2..=max_disks {
        for delta in 1..=cfg.max_delta {
            // rel_freq(i) = (k − i)·Δ + 1, disks 1..=k.
            let freqs: Vec<u64> = (1..=k as u64).map(|i| (k as u64 - i) * delta + 1).collect();
            let max_chunks = freqs.iter().copied().fold(1u64, lcm);
            let num_chunks: Vec<u64> = freqs.iter().map(|&f| max_chunks / f).collect();

            let mut bounds = vec![0usize; k + 1];
            bounds[k] = n;
            search_boundaries(
                &candidates,
                &prefix,
                &freqs,
                &num_chunks,
                max_chunks,
                &mut bounds,
                1,
                0,
                delta,
                &mut best,
            );
        }
    }
    Ok(best)
}

/// Recursively chooses `bounds[level..k]` from `candidates`, evaluating the
/// full configuration at the leaves.
#[allow(clippy::too_many_arguments)]
fn search_boundaries(
    candidates: &[usize],
    prefix: &[f64],
    freqs: &[u64],
    num_chunks: &[u64],
    max_chunks: u64,
    bounds: &mut Vec<usize>,
    level: usize,
    min_candidate_idx: usize,
    delta: u64,
    best: &mut OptimizedLayout,
) {
    let k = freqs.len();
    if level == k {
        if let Some(delay) = evaluate(prefix, freqs, num_chunks, max_chunks, bounds) {
            if delay < best.expected_delay {
                let sizes: Vec<usize> = (0..k).map(|i| bounds[i + 1] - bounds[i]).collect();
                if let Ok(layout) = DiskLayout::new(sizes, freqs.to_vec()) {
                    *best = OptimizedLayout {
                        layout,
                        delta,
                        expected_delay: delay,
                    };
                }
            }
        }
        return;
    }
    for (ci, &c) in candidates.iter().enumerate().skip(min_candidate_idx) {
        if c <= bounds[level - 1] {
            continue;
        }
        if c >= bounds[k] {
            break;
        }
        bounds[level] = c;
        search_boundaries(
            candidates,
            prefix,
            freqs,
            num_chunks,
            max_chunks,
            bounds,
            level + 1,
            ci + 1,
            delta,
            best,
        );
    }
}

/// Analytic expected delay of a fully specified configuration, or `None`
/// when a disk would be empty.
fn evaluate(
    prefix: &[f64],
    freqs: &[u64],
    num_chunks: &[u64],
    max_chunks: u64,
    bounds: &[usize],
) -> Option<f64> {
    let k = freqs.len();
    // Period from padded chunk sizes, exactly as the generator computes it.
    let mut minor_len = 0usize;
    for i in 0..k {
        let size = bounds[i + 1] - bounds[i];
        if size == 0 {
            return None;
        }
        minor_len += size.div_ceil(num_chunks[i] as usize);
    }
    let period = max_chunks as usize * minor_len;

    let mut delay = 0.0;
    for i in 0..k {
        let mass = prefix[bounds[i + 1]] - prefix[bounds[i]];
        delay += mass * period as f64 / (2.0 * freqs[i] as f64);
    }
    Some(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_probs(n: usize, theta: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (1..=n).map(|i| (1.0 / i as f64).powf(theta)).collect();
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|p| *p /= s);
        v
    }

    #[test]
    fn uniform_access_prefers_flat() {
        // Fundamental constraint (Table 1, point 1): with uniform access a
        // flat disk is optimal.
        let probs = vec![0.1; 10];
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert_eq!(best.layout.num_disks(), 1);
        assert_eq!(best.delta, 0);
        assert!((best.expected_delay - 5.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_access_prefers_multi_disk() {
        let probs = zipf_probs(100, 0.95);
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert!(best.layout.num_disks() >= 2, "layout = {:?}", best.layout);
        // Must beat flat (expected 50).
        assert!(
            best.expected_delay < 50.0,
            "delay = {}",
            best.expected_delay
        );
        // Fast disk should be smaller than slow disk.
        let sizes = best.layout.sizes();
        assert!(sizes[0] < sizes[sizes.len() - 1], "sizes = {sizes:?}");
    }

    #[test]
    fn extreme_skew_shrinks_fast_disk() {
        // One page takes 90% of accesses.
        let mut probs = vec![0.1 / 99.0; 100];
        probs[0] = 0.9;
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert!(best.layout.num_disks() >= 2);
        assert!(
            best.layout.sizes()[0] <= 10,
            "sizes = {:?}",
            best.layout.sizes()
        );
        assert!(best.expected_delay < 25.0);
    }

    #[test]
    fn objective_matches_generated_program() {
        // The optimizer's analytic objective must equal the true expected
        // delay of the generated program.
        let probs = zipf_probs(60, 0.95);
        let cfg = OptimizerConfig {
            max_disks: 3,
            max_delta: 4,
            max_candidates: 20,
        };
        let best = optimize_layout(&probs, &cfg).unwrap();
        let program = crate::BroadcastProgram::generate(&best.layout).unwrap();
        let mut expect = 0.0;
        for (p, &pr) in probs.iter().enumerate() {
            let gap = program
                .gap(crate::PageId(p as u32))
                .expect("multi-disk programs have fixed gaps");
            expect += pr * gap / 2.0;
        }
        assert!(
            (expect - best.expected_delay).abs() < 1e-6,
            "analytic {} vs program {}",
            best.expected_delay,
            expect
        );
    }

    #[test]
    fn empty_probs_rejected() {
        assert!(optimize_layout(&[], &OptimizerConfig::default()).is_err());
    }

    #[test]
    fn candidate_thinning_still_works() {
        let probs = zipf_probs(500, 0.95);
        let cfg = OptimizerConfig {
            max_disks: 2,
            max_delta: 3,
            max_candidates: 8,
        };
        let best = optimize_layout(&probs, &cfg).unwrap();
        assert!(best.expected_delay <= 250.0);
    }
}
