//! Automated broadcast-program design.
//!
//! The paper leaves "the automatic determination of these parameters for a
//! given access probability distribution" as an open optimization problem
//! (Section 2.2) and asks for "concrete design principles for deciding how
//! many disks to use, what the best relative spinning speeds should be, and
//! how to segment the client access range" (Section 7). This module is that
//! extension: a direct search over the paper's own knob space —
//! number of disks, Δ, and partition boundaries — minimizing the *analytic*
//! no-cache expected delay
//!
//! ```text
//! E[delay] = Σ_p  prob(p) · period(channel(p)) / (2 · rel_freq(disk(p)))
//! ```
//!
//! which is exact for multi-disk programs because their per-page
//! inter-arrival times are fixed. The period accounts for chunk padding, so
//! configurations that waste many slots are penalized automatically.
//!
//! With [`OptimizerConfig::max_channels`] > 1 the search also considers
//! striping the layout across multiple broadcast channels (the
//! [`crate::BroadcastPlan`] generalization): each candidate is evaluated
//! per channel with the exact per-channel period the striped sub-layout
//! would produce, so the objective still matches the generated plan to
//! machine precision. Per-page frequency is then per-channel: a page's
//! airings per unit time are its disk's relative frequency over its *own
//! channel's* (shorter) period.

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::lcm;

/// Search-space bounds for [`optimize_layout`].
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Largest number of disks to consider (the paper anticipates 2–5).
    pub max_disks: usize,
    /// Largest Δ to consider (the paper sweeps 0–7).
    pub max_delta: u64,
    /// Cap on candidate partition boundaries; when the page count exceeds
    /// this, boundaries are restricted to evenly spaced positions.
    pub max_candidates: usize,
    /// Largest broadcast-channel count to consider. 1 (the default)
    /// restricts the search to the paper's single-channel setting.
    pub max_channels: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            max_disks: 3,
            max_delta: 7,
            max_candidates: 48,
            max_channels: 1,
        }
    }
}

/// Result of a layout search.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    /// The best layout found.
    pub layout: DiskLayout,
    /// The Δ that produced its frequencies.
    pub delta: u64,
    /// Number of broadcast channels the layout should be striped across
    /// (1 = the paper's single channel).
    pub channels: usize,
    /// Its analytic expected delay, in broadcast units.
    pub expected_delay: f64,
}

/// Immutable inputs of one (disk count, Δ, channel count) search slice.
struct SearchCtx<'a> {
    candidates: &'a [usize],
    /// Plain prefix sums of probability mass (`prefix[x]` = mass of pages
    /// `0..x`).
    prefix: &'a [f64],
    /// For `channels > 1`: per-residue strided prefix sums —
    /// `stripes[r][x]` = mass of pages `p < x` with `p ≡ r (mod channels)`.
    stripes: Option<&'a [Vec<f64>]>,
    channels: usize,
    freqs: &'a [u64],
    /// Chunk counts per disk for the single-channel fast path.
    num_chunks: &'a [u64],
    max_chunks: u64,
    delta: u64,
}

/// Finds the layout (disk count, Δ, partition boundaries, and — when
/// `cfg.max_channels > 1` — channel count) minimizing the analytic no-cache
/// expected delay for the given per-page access probabilities.
///
/// `probs[p]` is the access probability of page `p` *in broadcast order*
/// (hottest first — the precondition of the Section 2.2 algorithm; pass a
/// sorted distribution). Probabilities need not sum to one; they are used
/// as weights.
pub fn optimize_layout(
    probs: &[f64],
    cfg: &OptimizerConfig,
) -> Result<OptimizedLayout, SchedError> {
    if probs.is_empty() {
        return Err(SchedError::EmptyProgram);
    }
    if cfg.max_channels == 0 {
        return Err(SchedError::NoChannels);
    }
    let n = probs.len();

    // Prefix sums of probability mass for O(1) range mass.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &p in probs {
        prefix.push(prefix.last().unwrap() + p);
    }
    let total_mass: f64 = prefix[n];

    // Strided prefix sums per channel count > 1: stripes_by_c[c - 2][r][x].
    let max_channels = cfg.max_channels.min(n);
    let stripes_by_c: Vec<Vec<Vec<f64>>> = (2..=max_channels)
        .map(|c| {
            let mut tables = vec![vec![0.0; n + 1]; c];
            for (r, table) in tables.iter_mut().enumerate() {
                for x in 0..n {
                    table[x + 1] = table[x] + if x % c == r { probs[x] } else { 0.0 };
                }
            }
            tables
        })
        .collect();

    // Candidate boundaries (positions where one disk may end), excluding 0
    // and n, thinned to at most max_candidates.
    let interior = n.saturating_sub(1);
    let candidates: Vec<usize> = if interior <= cfg.max_candidates {
        (1..n).collect()
    } else {
        (1..=cfg.max_candidates)
            .map(|i| 1 + (i - 1) * (interior - 1) / (cfg.max_candidates - 1))
            .collect()
    };

    // Flat single-channel broadcast is the K = 1, C = 1 baseline.
    let mut best = OptimizedLayout {
        layout: DiskLayout::new(vec![n], vec![1])?,
        delta: 0,
        channels: 1,
        expected_delay: total_mass * n as f64 / 2.0,
    };

    let max_disks = cfg.max_disks.min(n);
    for channels in 1..=max_channels {
        let stripes = (channels > 1).then(|| stripes_by_c[channels - 2].as_slice());

        if channels > 1 {
            // Flat layout striped across the channels (K = 1).
            let ctx = SearchCtx {
                candidates: &candidates,
                prefix: &prefix,
                stripes,
                channels,
                freqs: &[1],
                num_chunks: &[1],
                max_chunks: 1,
                delta: 0,
            };
            consider(&ctx, &[0, n], &mut best);
        }

        for k in 2..=max_disks {
            for delta in 1..=cfg.max_delta {
                // rel_freq(i) = (k − i)·Δ + 1, disks 1..=k.
                let freqs: Vec<u64> = (1..=k as u64).map(|i| (k as u64 - i) * delta + 1).collect();
                let max_chunks = freqs.iter().copied().fold(1u64, lcm);
                let num_chunks: Vec<u64> = freqs.iter().map(|&f| max_chunks / f).collect();

                let ctx = SearchCtx {
                    candidates: &candidates,
                    prefix: &prefix,
                    stripes,
                    channels,
                    freqs: &freqs,
                    num_chunks: &num_chunks,
                    max_chunks,
                    delta,
                };
                let mut bounds = vec![0usize; k + 1];
                bounds[k] = n;
                search_boundaries(&ctx, &mut bounds, 1, 0, &mut best);
            }
        }
    }
    Ok(best)
}

/// Recursively chooses `bounds[level..k]` from the candidate set, evaluating
/// the full configuration at the leaves.
fn search_boundaries(
    ctx: &SearchCtx<'_>,
    bounds: &mut Vec<usize>,
    level: usize,
    min_candidate_idx: usize,
    best: &mut OptimizedLayout,
) {
    let k = ctx.freqs.len();
    if level == k {
        consider(ctx, bounds, best);
        return;
    }
    for (ci, &c) in ctx.candidates.iter().enumerate().skip(min_candidate_idx) {
        if c <= bounds[level - 1] {
            continue;
        }
        if c >= bounds[k] {
            break;
        }
        bounds[level] = c;
        search_boundaries(ctx, bounds, level + 1, ci + 1, best);
    }
}

/// Evaluates one fully specified configuration and replaces `best` when it
/// improves on it.
fn consider(ctx: &SearchCtx<'_>, bounds: &[usize], best: &mut OptimizedLayout) {
    let delay = if ctx.channels == 1 {
        evaluate(
            ctx.prefix,
            ctx.freqs,
            ctx.num_chunks,
            ctx.max_chunks,
            bounds,
        )
    } else {
        evaluate_channels(ctx, bounds)
    };
    if let Some(delay) = delay {
        if delay < best.expected_delay {
            let k = ctx.freqs.len();
            let sizes: Vec<usize> = (0..k).map(|i| bounds[i + 1] - bounds[i]).collect();
            if let Ok(layout) = DiskLayout::new(sizes, ctx.freqs.to_vec()) {
                *best = OptimizedLayout {
                    layout,
                    delta: ctx.delta,
                    channels: ctx.channels,
                    expected_delay: delay,
                };
            }
        }
    }
}

/// Analytic expected delay of a fully specified single-channel
/// configuration, or `None` when a disk would be empty.
fn evaluate(
    prefix: &[f64],
    freqs: &[u64],
    num_chunks: &[u64],
    max_chunks: u64,
    bounds: &[usize],
) -> Option<f64> {
    let k = freqs.len();
    // Period from padded chunk sizes, exactly as the generator computes it.
    let mut minor_len = 0usize;
    for i in 0..k {
        let size = bounds[i + 1] - bounds[i];
        if size == 0 {
            return None;
        }
        minor_len += size.div_ceil(num_chunks[i] as usize);
    }
    let period = max_chunks as usize * minor_len;

    let mut delay = 0.0;
    for i in 0..k {
        let mass = prefix[bounds[i + 1]] - prefix[bounds[i]];
        delay += mass * period as f64 / (2.0 * freqs[i] as f64);
    }
    Some(delay)
}

/// Analytic expected delay of a configuration striped across
/// `ctx.channels` channels, exactly mirroring
/// [`crate::BroadcastPlan::generate`]: channel `c` receives in-disk offsets
/// `≡ c (mod channels)` of every disk, disks that contribute no pages drop
/// out, and the channel's period comes from the LCM of the *remaining*
/// frequencies. `None` when a disk or a channel would be empty.
fn evaluate_channels(ctx: &SearchCtx<'_>, bounds: &[usize]) -> Option<f64> {
    let k = ctx.freqs.len();
    let chans = ctx.channels;
    let stripes = ctx.stripes.expect("stripes precomputed for channels > 1");
    for i in 0..k {
        if bounds[i + 1] == bounds[i] {
            return None;
        }
    }

    let mut delay = 0.0;
    let mut ch_freqs: Vec<u64> = Vec::with_capacity(k);
    let mut ch_counts: Vec<usize> = Vec::with_capacity(k);
    let mut ch_masses: Vec<f64> = Vec::with_capacity(k);
    for c in 0..chans {
        ch_freqs.clear();
        ch_counts.clear();
        ch_masses.clear();
        for i in 0..k {
            let size = bounds[i + 1] - bounds[i];
            if size <= c {
                continue; // disk too small to reach this channel
            }
            let count = (size - c).div_ceil(chans);
            let r = (bounds[i] + c) % chans;
            let mass = stripes[r][bounds[i + 1]] - stripes[r][bounds[i]];
            ch_freqs.push(ctx.freqs[i]);
            ch_counts.push(count);
            ch_masses.push(mass);
        }
        if ch_freqs.is_empty() {
            return None; // empty channel: plan generation would reject it
        }
        let max_chunks = ch_freqs.iter().copied().fold(1u64, lcm);
        let mut minor_len = 0usize;
        for (j, &f) in ch_freqs.iter().enumerate() {
            minor_len += ch_counts[j].div_ceil((max_chunks / f) as usize);
        }
        let period = max_chunks as usize * minor_len;
        for (j, &f) in ch_freqs.iter().enumerate() {
            delay += ch_masses[j] * period as f64 / (2.0 * f as f64);
        }
    }
    Some(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_probs(n: usize, theta: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (1..=n).map(|i| (1.0 / i as f64).powf(theta)).collect();
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|p| *p /= s);
        v
    }

    #[test]
    fn uniform_access_prefers_flat() {
        // Fundamental constraint (Table 1, point 1): with uniform access a
        // flat disk is optimal.
        let probs = vec![0.1; 10];
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert_eq!(best.layout.num_disks(), 1);
        assert_eq!(best.delta, 0);
        assert_eq!(best.channels, 1);
        assert!((best.expected_delay - 5.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_access_prefers_multi_disk() {
        let probs = zipf_probs(100, 0.95);
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert!(best.layout.num_disks() >= 2, "layout = {:?}", best.layout);
        // Must beat flat (expected 50).
        assert!(
            best.expected_delay < 50.0,
            "delay = {}",
            best.expected_delay
        );
        // Fast disk should be smaller than slow disk.
        let sizes = best.layout.sizes();
        assert!(sizes[0] < sizes[sizes.len() - 1], "sizes = {sizes:?}");
    }

    #[test]
    fn extreme_skew_shrinks_fast_disk() {
        // One page takes 90% of accesses.
        let mut probs = vec![0.1 / 99.0; 100];
        probs[0] = 0.9;
        let best = optimize_layout(&probs, &OptimizerConfig::default()).unwrap();
        assert!(best.layout.num_disks() >= 2);
        assert!(
            best.layout.sizes()[0] <= 10,
            "sizes = {:?}",
            best.layout.sizes()
        );
        assert!(best.expected_delay < 25.0);
    }

    #[test]
    fn objective_matches_generated_program() {
        // The optimizer's analytic objective must equal the true expected
        // delay of the generated program.
        let probs = zipf_probs(60, 0.95);
        let cfg = OptimizerConfig {
            max_disks: 3,
            max_delta: 4,
            max_candidates: 20,
            max_channels: 1,
        };
        let best = optimize_layout(&probs, &cfg).unwrap();
        let program = crate::BroadcastProgram::generate(&best.layout).unwrap();
        let mut expect = 0.0;
        for (p, &pr) in probs.iter().enumerate() {
            let gap = program
                .gap(crate::PageId(p as u32))
                .expect("multi-disk programs have fixed gaps");
            expect += pr * gap / 2.0;
        }
        assert!(
            (expect - best.expected_delay).abs() < 1e-6,
            "analytic {} vs program {}",
            best.expected_delay,
            expect
        );
    }

    #[test]
    fn channel_objective_matches_generated_plan() {
        // With channels in the search space, the objective must equal the
        // true expected delay of the striped plan the winner generates.
        let probs = zipf_probs(60, 0.95);
        let cfg = OptimizerConfig {
            max_disks: 3,
            max_delta: 4,
            max_candidates: 20,
            max_channels: 3,
        };
        let best = optimize_layout(&probs, &cfg).unwrap();
        assert!(best.channels >= 2, "more channels should win: {best:?}");
        let plan = crate::BroadcastPlan::generate(&best.layout, best.channels).unwrap();
        let expect = plan.expected_delay(&probs);
        assert!(
            (expect - best.expected_delay).abs() < 1e-6,
            "analytic {} vs plan {}",
            best.expected_delay,
            expect
        );
    }

    #[test]
    fn more_channels_never_hurt() {
        // The C = 1 space is a subset of the C ≤ 4 space, and striping only
        // shrinks periods: the optimum must be non-increasing in
        // max_channels.
        let probs = zipf_probs(80, 0.95);
        let mut last = f64::INFINITY;
        for max_channels in 1..=4 {
            let cfg = OptimizerConfig {
                max_disks: 3,
                max_delta: 4,
                max_candidates: 16,
                max_channels,
            };
            let best = optimize_layout(&probs, &cfg).unwrap();
            assert!(
                best.expected_delay <= last + 1e-9,
                "max_channels {} worsened delay: {} > {}",
                max_channels,
                best.expected_delay,
                last
            );
            last = best.expected_delay;
        }
    }

    #[test]
    fn empty_probs_rejected() {
        assert!(optimize_layout(&[], &OptimizerConfig::default()).is_err());
        let cfg = OptimizerConfig {
            max_channels: 0,
            ..OptimizerConfig::default()
        };
        assert_eq!(
            optimize_layout(&[1.0], &cfg).unwrap_err(),
            SchedError::NoChannels
        );
    }

    #[test]
    fn candidate_thinning_still_works() {
        let probs = zipf_probs(500, 0.95);
        let cfg = OptimizerConfig {
            max_disks: 2,
            max_delta: 3,
            max_candidates: 8,
            max_channels: 1,
        };
        let best = optimize_layout(&probs, &cfg).unwrap();
        assert!(best.expected_delay <= 250.0);
    }
}
