//! # bdisk-sched — broadcast program generation
//!
//! Implements Section 2 of *Broadcast Disks* (Acharya et al., SIGMOD 1995):
//! the server-side algorithm that superimposes multiple "disks" spinning at
//! different speeds on a single broadcast channel.
//!
//! The central object is the [`BroadcastProgram`]: a periodic sequence of
//! page-broadcast slots. Programs are generated from a [`DiskLayout`] (how
//! many disks, how many pages on each, and each disk's integer relative
//! broadcast frequency) by the chunk-interleaving algorithm of Section 2.2,
//! which guarantees
//!
//! 1. **fixed inter-arrival times** for every page (no Bus Stop Paradox),
//! 2. a **well-defined period** after which the broadcast repeats, and
//! 3. maximal use of the available bandwidth subject to 1 and 2.
//!
//! Baseline generators for a *flat* program (every page once per cycle), a
//! *skewed* program (repeat broadcasts clustered back-to-back, program (b)
//! of Figure 2), and a *random* bandwidth-allocation program are provided
//! for the paper's comparisons.
//!
//! ## Example: the Figure 3 worked example
//!
//! ```
//! use bdisk_sched::{BroadcastProgram, DiskLayout, PageId};
//!
//! // Three disks holding 1, 2, and 8 pages, spinning at 4:2:1.
//! let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
//! let program = BroadcastProgram::generate(&layout).unwrap();
//!
//! assert_eq!(program.period(), 16); // 4 minor cycles of 4 slots
//! assert_eq!(program.frequency(PageId(0)), 4); // hottest page, every minor cycle
//! assert_eq!(program.gap(PageId(0)), Some(4.0)); // evenly spaced
//! ```

#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod generate;
pub mod index;
pub mod optimizer;
pub mod plan;
pub mod program;

pub use disk::DiskLayout;
pub use error::SchedError;
pub use generate::{flat_program, random_program, skewed_program};
pub use index::IndexedBroadcast;
pub use optimizer::{optimize_layout, OptimizedLayout, OptimizerConfig};
pub use plan::{BroadcastPlan, ChannelId, ChannelStats, CodecKind, CodingConfig};
pub use program::{BroadcastProgram, PageId, RepairId, Slot};

/// Least common multiple of two positive integers.
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Greatest common divisor (Euclid).
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 4), 28);
        assert_eq!(lcm(1, 1), 1);
    }
}
