//! Disk layouts: how pages are partitioned across broadcast "disks".
//!
//! A [`DiskLayout`] captures steps 1–3 of the Section 2.2 algorithm: pages
//! (already ordered hottest to coldest) are partitioned into ranges — the
//! *disks* — and each disk is given an integer relative broadcast
//! frequency. Disk 1 is the fastest (most frequently broadcast), disk N the
//! slowest, matching the paper's numbering.
//!
//! The paper's experiments organize the space of layouts with the Δ
//! ("Delta") knob of Section 4.2:
//!
//! ```text
//! rel_freq(i) = (N - i)·Δ + 1        (disks numbered 1..=N)
//! ```
//!
//! Δ = 0 is a flat broadcast; larger Δ skews bandwidth toward fast disks.
//! [`DiskLayout::with_delta`] builds exactly this family.

use crate::error::SchedError;
use crate::program::PageId;

/// Partition of the page set into disks with integer relative frequencies.
///
/// Pages `0..sizes[0]` live on disk 1 (fastest), the next `sizes[1]` pages
/// on disk 2, and so on. Page numbers are *broadcast-order* ranks: the
/// server puts what it believes to be the hottest pages first (the mapping
/// from client-perceived heat to these ranks is `bdisk-workload`'s job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskLayout {
    sizes: Vec<usize>,
    freqs: Vec<u64>,
    /// Cumulative page-count boundaries; `bounds[i]` is the first page of
    /// disk `i`, with a final sentinel equal to the total page count.
    bounds: Vec<usize>,
}

impl DiskLayout {
    /// Creates a layout from explicit disk sizes and relative frequencies.
    ///
    /// `sizes[i]` is the number of pages on disk `i+1`; `freqs[i]` its
    /// relative broadcast frequency. Frequencies must be positive and
    /// non-increasing (disk 1 is the fastest).
    pub fn new(sizes: Vec<usize>, freqs: Vec<u64>) -> Result<Self, SchedError> {
        if sizes.is_empty() {
            return Err(SchedError::NoDisks);
        }
        if sizes.len() != freqs.len() {
            return Err(SchedError::LengthMismatch {
                sizes: sizes.len(),
                freqs: freqs.len(),
            });
        }
        for (i, &s) in sizes.iter().enumerate() {
            if s == 0 {
                return Err(SchedError::EmptyDisk { disk: i });
            }
        }
        for (i, &q) in freqs.iter().enumerate() {
            if q == 0 {
                return Err(SchedError::ZeroFrequency { disk: i });
            }
        }
        if freqs.windows(2).any(|w| w[0] < w[1]) {
            return Err(SchedError::UnorderedFrequencies);
        }
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0;
        bounds.push(0);
        for &s in &sizes {
            acc += s;
            bounds.push(acc);
        }
        Ok(Self {
            sizes,
            freqs,
            bounds,
        })
    }

    /// Creates a layout using the paper's Δ knob:
    /// `rel_freq(i) = (N − i)·Δ + 1` for disks `i = 1..=N`.
    ///
    /// Δ = 0 yields a flat broadcast (all frequencies 1).
    pub fn with_delta(sizes: &[usize], delta: u64) -> Result<Self, SchedError> {
        let n = sizes.len() as u64;
        let freqs = (1..=n).map(|i| (n - i) * delta + 1).collect();
        Self::new(sizes.to_vec(), freqs)
    }

    /// Number of disks (the paper anticipates 2–5).
    pub fn num_disks(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of distinct pages across all disks (`ServerDBSize`).
    pub fn total_pages(&self) -> usize {
        *self.bounds.last().expect("bounds is never empty")
    }

    /// Pages per disk.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Relative broadcast frequency per disk (fastest first).
    pub fn freqs(&self) -> &[u64] {
        &self.freqs
    }

    /// The disk (0-based) holding `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the layout.
    pub fn disk_of(&self, page: PageId) -> usize {
        let p = page.index();
        assert!(p < self.total_pages(), "page {p} outside layout");
        // bounds is sorted; partition_point gives the count of boundaries <= p.
        self.bounds.partition_point(|&b| b <= p) - 1
    }

    /// The half-open page range `[start, end)` stored on `disk` (0-based).
    pub fn page_range(&self, disk: usize) -> std::ops::Range<usize> {
        self.bounds[disk]..self.bounds[disk + 1]
    }

    /// Relative frequency of the disk holding `page`.
    pub fn freq_of(&self, page: PageId) -> u64 {
        self.freqs[self.disk_of(page)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_layout() {
        let l = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        assert_eq!(l.num_disks(), 3);
        assert_eq!(l.total_pages(), 11);
        assert_eq!(l.sizes(), &[1, 2, 8]);
        assert_eq!(l.freqs(), &[4, 2, 1]);
    }

    #[test]
    fn disk_of_respects_boundaries() {
        let l = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        assert_eq!(l.disk_of(PageId(0)), 0);
        assert_eq!(l.disk_of(PageId(1)), 1);
        assert_eq!(l.disk_of(PageId(2)), 1);
        assert_eq!(l.disk_of(PageId(3)), 2);
        assert_eq!(l.disk_of(PageId(10)), 2);
    }

    #[test]
    #[should_panic(expected = "outside layout")]
    fn disk_of_out_of_range_panics() {
        let l = DiskLayout::new(vec![1, 2], vec![2, 1]).unwrap();
        let _ = l.disk_of(PageId(3));
    }

    #[test]
    fn page_ranges() {
        let l = DiskLayout::new(vec![3, 4], vec![2, 1]).unwrap();
        assert_eq!(l.page_range(0), 0..3);
        assert_eq!(l.page_range(1), 3..7);
    }

    #[test]
    fn delta_formula_matches_paper() {
        // Section 4.2: 3-disk broadcast, Δ=1 → speeds 3,2,1; Δ=3 → 7,4,1.
        let l = DiskLayout::with_delta(&[10, 10, 10], 1).unwrap();
        assert_eq!(l.freqs(), &[3, 2, 1]);
        let l = DiskLayout::with_delta(&[10, 10, 10], 3).unwrap();
        assert_eq!(l.freqs(), &[7, 4, 1]);
        // Δ=0 is flat.
        let l = DiskLayout::with_delta(&[10, 10, 10], 0).unwrap();
        assert_eq!(l.freqs(), &[1, 1, 1]);
    }

    #[test]
    fn delta_two_disks() {
        let l = DiskLayout::with_delta(&[500, 4500], 3).unwrap();
        assert_eq!(l.freqs(), &[4, 1]);
        assert_eq!(l.total_pages(), 5000);
    }

    #[test]
    fn freq_of_page() {
        let l = DiskLayout::with_delta(&[2, 3, 5], 2).unwrap();
        assert_eq!(l.freqs(), &[5, 3, 1]);
        assert_eq!(l.freq_of(PageId(0)), 5);
        assert_eq!(l.freq_of(PageId(2)), 3);
        assert_eq!(l.freq_of(PageId(9)), 1);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(DiskLayout::new(vec![], vec![]), Err(SchedError::NoDisks));
        assert_eq!(
            DiskLayout::new(vec![1], vec![1, 2]),
            Err(SchedError::LengthMismatch { sizes: 1, freqs: 2 })
        );
        assert_eq!(
            DiskLayout::new(vec![1, 0], vec![2, 1]),
            Err(SchedError::EmptyDisk { disk: 1 })
        );
        assert_eq!(
            DiskLayout::new(vec![1, 1], vec![2, 0]),
            Err(SchedError::ZeroFrequency { disk: 1 })
        );
        assert_eq!(
            DiskLayout::new(vec![1, 1], vec![1, 2]),
            Err(SchedError::UnorderedFrequencies)
        );
    }

    #[test]
    fn equal_frequencies_are_allowed() {
        // Non-increasing, not strictly decreasing: a "flat" two-disk layout
        // is legal (it is what Δ=0 produces).
        assert!(DiskLayout::new(vec![5, 5], vec![1, 1]).is_ok());
    }

    #[test]
    fn single_disk_is_flat() {
        let l = DiskLayout::new(vec![7], vec![1]).unwrap();
        assert_eq!(l.num_disks(), 1);
        assert_eq!(l.disk_of(PageId(6)), 0);
    }
}
