//! Broadcast program generators.
//!
//! [`multi_disk_program`] is the paper's Section 2.2 algorithm verbatim:
//!
//! 1. pages are already ordered hottest → coldest (by `PageId`);
//! 2. the [`DiskLayout`] partitions them into disks;
//! 3. each disk has an integer relative frequency;
//! 4. `max_chunks` = LCM of the frequencies; disk `i` splits into
//!    `num_chunks(i) = max_chunks / rel_freq(i)` chunks;
//! 5. the program interleaves one chunk of every disk per *minor cycle*:
//!
//! ```text
//! for minor in 0..max_chunks:
//!     for disk i in 1..=num_disks:
//!         broadcast chunk C(i, minor mod num_chunks(i))
//! ```
//!
//! When a disk's size does not divide evenly into its chunk count, chunks
//! are padded to a fixed size with [`Slot::Empty`] so that *inter-arrival
//! times stay fixed* — the property that defeats the Bus Stop Paradox. The
//! paper notes such unused slots would carry indexes or updates in practice.
//!
//! The baseline generators ([`flat_program`], [`skewed_program`],
//! [`random_program`]) reproduce programs (a) and (b) of Figure 2 and the
//! randomized bandwidth-allocation strawman of Section 2.1.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::lcm;
use crate::program::{BroadcastProgram, PageId, Slot};

/// Generates the multi-disk broadcast program for `layout`
/// (Section 2.2 algorithm). Prefer [`BroadcastProgram::generate`].
pub fn multi_disk_program(layout: &DiskLayout) -> Result<BroadcastProgram, SchedError> {
    let n = layout.num_disks();
    let freqs = layout.freqs();

    // Step 4: chunk counts from the LCM of the relative frequencies.
    let max_chunks = freqs.iter().copied().fold(1u64, lcm);
    let num_chunks: Vec<u64> = freqs.iter().map(|&f| max_chunks / f).collect();
    // Fixed chunk size per disk, padding the last chunk(s) with empty slots.
    let chunk_size: Vec<usize> = (0..n)
        .map(|i| layout.sizes()[i].div_ceil(num_chunks[i] as usize))
        .collect();

    let minor_len: usize = chunk_size.iter().sum();
    let period = max_chunks as usize * minor_len;
    let mut slots = Vec::with_capacity(period);

    // Step 5: interleave.
    for minor in 0..max_chunks {
        for disk in 0..n {
            let chunk = (minor % num_chunks[disk]) as usize;
            let range = layout.page_range(disk);
            let chunk_start = range.start + chunk * chunk_size[disk];
            for off in 0..chunk_size[disk] {
                let page = chunk_start + off;
                if page < range.end {
                    slots.push(Slot::Page(PageId(page as u32)));
                } else {
                    slots.push(Slot::Empty);
                }
            }
        }
    }
    debug_assert_eq!(slots.len(), period);

    let disk_of = |p: PageId| layout.disk_of(p) as u16;
    BroadcastProgram::from_slots(slots, Some(&disk_of), freqs.to_vec())
}

/// A flat broadcast: every page exactly once per cycle, in page order
/// (program (a) of Figure 2; also what Δ = 0 produces for any layout).
pub fn flat_program(num_pages: usize) -> Result<BroadcastProgram, SchedError> {
    if num_pages == 0 {
        return Err(SchedError::EmptyProgram);
    }
    let slots = (0..num_pages)
        .map(|p| Slot::Page(PageId(p as u32)))
        .collect();
    BroadcastProgram::from_slots(slots, None, vec![1])
}

/// A skewed broadcast: page `p` appears `copies[p]` times, with all of its
/// copies *clustered back-to-back* (program (b) of Figure 2). Demonstrates
/// the Bus Stop Paradox: same bandwidth shares as the multi-disk program,
/// strictly worse expected delay whenever any `copies[p] > 1`.
pub fn skewed_program(copies: &[u64]) -> Result<BroadcastProgram, SchedError> {
    if copies.is_empty() || copies.iter().all(|&c| c == 0) {
        return Err(SchedError::EmptyProgram);
    }
    assert!(
        copies.iter().all(|&c| c > 0),
        "every page needs at least one copy"
    );
    let mut slots = Vec::new();
    for (p, &c) in copies.iter().enumerate() {
        for _ in 0..c {
            slots.push(Slot::Page(PageId(p as u32)));
        }
    }
    BroadcastProgram::from_slots(slots, None, vec![1])
}

/// A random broadcast: page `p` appears `copies[p]` times per period at
/// uniformly shuffled positions. This is the "generate the broadcast
/// randomly according to bandwidth allocations" strawman of Section 2.1 —
/// its average inter-arrival times match the multi-disk program but the
/// variance costs expected delay.
pub fn random_program<R: Rng>(copies: &[u64], rng: &mut R) -> Result<BroadcastProgram, SchedError> {
    let program = skewed_program(copies)?;
    let mut slots = program.slots().to_vec();
    slots.shuffle(rng);
    BroadcastProgram::from_slots(slots, None, vec![1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 3 worked example: disks of 1, 2, 8 pages at 4:2:1.
    fn figure3() -> BroadcastProgram {
        let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        multi_disk_program(&layout).unwrap()
    }

    #[test]
    fn figure3_period_and_structure() {
        let p = figure3();
        // max_chunks = lcm(4,2,1) = 4; chunks = 1,2,4; chunk sizes 1,1,2;
        // minor cycle = 4 slots; period = 16.
        assert_eq!(p.period(), 16);
        assert_eq!(p.empty_slots(), 0);
        // First minor cycle: C1,1 C2,1 C3,1 = pages 0 | 1 | 3 4.
        let r = p.render();
        assert_eq!(r, "A B D E A C F G A B H I A C J K");
    }

    #[test]
    fn figure3_frequencies() {
        let p = figure3();
        assert_eq!(p.frequency(PageId(0)), 4);
        assert_eq!(p.frequency(PageId(1)), 2);
        assert_eq!(p.frequency(PageId(2)), 2);
        for page in 3..11 {
            assert_eq!(p.frequency(PageId(page)), 1, "page {page}");
        }
    }

    #[test]
    fn figure3_fixed_interarrival() {
        let p = figure3();
        for page in 0..11u32 {
            assert!(
                p.gap(PageId(page)).is_some(),
                "page {page} not evenly spaced"
            );
        }
        assert_eq!(p.gap(PageId(0)), Some(4.0));
        assert_eq!(p.gap(PageId(1)), Some(8.0));
        assert_eq!(p.gap(PageId(3)), Some(16.0));
    }

    #[test]
    fn all_pages_present_exactly_freq_times() {
        let layout = DiskLayout::new(vec![3, 5, 9], vec![6, 3, 1]).unwrap();
        let p = multi_disk_program(&layout).unwrap();
        for page in 0..17u32 {
            let expected = layout.freq_of(PageId(page));
            assert_eq!(p.frequency(PageId(page)), expected, "page {page}");
        }
    }

    #[test]
    fn padding_when_sizes_do_not_divide() {
        // Disk 2 has 3 pages split into 2 chunks → chunk size 2, one pad.
        let layout = DiskLayout::new(vec![1, 3], vec![2, 1]).unwrap();
        let p = multi_disk_program(&layout).unwrap();
        // max_chunks=2; chunk sizes: disk1=1, disk2=2; minor len 3; period 6.
        assert_eq!(p.period(), 6);
        assert_eq!(p.empty_slots(), 1);
        assert_eq!(p.render(), "A B C A D -");
        // Even with padding, inter-arrivals stay fixed.
        for page in 0..4u32 {
            assert!(p.gap(PageId(page)).is_some(), "page {page}");
        }
    }

    #[test]
    fn d5_delta3_shape() {
        // D5 = <500, 2000, 2500> at Δ=3 → freqs 7,4,1 (used heavily in §5).
        let layout = DiskLayout::with_delta(&[500, 2000, 2500], 3).unwrap();
        let p = multi_disk_program(&layout).unwrap();
        assert_eq!(p.disk_frequencies(), &[7, 4, 1]);
        // lcm(7,4,1)=28; chunks 4,7,28; chunk sizes 125, 286, 90;
        // minor len 501; period 28*501.
        assert_eq!(p.period(), 28 * 501);
        assert_eq!(p.frequency(PageId(0)), 7);
        assert_eq!(p.frequency(PageId(500)), 4);
        assert_eq!(p.frequency(PageId(4999)), 1);
        // Waste stays small, as the paper argues.
        assert!(p.waste() < 0.01, "waste = {}", p.waste());
    }

    #[test]
    fn flat_program_is_identity_cycle() {
        let p = flat_program(5).unwrap();
        assert_eq!(p.period(), 5);
        assert_eq!(p.render(), "A B C D E");
        for page in 0..5u32 {
            assert_eq!(p.gap(PageId(page)), Some(5.0));
        }
    }

    #[test]
    fn flat_equals_delta_zero() {
        let layout = DiskLayout::with_delta(&[2, 3], 0).unwrap();
        let multi = multi_disk_program(&layout).unwrap();
        let flat = flat_program(5).unwrap();
        assert_eq!(multi.period(), flat.period());
        for page in 0..5u32 {
            assert_eq!(multi.frequency(PageId(page)), flat.frequency(PageId(page)));
        }
    }

    #[test]
    fn skewed_clusters_copies() {
        let p = skewed_program(&[2, 1, 1]).unwrap();
        assert_eq!(p.render(), "A A B C");
        assert_eq!(p.gap(PageId(0)), None);
    }

    #[test]
    fn random_preserves_copy_counts() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let p = random_program(&[3, 2, 1, 1], &mut rng).unwrap();
        assert_eq!(p.period(), 7);
        assert_eq!(p.frequency(PageId(0)), 3);
        assert_eq!(p.frequency(PageId(1)), 2);
        assert_eq!(p.frequency(PageId(3)), 1);
    }

    #[test]
    fn generators_reject_empty() {
        assert!(flat_program(0).is_err());
        assert!(skewed_program(&[]).is_err());
    }

    #[test]
    fn two_disk_example_from_section_2_2() {
        // "given two disks, disk 1 broadcast three times for every two of
        //  disk 2": rel_freq 3 and 2 → max_chunks 6, chunks 2 and 3.
        let layout = DiskLayout::new(vec![2, 3], vec![3, 2]).unwrap();
        let p = multi_disk_program(&layout).unwrap();
        // chunk sizes: disk1 2/2=1, disk2 3/3=1; minor len 2; period 12.
        assert_eq!(p.period(), 12);
        assert_eq!(p.frequency(PageId(0)), 3);
        assert_eq!(p.frequency(PageId(2)), 2);
        for page in 0..5u32 {
            assert!(p.gap(PageId(page)).is_some());
        }
    }
}
