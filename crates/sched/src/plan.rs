//! Multi-channel broadcast plans.
//!
//! The paper superimposes its disks on **one** broadcast channel; a
//! [`BroadcastPlan`] lifts that assumption. A plan is a [`ChannelId`]-indexed
//! set of [`BroadcastProgram`]s driven off one slot clock (slot `k` airs one
//! page per channel) plus a total page → (channel, disk) assignment: every
//! page is broadcast on exactly one channel, so a single-tuner client that
//! misses its cache retunes to the page's channel and waits for its next
//! periodic broadcast there.
//!
//! Generation stripes each disk's pages round-robin across the channels
//! (page `j` of a disk goes to channel `j mod C`), so hot disks are spread
//! first and no channel is all-cold: every channel receives an
//! approximately `1/C`-sized copy of the layout with the *same* relative
//! frequencies, and its Section 2.2 program therefore has roughly `1/C` of
//! the single-channel period. Expected delay shrinks accordingly, which the
//! channel-count search in [`crate::optimizer`] exploits.
//!
//! With `channels = 1` the striping is the identity: the plan wraps the
//! exact [`BroadcastProgram`] the single-channel generator produces, slot
//! for slot, so every existing single-channel result is unchanged.
//!
//! Each channel's program uses *channel-local* page ids (dense, as
//! [`BroadcastProgram::from_slots`] requires); the plan owns the
//! local ↔ global translation and exposes only global [`PageId`]s.

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::program::{BroadcastProgram, PageId, Slot};

/// Identifier of a broadcast channel (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// The channel id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A multi-channel broadcast plan: one [`BroadcastProgram`] per channel and
/// a total assignment of every page to exactly one (channel, disk) pair.
#[derive(Debug, Clone)]
pub struct BroadcastPlan {
    /// Per-channel programs over channel-local page ids.
    programs: Vec<BroadcastProgram>,
    /// Global page → channel that broadcasts it.
    page_channel: Vec<u16>,
    /// Global page → its local id on its channel's program.
    page_local: Vec<u32>,
    /// Per channel: local id → global page.
    global_of: Vec<Vec<u32>>,
    /// Global page → disk (layout-level, shared by all channels).
    page_disk: Vec<u16>,
    /// Relative frequency of each disk in the source layout.
    disk_freqs: Vec<u64>,
}

impl BroadcastPlan {
    /// Generates a plan that stripes `layout` across `channels` channels.
    ///
    /// Page `j` of each disk goes to channel `j mod channels`, preserving
    /// hottest-first order within every (disk, channel) cell; a channel's
    /// layout keeps the relative frequencies of the disks that reach it.
    /// `channels = 1` produces a plan whose single program is identical to
    /// [`BroadcastProgram::generate`] for the same layout.
    pub fn generate(layout: &DiskLayout, channels: usize) -> Result<Self, SchedError> {
        if channels == 0 {
            return Err(SchedError::NoChannels);
        }
        let total = layout.total_pages();
        let mut page_channel = vec![0u16; total];
        let mut page_local = vec![0u32; total];
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); channels];
        let mut programs = Vec::with_capacity(channels);

        for (c, globals) in global_of.iter_mut().enumerate() {
            // Strided sub-layout: every disk contributes its pages at
            // in-disk offsets ≡ c (mod channels); disks smaller than the
            // channel count drop out of the later channels.
            let mut sizes = Vec::new();
            let mut freqs = Vec::new();
            for disk in 0..layout.num_disks() {
                let range = layout.page_range(disk);
                let mut count = 0u32;
                for p in (range.start + c..range.end).step_by(channels) {
                    page_channel[p] = c as u16;
                    page_local[p] = globals.len() as u32 + count;
                    count += 1;
                }
                if count > 0 {
                    for p in (range.start + c..range.end).step_by(channels) {
                        globals.push(p as u32);
                    }
                    sizes.push(count as usize);
                    freqs.push(layout.freqs()[disk]);
                }
            }
            if sizes.is_empty() {
                return Err(SchedError::EmptyChannel { channel: c });
            }
            let sub = DiskLayout::new(sizes, freqs)?;
            programs.push(BroadcastProgram::generate(&sub)?);
        }

        let page_disk = (0..total)
            .map(|p| layout.disk_of(PageId(p as u32)) as u16)
            .collect();
        Ok(Self {
            programs,
            page_channel,
            page_local,
            global_of,
            page_disk,
            disk_freqs: layout.freqs().to_vec(),
        })
    }

    /// Wraps an existing single-channel program as a 1-channel plan.
    ///
    /// The page-id spaces coincide (local = global), so the plan is a
    /// zero-cost view: every query delegates straight to `program`.
    pub fn single(program: BroadcastProgram) -> Self {
        let n = program.num_pages();
        let page_disk = (0..n)
            .map(|p| program.disk_of(PageId(p as u32)) as u16)
            .collect();
        let disk_freqs = program.disk_frequencies().to_vec();
        Self {
            page_channel: vec![0; n],
            page_local: (0..n as u32).collect(),
            global_of: vec![(0..n as u32).collect()],
            page_disk,
            disk_freqs,
            programs: vec![program],
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.programs.len()
    }

    /// Total number of distinct pages across all channels.
    pub fn num_pages(&self) -> usize {
        self.page_channel.len()
    }

    /// Number of disks in the source layout.
    pub fn num_disks(&self) -> usize {
        self.disk_freqs.len().max(1)
    }

    /// Relative frequency of each disk in the source layout.
    pub fn disk_frequencies(&self) -> &[u64] {
        &self.disk_freqs
    }

    /// The channel that broadcasts `page`.
    pub fn channel_of(&self, page: PageId) -> ChannelId {
        ChannelId(self.page_channel[page.index()])
    }

    /// The disk (0-based, layout-level) that holds `page`.
    pub fn disk_of(&self, page: PageId) -> usize {
        self.page_disk[page.index()] as usize
    }

    /// The program for `channel` (page ids are channel-local; prefer the
    /// plan-level queries, which speak global ids).
    pub fn program(&self, channel: ChannelId) -> &BroadcastProgram {
        &self.programs[channel.index()]
    }

    /// Period of `channel`'s program, in slots.
    pub fn period_of(&self, channel: ChannelId) -> usize {
        self.programs[channel.index()].period()
    }

    /// The longest channel period — an upper bound on any page's
    /// inter-arrival time under this plan.
    pub fn max_period(&self) -> usize {
        self.programs.iter().map(|p| p.period()).max().unwrap_or(0)
    }

    /// The slot aired on `channel` at absolute slot sequence `seq`
    /// (wrapping the channel's period), with the page translated to its
    /// global id.
    pub fn slot_at(&self, channel: ChannelId, seq: u64) -> Slot {
        match self.programs[channel.index()].slot_at(seq) {
            Slot::Page(local) => Slot::Page(self.global_page(channel, local)),
            Slot::Empty => Slot::Empty,
        }
    }

    /// Translates a channel-local page id back to its global id.
    pub fn global_page(&self, channel: ChannelId, local: PageId) -> PageId {
        PageId(self.global_of[channel.index()][local.index()])
    }

    /// Broadcasts of `page` per period *of its channel*.
    pub fn frequency(&self, page: PageId) -> u64 {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].frequency(PageId(self.page_local[page.index()]))
    }

    /// The fixed inter-arrival gap of `page` on its channel, or `None` if
    /// its broadcasts are not evenly spaced.
    pub fn gap(&self, page: PageId) -> Option<f64> {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].gap(PageId(self.page_local[page.index()]))
    }

    /// The absolute time (slot start) at which `page` is next broadcast at
    /// or after time `t`, on its assigned channel.
    ///
    /// Pages live on exactly one channel, so the cross-channel minimum the
    /// single-tuner client needs is just this channel's `O(log f)` lookup.
    pub fn next_arrival(&self, page: PageId, t: f64) -> f64 {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].next_arrival(PageId(self.page_local[page.index()]), t)
    }

    /// Analytic expected delay (broadcast units) of a request stream with
    /// per-page weights `probs`, for a client already tuned to each page's
    /// channel: `Σ_p probs[p] · Σ_g g²/(2·period)` over `p`'s gaps, which
    /// reduces to `probs[p] · gap/2` for the fixed-gap programs this crate
    /// generates. Weights beyond the plan's page count are ignored.
    pub fn expected_delay(&self, probs: &[f64]) -> f64 {
        let mut delay = 0.0;
        for (p, &pr) in probs.iter().enumerate().take(self.num_pages()) {
            let ch = self.page_channel[p] as usize;
            let local = PageId(self.page_local[p]);
            let period = self.programs[ch].period() as f64;
            let wait: f64 = self.programs[ch]
                .gaps(local)
                .iter()
                .map(|g| g * g / (2.0 * period))
                .sum();
            delay += pr * wait;
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d_small() -> DiskLayout {
        DiskLayout::new(vec![4, 6, 8], vec![4, 2, 1]).unwrap()
    }

    #[test]
    fn one_channel_plan_is_the_program() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 1).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        assert_eq!(plan.num_channels(), 1);
        assert_eq!(plan.program(ChannelId(0)).slots(), program.slots());
        for p in 0..layout.total_pages() as u32 {
            let page = PageId(p);
            assert_eq!(plan.channel_of(page), ChannelId(0));
            assert_eq!(plan.disk_of(page), layout.disk_of(page));
            assert_eq!(plan.frequency(page), program.frequency(page));
            for t in [0.0, 3.5, 17.0, 100.25] {
                assert_eq!(plan.next_arrival(page, t), program.next_arrival(page, t));
            }
        }
    }

    #[test]
    fn single_wraps_program_identically() {
        let layout = d_small();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let plan = BroadcastPlan::single(program.clone());
        assert_eq!(plan.num_channels(), 1);
        assert_eq!(plan.num_pages(), program.num_pages());
        for seq in 0..2 * program.period() as u64 {
            assert_eq!(plan.slot_at(ChannelId(0), seq), program.slot_at(seq));
        }
        assert_eq!(plan.disk_frequencies(), program.disk_frequencies());
    }

    #[test]
    fn pages_partition_across_channels() {
        let layout = d_small();
        for channels in 1..=4 {
            let plan = BroadcastPlan::generate(&layout, channels).unwrap();
            assert_eq!(plan.num_channels(), channels);
            // Every page lands on exactly one channel; the per-channel
            // global translations partition the page set.
            let mut seen = vec![false; layout.total_pages()];
            for c in 0..channels {
                let ch = ChannelId(c as u16);
                let prog = plan.program(ch);
                for local in 0..prog.num_pages() as u32 {
                    let g = plan.global_page(ch, PageId(local));
                    assert!(!seen[g.index()], "page {g} on two channels");
                    seen[g.index()] = true;
                    assert_eq!(plan.channel_of(g), ch);
                }
            }
            assert!(seen.iter().all(|&s| s), "some page on no channel");
        }
    }

    #[test]
    fn striping_spreads_hot_disk_first() {
        // Disk 1 has 4 pages; with 2 channels each channel gets 2 of them.
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        assert_eq!(plan.channel_of(PageId(0)), ChannelId(0));
        assert_eq!(plan.channel_of(PageId(1)), ChannelId(1));
        assert_eq!(plan.channel_of(PageId(2)), ChannelId(0));
        assert_eq!(plan.channel_of(PageId(3)), ChannelId(1));
        // Hot pages keep their high frequency on their channel.
        assert_eq!(plan.frequency(PageId(0)), 4);
        assert_eq!(plan.frequency(PageId(1)), 4);
    }

    #[test]
    fn more_channels_shrink_expected_delay() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        let n = layout.total_pages();
        let probs = vec![1.0 / n as f64; n];
        let mut last = f64::INFINITY;
        for channels in 1..=4 {
            let plan = BroadcastPlan::generate(&layout, channels).unwrap();
            let d = plan.expected_delay(&probs);
            assert!(
                d <= last + 1e-9,
                "delay increased at {channels} channels: {d} > {last}"
            );
            last = d;
        }
    }

    #[test]
    fn small_disks_drop_out_of_late_channels() {
        // Disk 1 has a single page: channel 1 gets only disks 2 and 3.
        let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        assert_eq!(plan.channel_of(PageId(0)), ChannelId(0));
        let ch1 = plan.program(ChannelId(1));
        assert_eq!(ch1.num_pages(), 5); // pages 2, 4, 6, 8, 10
        assert_eq!(plan.disk_of(PageId(2)), 1);
        // The dropped disk does not distort disk accounting.
        assert_eq!(plan.num_disks(), 3);
    }

    #[test]
    fn too_many_channels_rejected() {
        let layout = DiskLayout::new(vec![1, 1], vec![2, 1]).unwrap();
        assert_eq!(
            BroadcastPlan::generate(&layout, 3).unwrap_err(),
            SchedError::EmptyChannel { channel: 1 }
        );
        assert_eq!(
            BroadcastPlan::generate(&layout, 0).unwrap_err(),
            SchedError::NoChannels
        );
    }

    #[test]
    fn slot_at_translates_to_global_ids() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 3).unwrap();
        for c in 0..3u16 {
            let ch = ChannelId(c);
            for seq in 0..plan.period_of(ch) as u64 {
                if let Slot::Page(g) = plan.slot_at(ch, seq) {
                    assert_eq!(plan.channel_of(g), ch);
                    assert!(g.index() < plan.num_pages());
                }
            }
        }
    }

    #[test]
    fn next_arrival_matches_slot_feed() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        for c in 0..2u16 {
            let ch = ChannelId(c);
            for seq in 0..2 * plan.period_of(ch) as u64 {
                if let Slot::Page(g) = plan.slot_at(ch, seq) {
                    assert_eq!(plan.next_arrival(g, seq as f64), seq as f64);
                }
            }
        }
    }
}
