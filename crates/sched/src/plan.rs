//! Multi-channel broadcast plans.
//!
//! The paper superimposes its disks on **one** broadcast channel; a
//! [`BroadcastPlan`] lifts that assumption. A plan is a [`ChannelId`]-indexed
//! set of [`BroadcastProgram`]s driven off one slot clock (slot `k` airs one
//! page per channel) plus a total page → (channel, disk) assignment: every
//! page is broadcast on exactly one channel, so a single-tuner client that
//! misses its cache retunes to the page's channel and waits for its next
//! periodic broadcast there.
//!
//! Generation stripes each disk's pages round-robin across the channels
//! (page `j` of a disk goes to channel `j mod C`), so hot disks are spread
//! first and no channel is all-cold: every channel receives an
//! approximately `1/C`-sized copy of the layout with the *same* relative
//! frequencies, and its Section 2.2 program therefore has roughly `1/C` of
//! the single-channel period. Expected delay shrinks accordingly, which the
//! channel-count search in [`crate::optimizer`] exploits.
//!
//! With `channels = 1` the striping is the identity: the plan wraps the
//! exact [`BroadcastProgram`] the single-channel generator produces, slot
//! for slot, so every existing single-channel result is unchanged.
//!
//! Each channel's program uses *channel-local* page ids (dense, as
//! [`BroadcastProgram::from_slots`] requires); the plan owns the
//! local ↔ global translation and exposes only global [`PageId`]s.

use crate::disk::DiskLayout;
use crate::error::SchedError;
use crate::program::{BroadcastProgram, PageId, RepairId, Slot};

/// Identifier of a broadcast channel (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// The channel id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Which erasure codec composes repair symbols (implemented in the
/// `bdisk-code` crate; the plan only records the choice so server and
/// client derive the same composition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Systematic XOR parity: each repair symbol is the XOR of every page
    /// in its coverage window, repairing any single loss in the window.
    Xor,
    /// LT/fountain coding: each symbol XORs a soliton-sampled subset of
    /// its window; overlapping symbols peel multiple losses.
    Lt,
}

/// Coding configuration for a [`BroadcastPlan`]: how much of each channel's
/// period carries repair symbols, and how those symbols are composed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingConfig {
    /// Target fraction of each channel's period spent on repair slots.
    /// Empty (padding) slots are converted first; if they do not reach the
    /// target, duplicate airings of hot pages are stolen — never a page's
    /// last airing, so every page still airs at least once per period.
    /// `0.0` disables coding entirely (the identity transformation).
    pub rate: f64,
    /// Coverage-window size: each repair symbol protects the last `group`
    /// distinct pages aired before it on its channel
    /// (see [`BroadcastProgram::coverage_window`]).
    pub group: usize,
    /// The codec composing symbols from their coverage windows.
    pub codec: CodecKind,
    /// Seed from which symbol composition is derived on both ends —
    /// server and client agree with no side channel.
    pub seed: u64,
}

impl CodingConfig {
    /// XOR parity at `rate` with window size `group`.
    pub fn xor(rate: f64, group: usize, seed: u64) -> Self {
        Self {
            rate,
            group,
            codec: CodecKind::Xor,
            seed,
        }
    }

    /// LT/fountain coding at `rate` with window size `group`.
    pub fn lt(rate: f64, group: usize, seed: u64) -> Self {
        Self {
            rate,
            group,
            codec: CodecKind::Lt,
            seed,
        }
    }
}

/// Per-channel slot census of a [`BroadcastPlan`]: how each channel's
/// period splits into data, padding, and repair slots. The per-channel
/// empty-slot count (not just the aggregate) is what drives coding-rate
/// selection — dead air is where repair symbols are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// The channel these counts describe.
    pub channel: ChannelId,
    /// The channel's period in slots.
    pub period: usize,
    /// Slots carrying a page.
    pub data_slots: usize,
    /// Unused padding slots (dead air).
    pub empty_slots: usize,
    /// Coded repair slots.
    pub repair_slots: usize,
}

impl ChannelStats {
    /// Fraction of the channel's bandwidth that is dead air.
    pub fn dead_air(&self) -> f64 {
        self.empty_slots as f64 / self.period as f64
    }
}

/// A multi-channel broadcast plan: one [`BroadcastProgram`] per channel and
/// a total assignment of every page to exactly one (channel, disk) pair.
#[derive(Debug, Clone)]
pub struct BroadcastPlan {
    /// Per-channel programs over channel-local page ids.
    programs: Vec<BroadcastProgram>,
    /// Global page → channel that broadcasts it.
    page_channel: Vec<u16>,
    /// Global page → its local id on its channel's program.
    page_local: Vec<u32>,
    /// Per channel: local id → global page.
    global_of: Vec<Vec<u32>>,
    /// Global page → disk (layout-level, shared by all channels).
    page_disk: Vec<u16>,
    /// Relative frequency of each disk in the source layout.
    disk_freqs: Vec<u64>,
    /// Repair-slot coding, when enabled (see [`BroadcastPlan::with_coding`]).
    coding: Option<CodingConfig>,
    /// Plan epoch: which generation of the server's reconfiguration loop
    /// this plan belongs to. Epoch 0 is the original, never-swapped plan;
    /// the live engine only hot-swaps to a plan with a *strictly larger*
    /// epoch, and the wire carries the epoch so tuners can tell plans
    /// apart (see `bdisk-broker`).
    epoch: u32,
}

impl BroadcastPlan {
    /// Generates a plan that stripes `layout` across `channels` channels.
    ///
    /// Page `j` of each disk goes to channel `j mod channels`, preserving
    /// hottest-first order within every (disk, channel) cell; a channel's
    /// layout keeps the relative frequencies of the disks that reach it.
    /// `channels = 1` produces a plan whose single program is identical to
    /// [`BroadcastProgram::generate`] for the same layout.
    pub fn generate(layout: &DiskLayout, channels: usize) -> Result<Self, SchedError> {
        if channels == 0 {
            return Err(SchedError::NoChannels);
        }
        let total = layout.total_pages();
        let mut page_channel = vec![0u16; total];
        let mut page_local = vec![0u32; total];
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); channels];
        let mut programs = Vec::with_capacity(channels);

        for (c, globals) in global_of.iter_mut().enumerate() {
            // Strided sub-layout: every disk contributes its pages at
            // in-disk offsets ≡ c (mod channels); disks smaller than the
            // channel count drop out of the later channels.
            let mut sizes = Vec::new();
            let mut freqs = Vec::new();
            for disk in 0..layout.num_disks() {
                let range = layout.page_range(disk);
                let mut count = 0u32;
                for p in (range.start + c..range.end).step_by(channels) {
                    page_channel[p] = c as u16;
                    page_local[p] = globals.len() as u32 + count;
                    count += 1;
                }
                if count > 0 {
                    for p in (range.start + c..range.end).step_by(channels) {
                        globals.push(p as u32);
                    }
                    sizes.push(count as usize);
                    freqs.push(layout.freqs()[disk]);
                }
            }
            if sizes.is_empty() {
                return Err(SchedError::EmptyChannel { channel: c });
            }
            let sub = DiskLayout::new(sizes, freqs)?;
            programs.push(BroadcastProgram::generate(&sub)?);
        }

        let page_disk = (0..total)
            .map(|p| layout.disk_of(PageId(p as u32)) as u16)
            .collect();
        Ok(Self {
            programs,
            page_channel,
            page_local,
            global_of,
            page_disk,
            disk_freqs: layout.freqs().to_vec(),
            coding: None,
            epoch: 0,
        })
    }

    /// Wraps an existing single-channel program as a 1-channel plan.
    ///
    /// The page-id spaces coincide (local = global), so the plan is a
    /// zero-cost view: every query delegates straight to `program`.
    pub fn single(program: BroadcastProgram) -> Self {
        let n = program.num_pages();
        let page_disk = (0..n)
            .map(|p| program.disk_of(PageId(p as u32)) as u16)
            .collect();
        let disk_freqs = program.disk_frequencies().to_vec();
        Self {
            page_channel: vec![0; n],
            page_local: (0..n as u32).collect(),
            global_of: vec![(0..n as u32).collect()],
            page_disk,
            disk_freqs,
            programs: vec![program],
            coding: None,
            epoch: 0,
        }
    }

    /// Tags the plan with a reconfiguration epoch (builder-style). Epoch 0
    /// is the default and means "the original plan"; the live engine
    /// hot-swaps only to strictly larger epochs.
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// The plan's reconfiguration epoch (0 = original, never swapped).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// A structural fingerprint of the plan: a 64-bit hash folding every
    /// channel's slot sequence, the page↔channel assignment, the disk
    /// frequencies, the coding config, and the epoch. Two plans hash equal
    /// iff a client driving one would see the identical slot feed under
    /// the other — the broker checkpoints this so a restarted engine can
    /// refuse to resume a checkpoint against a different plan book.
    pub fn plan_hash(&self) -> u64 {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = mix(self.epoch as u64 ^ 0xB0AD_CA57);
        let mut fold = |v: u64| h = mix(h ^ mix(v));
        for prog in &self.programs {
            fold(prog.period() as u64);
            for s in prog.slots() {
                fold(match s {
                    Slot::Page(p) => p.0 as u64,
                    Slot::Empty => u64::MAX,
                    Slot::Repair(r) => (1u64 << 32) | r.0 as u64,
                    Slot::EpochFence => 1u64 << 33,
                    Slot::Pull(p) => (1u64 << 34) | p.0 as u64,
                });
            }
        }
        for (&ch, &local) in self.page_channel.iter().zip(&self.page_local) {
            fold(((ch as u64) << 32) | local as u64);
        }
        for &f in &self.disk_freqs {
            fold(f);
        }
        if let Some(c) = &self.coding {
            fold(c.rate.to_bits());
            fold(c.group as u64);
            fold(match c.codec {
                CodecKind::Xor => 1,
                CodecKind::Lt => 2,
            });
            fold(c.seed);
        }
        h
    }

    /// Adds coded repair slots to every channel, per `cfg`.
    ///
    /// Each channel converts `floor(rate · period)` slots to
    /// [`Slot::Repair`], preferring the channel's [`Slot::Empty`] padding
    /// (earliest offsets first) and, when padding falls short, stealing
    /// duplicate airings of hot pages round-robin — never a page's last
    /// airing, so every page still airs at least once per period and the
    /// period itself is untouched (no timing arithmetic changes). Repair
    /// ids are assigned `0..R` in offset order.
    ///
    /// The placement is a pure function of the plan and `cfg`, and lower
    /// rates choose a prefix of the slots a higher rate chooses, so sweeps
    /// across rates are nested. `rate = 0` is the identity: the plan is
    /// returned unchanged with no coding metadata, keeping every
    /// downstream path byte-identical to the uncoded plan.
    pub fn with_coding(mut self, cfg: CodingConfig) -> Result<Self, SchedError> {
        if !cfg.rate.is_finite() || !(0.0..1.0).contains(&cfg.rate) {
            return Err(SchedError::InvalidCoding {
                reason: "rate must be in [0, 1)",
            });
        }
        if cfg.group == 0 {
            return Err(SchedError::InvalidCoding {
                reason: "group must be at least 1",
            });
        }
        if cfg.rate == 0.0 {
            self.coding = None;
            return Ok(self);
        }
        for prog in &mut self.programs {
            *prog = coded_program(prog, cfg.rate)?;
        }
        self.coding = Some(cfg);
        Ok(self)
    }

    /// The coding configuration, when repair slots are enabled.
    pub fn coding(&self) -> Option<&CodingConfig> {
        self.coding.as_ref()
    }

    /// Per-channel slot census: period, data, empty, and repair counts for
    /// every channel (the aggregate alone hides which channels have the
    /// dead air that coding can spend).
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.programs
            .iter()
            .enumerate()
            .map(|(c, prog)| ChannelStats {
                channel: ChannelId(c as u16),
                period: prog.period(),
                data_slots: prog.period() - prog.empty_slots() - prog.repair_slots(),
                empty_slots: prog.empty_slots(),
                repair_slots: prog.repair_slots(),
            })
            .collect()
    }

    /// Number of empty (padding) slots per period on `channel`.
    pub fn empty_slots_of(&self, channel: ChannelId) -> usize {
        self.programs[channel.index()].empty_slots()
    }

    /// Number of coded repair slots per period on `channel`.
    pub fn repair_slots_of(&self, channel: ChannelId) -> usize {
        self.programs[channel.index()].repair_slots()
    }

    /// Human-readable per-channel summary, one line per channel, e.g.
    /// `ch0: period=12 data=10 empty=1 (8.3% dead air) repair=1`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in self.channel_stats() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{}: period={} data={} empty={} ({:.1}% dead air) repair={}",
                s.channel,
                s.period,
                s.data_slots,
                s.empty_slots,
                100.0 * s.dead_air(),
                s.repair_slots,
            ));
        }
        out
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.programs.len()
    }

    /// Total number of distinct pages across all channels.
    pub fn num_pages(&self) -> usize {
        self.page_channel.len()
    }

    /// Number of disks in the source layout.
    pub fn num_disks(&self) -> usize {
        self.disk_freqs.len().max(1)
    }

    /// Relative frequency of each disk in the source layout.
    pub fn disk_frequencies(&self) -> &[u64] {
        &self.disk_freqs
    }

    /// The channel that broadcasts `page`.
    pub fn channel_of(&self, page: PageId) -> ChannelId {
        ChannelId(self.page_channel[page.index()])
    }

    /// The disk (0-based, layout-level) that holds `page`.
    pub fn disk_of(&self, page: PageId) -> usize {
        self.page_disk[page.index()] as usize
    }

    /// The program for `channel` (page ids are channel-local; prefer the
    /// plan-level queries, which speak global ids).
    pub fn program(&self, channel: ChannelId) -> &BroadcastProgram {
        &self.programs[channel.index()]
    }

    /// Period of `channel`'s program, in slots.
    pub fn period_of(&self, channel: ChannelId) -> usize {
        self.programs[channel.index()].period()
    }

    /// The longest channel period — an upper bound on any page's
    /// inter-arrival time under this plan.
    pub fn max_period(&self) -> usize {
        self.programs.iter().map(|p| p.period()).max().unwrap_or(0)
    }

    /// The slot aired on `channel` at absolute slot sequence `seq`
    /// (wrapping the channel's period), with the page translated to its
    /// global id.
    pub fn slot_at(&self, channel: ChannelId, seq: u64) -> Slot {
        match self.programs[channel.index()].slot_at(seq) {
            Slot::Page(local) => Slot::Page(self.global_page(channel, local)),
            other => other,
        }
    }

    /// Translates a channel-local page id back to its global id.
    pub fn global_page(&self, channel: ChannelId, local: PageId) -> PageId {
        PageId(self.global_of[channel.index()][local.index()])
    }

    /// Broadcasts of `page` per period *of its channel*.
    pub fn frequency(&self, page: PageId) -> u64 {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].frequency(PageId(self.page_local[page.index()]))
    }

    /// The fixed inter-arrival gap of `page` on its channel, or `None` if
    /// its broadcasts are not evenly spaced.
    pub fn gap(&self, page: PageId) -> Option<f64> {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].gap(PageId(self.page_local[page.index()]))
    }

    /// The absolute time (slot start) at which `page` is next broadcast at
    /// or after time `t`, on its assigned channel.
    ///
    /// Pages live on exactly one channel, so the cross-channel minimum the
    /// single-tuner client needs is just this channel's `O(log f)` lookup.
    pub fn next_arrival(&self, page: PageId, t: f64) -> f64 {
        let ch = self.page_channel[page.index()] as usize;
        self.programs[ch].next_arrival(PageId(self.page_local[page.index()]), t)
    }

    /// The absolute time (slot start) of the next empty padding slot on
    /// `channel` at or after time `t`, or `None` if the channel's program
    /// has no padding.
    ///
    /// A padding-fill pull arbiter services a queued request for a page at
    /// the first padding slot of the page's home channel once the request
    /// is eligible; this query is the simulator-side mirror of that
    /// decision (see `bdisk-broker`'s `SlotArbiter`).
    pub fn next_padding_arrival(&self, channel: ChannelId, t: f64) -> Option<f64> {
        self.programs[channel.index()].next_empty_arrival(t)
    }

    /// Analytic expected delay (broadcast units) of a request stream with
    /// per-page weights `probs`, for a client already tuned to each page's
    /// channel: `Σ_p probs[p] · Σ_g g²/(2·period)` over `p`'s gaps, which
    /// reduces to `probs[p] · gap/2` for the fixed-gap programs this crate
    /// generates. Weights beyond the plan's page count are ignored.
    pub fn expected_delay(&self, probs: &[f64]) -> f64 {
        let mut delay = 0.0;
        for (p, &pr) in probs.iter().enumerate().take(self.num_pages()) {
            let ch = self.page_channel[p] as usize;
            let local = PageId(self.page_local[p]);
            let period = self.programs[ch].period() as f64;
            let wait: f64 = self.programs[ch]
                .gaps(local)
                .iter()
                .map(|g| g * g / (2.0 * period))
                .sum();
            delay += pr * wait;
        }
        delay
    }

    /// Analytic expected delay under an i.i.d. per-slot erasure rate
    /// `loss`, crediting the plan's repair slots.
    ///
    /// Per page: the lossless Bus-Stop base `Σ g²/(2P)`, plus, with
    /// probability `loss`, the cost of a missed airing. A missed airing is
    /// repaired by the next covering repair symbol at mean distance `r̄`
    /// with probability `s = q·σ`, where `q` is the fraction of the page's
    /// airings covered by some symbol and `σ` is the peeling decoder's
    /// per-loss success probability. `σ` is the least fixed point of the
    /// density-evolution recursion for a sparse erasure code whose checks
    /// cover `k` slots (the window size, a conservative upper bound on the
    /// symbol degree) with mean coverage multiplicity `λ` (symbols per
    /// covered slot, measured from the plan itself):
    ///
    /// `σ = 1 − (1 − (1−loss) · (1 − loss·(1−σ))^(k−1))^λ`
    ///
    /// — a symbol rescues the loss if it arrived and its other members are
    /// each either heard or themselves peeled; the loss is rescued if any
    /// of its `λ` symbols does. Iterating from `σ = 0` reproduces belief
    /// propagation's waterfall: below the code's threshold σ → ~1, above
    /// it the recursion stalls near 0. If no repair fires, the client
    /// waits the mean gap `ḡ` for the next airing, which may itself be
    /// lost, giving the recurrence `X = s·r̄ + (1−s)·(ḡ + loss·X)`:
    ///
    /// `E[delay] = Σ_p pr_p · (base_p + loss · (s·r̄ + (1−s)·ḡ) / (1 − (1−s)·loss))`
    ///
    /// With no coding (`s = 0`) this reduces to `base + loss·ḡ/(1−loss)`,
    /// and at `loss = 0` it equals [`BroadcastPlan::expected_delay`].
    pub fn expected_delay_lossy(&self, probs: &[f64], loss: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&loss),
            "loss rate must be in [0, 1), got {loss}"
        );
        if loss == 0.0 {
            return self.expected_delay(probs);
        }
        // Per channel: for each data-slot offset, the distance (in slots)
        // to the nearest repair symbol covering it, if any — plus the
        // peeling success probability σ from the mean coverage
        // multiplicity λ (how many symbols cover a covered slot).
        let group = self.coding.map(|c| c.group);
        let cover: Vec<(Vec<Option<u32>>, f64)> = self
            .programs
            .iter()
            .map(|prog| {
                let period = prog.period() as u32;
                let mut dist: Vec<Option<u32>> = vec![None; period as usize];
                let mut pairs = 0u64;
                if let Some(group) = group {
                    for (off, s) in prog.slots().iter().enumerate() {
                        if matches!(s, Slot::Repair(_)) {
                            for o in prog.coverage_window(off as u32, group) {
                                let d = (off as u32 + period - o) % period;
                                pairs += 1;
                                match &mut dist[o as usize] {
                                    Some(e) if *e <= d => {}
                                    e => *e = Some(d),
                                }
                            }
                        }
                    }
                }
                let covered = dist.iter().flatten().count();
                let lambda = if covered == 0 {
                    0.0
                } else {
                    pairs as f64 / covered as f64
                };
                let sigma = group
                    .map(|k| peeling_success(loss, k as f64, lambda))
                    .unwrap_or(0.0);
                (dist, sigma)
            })
            .collect();

        let mut delay = 0.0;
        for (p, &pr) in probs.iter().enumerate().take(self.num_pages()) {
            if pr == 0.0 {
                continue;
            }
            let ch = self.page_channel[p] as usize;
            let prog = &self.programs[ch];
            let local = PageId(self.page_local[p]);
            let period = prog.period() as f64;
            let base: f64 = prog
                .gaps(local)
                .iter()
                .map(|g| g * g / (2.0 * period))
                .sum();
            let starts = prog.page_starts(local);
            let covered: Vec<u32> = starts
                .iter()
                .filter_map(|&o| cover[ch].0[o as usize])
                .collect();
            let freq = starts.len() as f64;
            let q = covered.len() as f64 / freq;
            let r_bar = if covered.is_empty() {
                0.0
            } else {
                covered.iter().map(|&d| d as f64).sum::<f64>() / covered.len() as f64
            };
            let s = q * cover[ch].1;
            let g_bar = period / freq;
            let x = (s * r_bar + (1.0 - s) * g_bar) / (1.0 - (1.0 - s) * loss);
            delay += pr * (base + loss * x);
        }
        delay
    }
}

/// Least fixed point of the peeling (belief-propagation) recursion for a
/// sparse erasure code: the probability that a lost slot covered by `lambda`
/// symbols of degree ≤ `k` is eventually reconstructed under i.i.d. slot
/// loss `loss`. The map is monotone increasing in σ, so iterating from 0
/// converges to the least fixed point — below the code's threshold it
/// climbs to ~1 (the waterfall), above it it stalls near 0, which is the
/// real bistability of iterative erasure decoding.
fn peeling_success(loss: f64, k: f64, lambda: f64) -> f64 {
    if lambda == 0.0 || k < 1.0 {
        return 0.0;
    }
    let mut sigma = 0.0f64;
    for _ in 0..256 {
        let member_known = 1.0 - loss * (1.0 - sigma);
        let symbol_useful = (1.0 - loss) * member_known.powf(k - 1.0);
        let next = 1.0 - (1.0 - symbol_useful).powf(lambda);
        if (next - sigma).abs() < 1e-12 {
            return next;
        }
        sigma = next;
    }
    sigma
}

/// Rewrites one channel's program with `floor(rate · period)` repair
/// slots: empty slots first (offset order), then stolen duplicate airings
/// spread evenly across the period (the spare airing nearest each evenly
/// spaced anchor, never a page's last airing). Spreading matters: the
/// spare airings cluster where the hot disks' chunks sit, and converting
/// them in place would leave the cold disks' segments — exactly where
/// clients wait longest after a loss — outside every coverage window.
/// The period is preserved and page positions are recomputed, so every
/// timing query (`next_arrival`, `gaps`, …) stays correct automatically.
fn coded_program(prog: &BroadcastProgram, rate: f64) -> Result<BroadcastProgram, SchedError> {
    let period = prog.period();
    let target = (rate * period as f64).floor() as usize;
    let mut slots = prog.slots().to_vec();
    let mut chosen: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Slot::Empty))
        .map(|(i, _)| i)
        .take(target)
        .collect();
    let deficit = target - chosen.len();
    if deficit > 0 {
        let mut taken = vec![false; period];
        for &i in &chosen {
            taken[i] = true;
        }
        // Stealing discipline: a page gives up at most ⌊(freq−1)/2⌋ of its
        // airings, and never two adjacent ones, so no surviving gap more
        // than doubles. Without it a page can be hollowed out to a single
        // airing per period — its recovery wait then *grows* with the code
        // rate, which is exactly backwards.
        let mut stolen: Vec<u64> = vec![0; prog.num_pages()];
        // Anchors follow the van der Corput (bit-reversal) sequence: every
        // prefix of it is evenly spread over the period, so rates *nest* —
        // a lower rate's stolen offsets are exactly the prefix of a higher
        // rate's walk through the same anchor order.
        'anchors: for k in 0..deficit {
            let ideal = (van_der_corput(k as u64 + 1) * period as f64) as usize % period;
            for d in 0..period {
                for off in [(ideal + d) % period, (ideal + period - d % period) % period] {
                    if taken[off] {
                        continue;
                    }
                    if let Slot::Page(p) = slots[off] {
                        if stolen[p.0 as usize] >= prog.frequency(p).saturating_sub(1) / 2 {
                            continue;
                        }
                        // Fixed-gap programs expose the page's neighboring
                        // airings directly; refuse a steal next to one.
                        if let Some(gap) = prog.gap(p) {
                            let gap = gap as usize % period;
                            let prev = (off + period - gap) % period;
                            let next = (off + gap) % period;
                            let hit =
                                |o: usize| taken[o] && matches!(slots[o], Slot::Page(q) if q == p);
                            if hit(prev) || hit(next) {
                                continue;
                            }
                        }
                        taken[off] = true;
                        stolen[p.0 as usize] += 1;
                        chosen.push(off);
                        continue 'anchors;
                    }
                }
            }
            break; // every remaining airing is protected — stop short
        }
    }
    chosen.sort_unstable();
    for (rid, &off) in chosen.iter().enumerate() {
        slots[off] = Slot::Repair(RepairId(rid as u32));
    }
    let disk_of = |p: PageId| prog.disk_of(p) as u16;
    BroadcastProgram::from_slots(slots, Some(&disk_of), prog.disk_frequencies().to_vec())
}

/// The base-2 van der Corput value of `k`: `k`'s binary digits mirrored
/// about the binary point. Every prefix of the sequence is low-discrepancy
/// over `[0, 1)`.
fn van_der_corput(mut k: u64) -> f64 {
    let mut v = 0.0;
    let mut half = 0.5;
    while k > 0 {
        if k & 1 == 1 {
            v += half;
        }
        half *= 0.5;
        k >>= 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d_small() -> DiskLayout {
        DiskLayout::new(vec![4, 6, 8], vec![4, 2, 1]).unwrap()
    }

    #[test]
    fn one_channel_plan_is_the_program() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 1).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        assert_eq!(plan.num_channels(), 1);
        assert_eq!(plan.program(ChannelId(0)).slots(), program.slots());
        for p in 0..layout.total_pages() as u32 {
            let page = PageId(p);
            assert_eq!(plan.channel_of(page), ChannelId(0));
            assert_eq!(plan.disk_of(page), layout.disk_of(page));
            assert_eq!(plan.frequency(page), program.frequency(page));
            for t in [0.0, 3.5, 17.0, 100.25] {
                assert_eq!(plan.next_arrival(page, t), program.next_arrival(page, t));
            }
        }
    }

    #[test]
    fn single_wraps_program_identically() {
        let layout = d_small();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let plan = BroadcastPlan::single(program.clone());
        assert_eq!(plan.num_channels(), 1);
        assert_eq!(plan.num_pages(), program.num_pages());
        for seq in 0..2 * program.period() as u64 {
            assert_eq!(plan.slot_at(ChannelId(0), seq), program.slot_at(seq));
        }
        assert_eq!(plan.disk_frequencies(), program.disk_frequencies());
    }

    #[test]
    fn pages_partition_across_channels() {
        let layout = d_small();
        for channels in 1..=4 {
            let plan = BroadcastPlan::generate(&layout, channels).unwrap();
            assert_eq!(plan.num_channels(), channels);
            // Every page lands on exactly one channel; the per-channel
            // global translations partition the page set.
            let mut seen = vec![false; layout.total_pages()];
            for c in 0..channels {
                let ch = ChannelId(c as u16);
                let prog = plan.program(ch);
                for local in 0..prog.num_pages() as u32 {
                    let g = plan.global_page(ch, PageId(local));
                    assert!(!seen[g.index()], "page {g} on two channels");
                    seen[g.index()] = true;
                    assert_eq!(plan.channel_of(g), ch);
                }
            }
            assert!(seen.iter().all(|&s| s), "some page on no channel");
        }
    }

    #[test]
    fn striping_spreads_hot_disk_first() {
        // Disk 1 has 4 pages; with 2 channels each channel gets 2 of them.
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        assert_eq!(plan.channel_of(PageId(0)), ChannelId(0));
        assert_eq!(plan.channel_of(PageId(1)), ChannelId(1));
        assert_eq!(plan.channel_of(PageId(2)), ChannelId(0));
        assert_eq!(plan.channel_of(PageId(3)), ChannelId(1));
        // Hot pages keep their high frequency on their channel.
        assert_eq!(plan.frequency(PageId(0)), 4);
        assert_eq!(plan.frequency(PageId(1)), 4);
    }

    #[test]
    fn more_channels_shrink_expected_delay() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        let n = layout.total_pages();
        let probs = vec![1.0 / n as f64; n];
        let mut last = f64::INFINITY;
        for channels in 1..=4 {
            let plan = BroadcastPlan::generate(&layout, channels).unwrap();
            let d = plan.expected_delay(&probs);
            assert!(
                d <= last + 1e-9,
                "delay increased at {channels} channels: {d} > {last}"
            );
            last = d;
        }
    }

    #[test]
    fn small_disks_drop_out_of_late_channels() {
        // Disk 1 has a single page: channel 1 gets only disks 2 and 3.
        let layout = DiskLayout::new(vec![1, 2, 8], vec![4, 2, 1]).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        assert_eq!(plan.channel_of(PageId(0)), ChannelId(0));
        let ch1 = plan.program(ChannelId(1));
        assert_eq!(ch1.num_pages(), 5); // pages 2, 4, 6, 8, 10
        assert_eq!(plan.disk_of(PageId(2)), 1);
        // The dropped disk does not distort disk accounting.
        assert_eq!(plan.num_disks(), 3);
    }

    #[test]
    fn too_many_channels_rejected() {
        let layout = DiskLayout::new(vec![1, 1], vec![2, 1]).unwrap();
        assert_eq!(
            BroadcastPlan::generate(&layout, 3).unwrap_err(),
            SchedError::EmptyChannel { channel: 1 }
        );
        assert_eq!(
            BroadcastPlan::generate(&layout, 0).unwrap_err(),
            SchedError::NoChannels
        );
    }

    #[test]
    fn slot_at_translates_to_global_ids() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 3).unwrap();
        for c in 0..3u16 {
            let ch = ChannelId(c);
            for seq in 0..plan.period_of(ch) as u64 {
                if let Slot::Page(g) = plan.slot_at(ch, seq) {
                    assert_eq!(plan.channel_of(g), ch);
                    assert!(g.index() < plan.num_pages());
                }
            }
        }
    }

    #[test]
    fn coding_rate_zero_is_identity() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        let coded = plan
            .clone()
            .with_coding(CodingConfig::xor(0.0, 4, 42))
            .unwrap();
        assert!(coded.coding().is_none());
        for c in 0..2u16 {
            let ch = ChannelId(c);
            assert_eq!(coded.program(ch).slots(), plan.program(ch).slots());
        }
    }

    #[test]
    fn coding_preserves_period_and_every_page() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        for channels in 1..=3 {
            let plan = BroadcastPlan::generate(&layout, channels).unwrap();
            for rate in [0.05, 0.1, 0.25] {
                let coded = plan
                    .clone()
                    .with_coding(CodingConfig::xor(rate, 8, 7))
                    .unwrap();
                for c in 0..channels as u16 {
                    let ch = ChannelId(c);
                    let before = plan.program(ch);
                    let after = coded.program(ch);
                    assert_eq!(after.period(), before.period());
                    let target = (rate * before.period() as f64).floor() as usize;
                    assert_eq!(after.repair_slots(), target, "rate {rate} {ch}");
                    // Every page still airs at least once per period.
                    for p in 0..before.num_pages() as u32 {
                        assert!(after.frequency(PageId(p)) >= 1);
                    }
                }
                // Timing queries still agree with the slot feed.
                for p in 0..layout.total_pages() as u32 {
                    let page = PageId(p);
                    let t = coded.next_arrival(page, 3.5);
                    assert_eq!(
                        coded.slot_at(coded.channel_of(page), t as u64),
                        Slot::Page(page)
                    );
                }
            }
        }
    }

    #[test]
    fn coding_converts_padding_before_stealing() {
        // A layout whose program has padding: conversions must hit the
        // empty slots first, so low rates cost no data airings at all.
        let layout = DiskLayout::new(vec![1, 5], vec![3, 1]).unwrap();
        let plan = BroadcastPlan::generate(&layout, 1).unwrap();
        let prog = plan.program(ChannelId(0));
        let empties = prog.empty_slots();
        if empties > 0 {
            let rate = empties as f64 / prog.period() as f64 - 1e-9;
            let coded = plan
                .clone()
                .with_coding(CodingConfig::xor(rate, 4, 1))
                .unwrap();
            let after = coded.program(ChannelId(0));
            for p in 0..prog.num_pages() as u32 {
                assert_eq!(after.frequency(PageId(p)), prog.frequency(PageId(p)));
            }
        }
        // Past the padding, stealing kicks in but never drops a page.
        let coded = plan.with_coding(CodingConfig::xor(0.3, 4, 1)).unwrap();
        let after = coded.program(ChannelId(0));
        for p in 0..after.num_pages() as u32 {
            assert!(after.frequency(PageId(p)) >= 1);
        }
        assert!(after.repair_slots() > empties);
    }

    #[test]
    fn coding_rates_nest() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        let lo = plan
            .clone()
            .with_coding(CodingConfig::xor(0.05, 8, 7))
            .unwrap();
        let hi = plan.with_coding(CodingConfig::xor(0.2, 8, 7)).unwrap();
        for c in 0..2u16 {
            let ch = ChannelId(c);
            for (i, s) in lo.program(ch).slots().iter().enumerate() {
                if matches!(s, Slot::Repair(_)) {
                    assert!(
                        matches!(hi.program(ch).slots()[i], Slot::Repair(_)),
                        "slot {i} on {ch} repaired at rate 0.05 but not 0.2"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_coding_rejected() {
        let plan = BroadcastPlan::generate(&d_small(), 1).unwrap();
        for bad in [-0.1, 1.0, f64::NAN] {
            assert!(matches!(
                plan.clone().with_coding(CodingConfig::xor(bad, 4, 0)),
                Err(SchedError::InvalidCoding { .. })
            ));
        }
        assert!(matches!(
            plan.clone().with_coding(CodingConfig::xor(0.1, 0, 0)),
            Err(SchedError::InvalidCoding { .. })
        ));
    }

    #[test]
    fn channel_stats_split_per_channel() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        let stats = plan.channel_stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.period, plan.period_of(s.channel));
            assert_eq!(s.data_slots + s.empty_slots + s.repair_slots, s.period);
            assert_eq!(s.empty_slots, plan.empty_slots_of(s.channel));
            assert_eq!(s.repair_slots, 0);
        }
        let coded = plan.with_coding(CodingConfig::xor(0.1, 8, 7)).unwrap();
        for s in coded.channel_stats() {
            assert_eq!(s.repair_slots, coded.repair_slots_of(s.channel));
            assert!(s.repair_slots > 0);
        }
        let summary = coded.summary();
        assert!(summary.contains("ch0:") && summary.contains("ch1:"));
        assert!(summary.contains("repair="));
    }

    #[test]
    fn lossy_delay_reduces_and_improves_with_rate() {
        let layout = DiskLayout::with_delta(&[8, 24, 32], 3).unwrap();
        let n = layout.total_pages();
        let probs = vec![1.0 / n as f64; n];
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        // loss = 0 equals the lossless model.
        assert!(
            (plan.expected_delay_lossy(&probs, 0.0) - plan.expected_delay(&probs)).abs() < 1e-12
        );
        // Without coding, loss strictly hurts.
        let lossless = plan.expected_delay(&probs);
        let lossy = plan.expected_delay_lossy(&probs, 0.1);
        assert!(lossy > lossless);
        // Higher coding rate strictly helps at fixed loss until hot-slot
        // coverage saturates (the base delay grows slightly from stolen
        // airings, and cold frequency-1 slots are uncoverable, so past
        // saturation extra symbols only cost airings).
        let mut last = lossy;
        for rate in [0.05, 0.1] {
            let coded = plan
                .clone()
                .with_coding(CodingConfig::xor(rate, 8, 7))
                .unwrap();
            let d = coded.expected_delay_lossy(&probs, 0.1);
            assert!(d < last, "rate {rate}: {d} !< {last}");
            last = d;
        }
        // Past saturation: still strictly better than no coding at all.
        let saturated = plan
            .clone()
            .with_coding(CodingConfig::xor(0.2, 8, 7))
            .unwrap()
            .expected_delay_lossy(&probs, 0.1);
        assert!(
            saturated < lossy,
            "saturated {saturated} !< uncoded {lossy}"
        );
    }

    #[test]
    fn epoch_tags_and_hash_distinguish_plans() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        assert_eq!(plan.epoch(), 0);
        let e3 = plan.clone().with_epoch(3);
        assert_eq!(e3.epoch(), 3);
        // Same structure, same epoch → same hash; epoch, coding, or layout
        // changes move it.
        assert_eq!(plan.plan_hash(), plan.clone().plan_hash());
        assert_ne!(plan.plan_hash(), e3.plan_hash());
        let coded = plan
            .clone()
            .with_coding(CodingConfig::xor(0.1, 4, 9))
            .unwrap();
        assert_ne!(plan.plan_hash(), coded.plan_hash());
        let other = BroadcastPlan::generate(&layout, 1).unwrap();
        assert_ne!(plan.plan_hash(), other.plan_hash());
    }

    #[test]
    fn next_arrival_matches_slot_feed() {
        let layout = d_small();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        for c in 0..2u16 {
            let ch = ChannelId(c);
            for seq in 0..2 * plan.period_of(ch) as u64 {
                if let Slot::Page(g) = plan.slot_at(ch, seq) {
                    assert_eq!(plan.next_arrival(g, seq as f64), seq as f64);
                }
            }
        }
    }
}
