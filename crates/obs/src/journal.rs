//! Bounded ring-buffer event journal.
//!
//! The journal records small structured [`Event`]s (slot ticks, enqueues,
//! drops, disconnects, cache admissions/evictions, backpressure stalls)
//! into a fixed-capacity ring of atomic cells. Writers **never block** and
//! never allocate: a writer claims a monotone sequence number with one
//! `fetch_add`, then publishes its fields into the slot `seq % capacity`
//! with a seqlock-style commit word. When the ring wraps, the oldest
//! events are overwritten and readers are told exactly how many they
//! missed — overflow is explicit, not silent.
//!
//! Readers ([`Journal::since`]) copy events out by validating the commit
//! word before and after reading the fields, so a torn read (a writer
//! lapped the reader mid-copy) is detected and the slot skipped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default ring capacity (events). Power of two; ~64 KiB of cells.
pub const DEFAULT_CAPACITY: usize = 8192;

/// The kind of a journal event. Discriminants are stable (serialized into
/// CSV/JSON by number and name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// The engine broadcast one slot (`a` = slot sequence, `b` = page id).
    SlotTick = 0,
    /// A frame batch was enqueued to a client queue (`a` = queue id,
    /// `b` = frames delivered).
    Enqueue = 1,
    /// Frames were dropped at a full client queue (`a` = queue id,
    /// `b` = frames dropped).
    Drop = 2,
    /// A client disconnected or was force-disconnected (`a` = queue or
    /// connection id, `b` = 1 if forced by backpressure policy).
    Disconnect = 3,
    /// A page was admitted to a client cache (`a` = client id,
    /// `b` = page id).
    CacheAdmit = 4,
    /// A page was evicted from a client cache (`a` = client id,
    /// `b` = page id).
    CacheEvict = 5,
    /// A producer stalled on a full queue under `Backpressure::Block`
    /// (`a` = queue id, `b` = backlog at stall).
    BackpressureStall = 6,
    /// A fault was injected into the broadcast (`a` = slot sequence,
    /// `b` = fault code: 0 erase, 1 corrupt, 2 delay, 3 kill, 4 overrun).
    FaultInjected = 7,
    /// A client detected a gap in the frame sequence (`a` = first missed
    /// slot sequence, `b` = gap length in slots).
    FrameGap = 8,
    /// A client recovered a lost page at its next periodic broadcast
    /// (`a` = page id, `b` = slots waited since the missed broadcast).
    Recovery = 9,
    /// A TCP client feed reconnected after losing its connection
    /// (`a` = feed id, `b` = connect attempts this outage).
    Reconnect = 10,
    /// A receiver adopted a new broadcast-plan epoch at a fence
    /// (`a` = new epoch id, `b` = the epoch's slot-clock base).
    EpochSwap = 11,
}

impl EventKind {
    /// Stable lower-snake name (used in CSV/JSON output).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SlotTick => "slot_tick",
            EventKind::Enqueue => "enqueue",
            EventKind::Drop => "drop",
            EventKind::Disconnect => "disconnect",
            EventKind::CacheAdmit => "cache_admit",
            EventKind::CacheEvict => "cache_evict",
            EventKind::BackpressureStall => "backpressure_stall",
            EventKind::FaultInjected => "fault_injected",
            EventKind::FrameGap => "frame_gap",
            EventKind::Recovery => "recovery",
            EventKind::Reconnect => "reconnect",
            EventKind::EpochSwap => "epoch_swap",
        }
    }

    /// The kind for a stable wire discriminant, if `v` is one.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => EventKind::SlotTick,
            1 => EventKind::Enqueue,
            2 => EventKind::Drop,
            3 => EventKind::Disconnect,
            4 => EventKind::CacheAdmit,
            5 => EventKind::CacheEvict,
            6 => EventKind::BackpressureStall,
            7 => EventKind::FaultInjected,
            8 => EventKind::FrameGap,
            9 => EventKind::Recovery,
            10 => EventKind::Reconnect,
            11 => EventKind::EpochSwap,
            _ => return None,
        })
    }
}

/// One journal event: a kind and two kind-specific operands (see the
/// [`EventKind`] variants for what `a`/`b` mean per kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number assigned at record time.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// First operand (kind-specific).
    pub a: u64,
    /// Second operand (kind-specific).
    pub b: u64,
}

/// One ring slot. `commit` is a seqlock word: `0` = never written,
/// `u64::MAX` = write in progress, `seq + 1` = slot holds event `seq`.
struct Cell {
    commit: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The bounded, overwrite-oldest event ring.
pub struct Journal {
    cells: Box<[Cell]>,
    /// Next sequence number to assign (== total events ever recorded).
    head: AtomicU64,
    mask: u64,
}

/// The result of a [`Journal::since`] read: the events that are still in
/// the ring at or after the requested sequence, plus how many the ring had
/// already overwritten (or the reader had torn-skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBatch {
    /// Recovered events, in sequence order.
    pub events: Vec<Event>,
    /// Events in `[since, head)` that could not be returned because the
    /// ring overwrote them (or a concurrent writer tore the read).
    pub dropped: u64,
    /// The next sequence to pass as `since` to continue tailing.
    pub next_seq: u64,
}

impl Journal {
    /// A journal with `capacity` slots, rounded up to a power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let cells = (0..cap)
            .map(|_| Cell {
                commit: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        Self {
            cells,
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Records an event. Never blocks, never allocates; overwrites the
    /// oldest event when the ring is full. Callers gate on
    /// [`crate::tracing_enabled`] *before* building the event.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let cell = &self.cells[(seq & self.mask) as usize];
        // Seqlock write: mark in-progress, publish fields, commit seq+1.
        cell.commit.store(u64::MAX, Ordering::Release);
        cell.kind.store(kind as u64, Ordering::Relaxed);
        cell.a.store(a, Ordering::Relaxed);
        cell.b.store(b, Ordering::Relaxed);
        cell.commit.store(seq + 1, Ordering::Release);
        seq
    }

    /// Total events ever recorded (the next sequence number).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Reads every event with `seq >= since` still present in the ring.
    ///
    /// Events older than `head - capacity` have been overwritten; they are
    /// counted in [`EventBatch::dropped`] rather than silently elided.
    pub fn since(&self, since: u64) -> EventBatch {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.cells.len() as u64;
        let oldest = head.saturating_sub(cap);
        let start = since.max(oldest);
        let mut dropped = start - since; // events already overwritten
        let mut events = Vec::with_capacity(head.saturating_sub(start) as usize);
        for seq in start..head {
            let cell = &self.cells[(seq & self.mask) as usize];
            let before = cell.commit.load(Ordering::Acquire);
            if before != seq + 1 {
                // Overwritten by a newer event or mid-write: lost.
                dropped += 1;
                continue;
            }
            let kind = cell.kind.load(Ordering::Relaxed);
            let a = cell.a.load(Ordering::Relaxed);
            let b = cell.b.load(Ordering::Relaxed);
            let after = cell.commit.load(Ordering::Acquire);
            if after != seq + 1 {
                dropped += 1;
                continue;
            }
            match EventKind::from_u8(kind as u8) {
                Some(kind) => events.push(Event { seq, kind, a, b }),
                None => dropped += 1,
            }
        }
        EventBatch {
            events,
            dropped,
            next_seq: head,
        }
    }
}

static JOURNAL: OnceLock<Journal> = OnceLock::new();

/// The process-wide journal, materialized on first use (call this — e.g.
/// via [`crate::set_tracing_enabled`]`(true)` — outside hot paths so the
/// one-time ring allocation never lands in an allocation-free section).
pub fn journal() -> &'static Journal {
    JOURNAL.get_or_init(|| Journal::with_capacity(DEFAULT_CAPACITY))
}

/// Records `kind(a, b)` into the process journal if tracing is enabled.
/// One relaxed load when disabled; lock- and allocation-free when enabled.
#[inline]
pub fn event(kind: EventKind, a: u64, b: u64) {
    if crate::tracing_enabled() {
        journal().record(kind, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_in_order() {
        let j = Journal::with_capacity(16);
        for i in 0..5 {
            j.record(EventKind::SlotTick, i, i * 10);
        }
        let batch = j.since(0);
        assert_eq!(batch.dropped, 0);
        assert_eq!(batch.next_seq, 5);
        assert_eq!(batch.events.len(), 5);
        for (i, e) in batch.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, EventKind::SlotTick);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, i as u64 * 10);
        }
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let j = Journal::with_capacity(8);
        for i in 0..20 {
            j.record(EventKind::Enqueue, i, 0);
        }
        let batch = j.since(0);
        // Ring holds the last 8 of 20; 12 were overwritten.
        assert_eq!(batch.dropped, 12);
        assert_eq!(batch.events.len(), 8);
        assert_eq!(batch.events.first().unwrap().seq, 12);
        assert_eq!(batch.events.last().unwrap().seq, 19);
        assert_eq!(batch.next_seq, 20);
    }

    #[test]
    fn since_resumes_from_cursor() {
        let j = Journal::with_capacity(16);
        for i in 0..4 {
            j.record(EventKind::Drop, i, 1);
        }
        let first = j.since(0);
        assert_eq!(first.events.len(), 4);
        let again = j.since(first.next_seq);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
        j.record(EventKind::Drop, 99, 1);
        let tail = j.since(first.next_seq);
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.events[0].a, 99);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Journal::with_capacity(100).capacity(), 128);
        assert_eq!(Journal::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn concurrent_writers_keep_sequences_unique() {
        use std::sync::Arc;
        let j = Arc::new(Journal::with_capacity(1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let j = Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    j.record(EventKind::Enqueue, t, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let batch = j.since(0);
        assert_eq!(batch.events.len() as u64 + batch.dropped, 800);
        let mut seqs: Vec<u64> = batch.events.iter().map(|e| e.seq).collect();
        let len = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), len, "sequence numbers must be unique");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::SlotTick.name(), "slot_tick");
        assert_eq!(EventKind::BackpressureStall.name(), "backpressure_stall");
        assert_eq!(EventKind::FaultInjected.name(), "fault_injected");
        assert_eq!(EventKind::FrameGap.name(), "frame_gap");
        assert_eq!(EventKind::Recovery.name(), "recovery");
        assert_eq!(EventKind::Reconnect.name(), "reconnect");
        assert_eq!(EventKind::EpochSwap.name(), "epoch_swap");
        assert_eq!(EventKind::from_u8(4), Some(EventKind::CacheAdmit));
        assert_eq!(EventKind::from_u8(7), Some(EventKind::FaultInjected));
        assert_eq!(EventKind::from_u8(10), Some(EventKind::Reconnect));
        assert_eq!(EventKind::from_u8(11), Some(EventKind::EpochSwap));
        assert_eq!(EventKind::from_u8(200), None);
    }
}
