//! The lock-free metrics core: sharded counters, gauges, fixed-bucket
//! histograms, and the process-wide registry they live in.
//!
//! ## Hot-path contract
//!
//! Recording ([`Counter::add`], [`Gauge::set`], [`Histogram::record`]) is
//! one relaxed load of the global enable flag plus one or two atomic RMWs
//! on a **per-thread shard** — no locks, no allocation, no syscalls. All
//! storage is allocated once at registration time. Counters and histograms
//! are sharded [`SHARDS`] ways and each thread hashes to a fixed shard
//! (assigned on first use), so concurrent writers on different cores do
//! not bounce one cache line.
//!
//! ## Registration
//!
//! Metrics are registered by **static name** (plus an optional static
//! label key with an owned value, for small families like per-shard queue
//! depths) and live for the process lifetime (`&'static`). Registration is
//! idempotent: asking for an already-registered `(name, labels)` returns
//! the existing metric, so instrument sites can call the register function
//! from a `OnceLock` initializer — or repeatedly — without double counting.
//! Re-registering a name as a different metric kind panics.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics_enabled;

/// Number of write shards per counter/histogram (power of two).
pub const SHARDS: usize = 8;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index, assigned round-robin on first use.
#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(i);
        }
        i & (SHARDS - 1)
    })
}

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotone sharded counter.
pub struct Counter {
    shards: Box<[PaddedU64]>,
}

impl Counter {
    /// A standalone (unregistered) counter. Instrument sites normally use
    /// [`counter`]; this constructor exists for tests of the merge math.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
        }
    }

    /// Adds `n` to this thread's shard. Lock- and allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The summed value across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard values, in shard order (for merge-property tests).
    pub fn shard_values(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .collect()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time signed gauge (single atomic; gauges are set by one
/// writer or are naturally last-write-wins).
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A standalone (unregistered) gauge.
    pub fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if !metrics_enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds to the gauge (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if !metrics_enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if !metrics_enabled() {
            return;
        }
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

struct HistogramShard {
    /// One slot per bound plus the overflow (`+Inf`) bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A sharded histogram over fixed integer bucket upper bounds.
///
/// Buckets are `v <= bounds[i]` plus a final `+Inf` bucket; `record` does a
/// short linear scan (bounds are small, typically ≤ 16) and two atomic
/// adds on this thread's shard.
pub struct Histogram {
    bounds: &'static [u64],
    shards: Box<[HistogramShard]>,
}

/// Power-of-two bounds 1..=4096 — the default scale for queue depths,
/// batch sizes, and backlog counts.
pub const POW2_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Response-time bounds in broadcast units (slots), resolving the paper's
/// typical 0–3000-unit range.
pub const RESPONSE_BOUNDS: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000];

impl Histogram {
    /// A standalone (unregistered) histogram over `bounds`, which must be
    /// non-empty and strictly increasing.
    pub fn with_bounds(bounds: &'static [u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let shards = (0..SHARDS)
            .map(|_| HistogramShard {
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
            .collect();
        Self { bounds, shards }
    }

    /// Records one observation. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let shard = &self.shards[shard_index()];
        shard.counts[idx].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Snapshot of one shard (for merge-property tests).
    pub fn shard_snapshot(&self, shard: usize) -> HistogramSnapshot {
        let s = &self.shards[shard];
        HistogramSnapshot {
            bounds: self.bounds,
            counts: s.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: s.sum.load(Ordering::Relaxed),
            count: s.count.load(Ordering::Relaxed),
        }
    }

    /// Merged snapshot across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = self.shard_snapshot(0);
        for i in 1..SHARDS {
            out.merge(&self.shard_snapshot(i));
        }
        out
    }
}

/// A plain-data histogram state: per-bucket counts (including the final
/// `+Inf` bucket), the observation sum, and the observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (shared with the live histogram).
    pub bounds: &'static [u64],
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last is +Inf).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Merges another snapshot of the same bounds into this one.
    /// Commutative and associative, so per-shard snapshots merge to the
    /// same result in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// What a registered metric is.
#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    metric: Metric,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn register_metric(
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    make: impl FnOnce() -> Metric,
) -> Metric {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    if let Some(e) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        // Idempotent: a kind mismatch surfaces as a panic in the caller's
        // match on the returned variant.
        return e.metric;
    }
    let metric = make();
    reg.push(Entry {
        name,
        help,
        labels,
        metric,
    });
    metric
}

/// Registers (or returns the existing) counter `name`.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    match register_metric(name, help, Vec::new(), || {
        Metric::Counter(Box::leak(Box::new(Counter::new())))
    }) {
        Metric::Counter(c) => c,
        _ => panic!("metric {name} already registered as a non-counter"),
    }
}

/// Registers (or returns the existing) counter `name{key="value"}`.
pub fn counter_labeled(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    value: impl Into<String>,
) -> &'static Counter {
    match register_metric(name, help, vec![(key, value.into())], || {
        Metric::Counter(Box::leak(Box::new(Counter::new())))
    }) {
        Metric::Counter(c) => c,
        _ => panic!("metric {name} already registered as a non-counter"),
    }
}

/// Registers (or returns the existing) gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    match register_metric(name, help, Vec::new(), || {
        Metric::Gauge(Box::leak(Box::new(Gauge::new())))
    }) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name} already registered as a non-gauge"),
    }
}

/// Registers (or returns the existing) gauge `name{key="value"}`.
pub fn gauge_labeled(
    name: &'static str,
    help: &'static str,
    key: &'static str,
    value: impl Into<String>,
) -> &'static Gauge {
    match register_metric(name, help, vec![(key, value.into())], || {
        Metric::Gauge(Box::leak(Box::new(Gauge::new())))
    }) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name} already registered as a non-gauge"),
    }
}

/// Registers (or returns the existing) histogram `name` over `bounds`.
pub fn histogram(
    name: &'static str,
    help: &'static str,
    bounds: &'static [u64],
) -> &'static Histogram {
    match register_metric(name, help, Vec::new(), || {
        Metric::Histogram(Box::leak(Box::new(Histogram::with_bounds(bounds))))
    }) {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name} already registered as a non-histogram"),
    }
}

/// A point-in-time value of one registered series.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One registered series, snapshotted.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Label pairs (possibly empty).
    pub labels: Vec<(&'static str, String)>,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// Snapshots every registered series, in registration order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.iter()
        .map(|e| MetricSnapshot {
            name: e.name,
            help: e.help,
            labels: e.labels.clone(),
            value: match e.metric {
                Metric::Counter(c) => SnapshotValue::Counter(c.value()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.value()),
                Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let _g = crate::test_switch_guard();
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.value(), 6);
        assert_eq!(c.shard_values().iter().sum::<u64>(), 6);
    }

    #[test]
    fn gauge_set_add_max() {
        let _g = crate::test_switch_guard();
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.set_max(5);
        assert_eq!(g.value(), 7, "set_max never lowers");
        g.set_max(20);
        assert_eq!(g.value(), 20);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let _g = crate::test_switch_guard();
        static BOUNDS: &[u64] = &[1, 4, 16];
        let h = Histogram::with_bounds(BOUNDS);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2, 2]); // <=1, <=4, <=16, +Inf
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1045); // 0+1+2+4+5+16+17+1000
    }

    #[test]
    fn registration_is_idempotent() {
        let _g = crate::test_switch_guard();
        let a = counter("obs_test_idem_total", "test");
        let b = counter("obs_test_idem_total", "test");
        assert!(std::ptr::eq(a, b), "same name must return same counter");
        a.inc();
        assert_eq!(b.value(), a.value());
    }

    #[test]
    fn labeled_series_are_distinct() {
        let _g = crate::test_switch_guard();
        let a = gauge_labeled("obs_test_labeled", "test", "shard", "0");
        let b = gauge_labeled("obs_test_labeled", "test", "shard", "1");
        assert!(!std::ptr::eq(a, b));
        a.set(1);
        b.set(2);
        let snaps: Vec<_> = snapshot()
            .into_iter()
            .filter(|s| s.name == "obs_test_labeled")
            .collect();
        assert_eq!(snaps.len(), 2);
    }

    #[test]
    fn disabled_metrics_freeze() {
        let _g = crate::test_switch_guard();
        let c = counter("obs_test_disable_total", "test");
        c.inc();
        let before = c.value();
        crate::set_metrics_enabled(false);
        c.inc();
        assert_eq!(c.value(), before, "disabled counter must not move");
        crate::set_metrics_enabled(true);
        c.inc();
        assert_eq!(c.value(), before + 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_rejected() {
        let _ = Histogram::with_bounds(&[4, 4]);
    }
}
