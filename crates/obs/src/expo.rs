//! Rendering the registry snapshot as Prometheus text exposition format
//! and as JSONL, and the event journal as JSON/CSV lines.
//!
//! The Prometheus renderer follows the text exposition format 0.0.4:
//! one `# HELP` and `# TYPE` line per metric *name* (shared across a
//! labeled family), label values escaped (`\\`, `\"`, `\n`), histograms
//! expanded into cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`.

use std::fmt::Write as _;

use crate::journal::{Event, EventBatch};
use crate::registry::{snapshot, MetricSnapshot, SnapshotValue};

/// Escapes a label value per the Prometheus text format: backslash,
/// double-quote, and newline are escaped.
fn escape_label(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    out.push('}');
}

fn render_one(out: &mut String, m: &MetricSnapshot) {
    match &m.value {
        SnapshotValue::Counter(v) => {
            out.push_str(m.name);
            write_labels(out, &m.labels, None);
            let _ = writeln!(out, " {v}");
        }
        SnapshotValue::Gauge(v) => {
            out.push_str(m.name);
            write_labels(out, &m.labels, None);
            let _ = writeln!(out, " {v}");
        }
        SnapshotValue::Histogram(h) => {
            let mut cumulative = 0u64;
            for (i, bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                let _ = write!(out, "{}_bucket", m.name);
                let le = bound.to_string();
                write_labels(out, &m.labels, Some(("le", &le)));
                let _ = writeln!(out, " {cumulative}");
            }
            cumulative += h.counts[h.bounds.len()];
            let _ = write!(out, "{}_bucket", m.name);
            write_labels(out, &m.labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {cumulative}");
            let _ = write!(out, "{}_sum", m.name);
            write_labels(out, &m.labels, None);
            let _ = writeln!(out, " {}", h.sum);
            let _ = write!(out, "{}_count", m.name);
            write_labels(out, &m.labels, None);
            let _ = writeln!(out, " {}", h.count);
        }
    }
}

fn type_name(v: &SnapshotValue) -> &'static str {
    match v {
        SnapshotValue::Counter(_) => "counter",
        SnapshotValue::Gauge(_) => "gauge",
        SnapshotValue::Histogram(_) => "histogram",
    }
}

/// Renders a list of snapshots as Prometheus text exposition format.
/// `# HELP`/`# TYPE` headers are emitted once per metric name, with all
/// series of a labeled family grouped under them.
pub fn render_prometheus_from(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut done: Vec<&str> = Vec::new();
    for m in snaps {
        if done.contains(&m.name) {
            continue;
        }
        done.push(m.name);
        let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
        let _ = writeln!(out, "# TYPE {} {}", m.name, type_name(&m.value));
        for series in snaps.iter().filter(|s| s.name == m.name) {
            render_one(&mut out, series);
        }
    }
    out
}

/// Snapshots the process registry and renders it as Prometheus text.
pub fn render_prometheus() -> String {
    render_prometheus_from(&snapshot())
}

fn json_escape(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_labels(out: &mut String, labels: &[(&'static str, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":\"");
        json_escape(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Renders a list of snapshots as JSONL: one JSON object per line with
/// `name`, `type`, `labels`, and a kind-specific `value`.
pub fn render_jsonl_from(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snaps {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"type\":\"{}\"",
            m.name,
            type_name(&m.value)
        );
        out.push_str(",\"labels\":");
        json_labels(&mut out, &m.labels);
        match &m.value {
            SnapshotValue::Counter(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            SnapshotValue::Gauge(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            SnapshotValue::Histogram(h) => {
                out.push_str(",\"buckets\":[");
                for (i, b) in h.bounds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{}]", b, h.counts[i]);
                }
                if !h.bounds.is_empty() {
                    out.push(',');
                }
                let _ = write!(out, "[\"+Inf\",{}]", h.counts[h.bounds.len()]);
                let _ = write!(out, "],\"sum\":{},\"count\":{}", h.sum, h.count);
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Snapshots the process registry and renders it as JSONL.
pub fn render_jsonl() -> String {
    render_jsonl_from(&snapshot())
}

/// Renders one journal event as a JSON object (no trailing newline).
pub fn render_event_json(e: &Event) -> String {
    format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
        e.seq,
        e.kind.name(),
        e.a,
        e.b
    )
}

/// Renders a journal batch as a JSON object with the explicit drop count:
/// `{"dropped":N,"next_seq":N,"events":[...]}`.
pub fn render_event_batch_json(batch: &EventBatch) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"dropped\":{},\"next_seq\":{},\"events\":[",
        batch.dropped, batch.next_seq
    );
    for (i, e) in batch.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_event_json(e));
    }
    out.push_str("]}");
    out
}

/// CSV header matching [`render_event_csv_row`].
pub const EVENT_CSV_HEADER: &str = "seq,kind,a,b";

/// Renders one journal event as a CSV row (no trailing newline).
pub fn render_event_csv_row(e: &Event) -> String {
    format!("{},{},{},{}", e.seq, e.kind.name(), e.a, e.b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;
    use crate::registry::HistogramSnapshot;

    fn snap(
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        value: SnapshotValue,
    ) -> MetricSnapshot {
        MetricSnapshot {
            name,
            help: "help text",
            labels,
            value,
        }
    }

    #[test]
    fn prometheus_counter_shape_is_pinned() {
        let snaps = vec![snap(
            "bd_frames_total",
            Vec::new(),
            SnapshotValue::Counter(42),
        )];
        let text = render_prometheus_from(&snaps);
        assert_eq!(
            text,
            "# HELP bd_frames_total help text\n\
             # TYPE bd_frames_total counter\n\
             bd_frames_total 42\n"
        );
    }

    #[test]
    fn prometheus_labeled_family_shares_headers() {
        let snaps = vec![
            snap(
                "bd_queue_depth",
                vec![("shard", "0".to_string())],
                SnapshotValue::Gauge(3),
            ),
            snap(
                "bd_queue_depth",
                vec![("shard", "1".to_string())],
                SnapshotValue::Gauge(5),
            ),
        ];
        let text = render_prometheus_from(&snaps);
        assert_eq!(
            text,
            "# HELP bd_queue_depth help text\n\
             # TYPE bd_queue_depth gauge\n\
             bd_queue_depth{shard=\"0\"} 3\n\
             bd_queue_depth{shard=\"1\"} 5\n"
        );
        assert_eq!(
            text.matches("# TYPE bd_queue_depth").count(),
            1,
            "one TYPE line per family"
        );
    }

    #[test]
    fn prometheus_label_escaping_is_pinned() {
        let snaps = vec![snap(
            "bd_weird",
            vec![("path", "a\\b\"c\nd".to_string())],
            SnapshotValue::Counter(1),
        )];
        let text = render_prometheus_from(&snaps);
        assert!(
            text.contains("bd_weird{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "escaped output was: {text}"
        );
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        static BOUNDS: &[u64] = &[1, 4];
        let h = HistogramSnapshot {
            bounds: BOUNDS,
            counts: vec![2, 3, 1], // <=1: 2, <=4: 3, +Inf: 1
            sum: 17,
            count: 6,
        };
        let snaps = vec![snap("bd_lat", Vec::new(), SnapshotValue::Histogram(h))];
        let text = render_prometheus_from(&snaps);
        assert_eq!(
            text,
            "# HELP bd_lat help text\n\
             # TYPE bd_lat histogram\n\
             bd_lat_bucket{le=\"1\"} 2\n\
             bd_lat_bucket{le=\"4\"} 5\n\
             bd_lat_bucket{le=\"+Inf\"} 6\n\
             bd_lat_sum 17\n\
             bd_lat_count 6\n"
        );
    }

    #[test]
    fn jsonl_renders_one_object_per_line() {
        static BOUNDS: &[u64] = &[2];
        let snaps = vec![
            snap("bd_c", Vec::new(), SnapshotValue::Counter(7)),
            snap(
                "bd_h",
                vec![("disk", "0".to_string())],
                SnapshotValue::Histogram(HistogramSnapshot {
                    bounds: BOUNDS,
                    counts: vec![1, 2],
                    sum: 9,
                    count: 3,
                }),
            ),
        ];
        let text = render_jsonl_from(&snaps);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"bd_c\",\"type\":\"counter\",\"labels\":{},\"value\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"name\":\"bd_h\",\"type\":\"histogram\",\"labels\":{\"disk\":\"0\"},\
             \"buckets\":[[2,1],[\"+Inf\",2]],\"sum\":9,\"count\":3}"
        );
    }

    #[test]
    fn event_renderers_are_pinned() {
        let e = Event {
            seq: 5,
            kind: EventKind::CacheEvict,
            a: 2,
            b: 99,
        };
        assert_eq!(
            render_event_json(&e),
            "{\"seq\":5,\"kind\":\"cache_evict\",\"a\":2,\"b\":99}"
        );
        assert_eq!(render_event_csv_row(&e), "5,cache_evict,2,99");
        let batch = EventBatch {
            events: vec![e],
            dropped: 3,
            next_seq: 6,
        };
        assert_eq!(
            render_event_batch_json(&batch),
            "{\"dropped\":3,\"next_seq\":6,\"events\":[\
             {\"seq\":5,\"kind\":\"cache_evict\",\"a\":2,\"b\":99}]}"
        );
    }
}
