//! A minimal `std::net` HTTP/1.1 endpoint serving the metrics registry
//! and the event journal.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry as Prometheus text exposition format;
//! * `GET /metrics/json` — the registry as JSONL;
//! * `GET /events?since=SEQ` — journal events at or after `SEQ` as a JSON
//!   object with an explicit `dropped` count and a `next_seq` cursor;
//! * `GET /trace?since=SEQ` — wait-attribution spans at or after `SEQ` as
//!   JSONL, ending with a `{"summary":...}` line of per-phase percentiles
//!   (p50/p99/p999) over the returned request spans.
//!
//! On `/events` and `/trace` an absent `since=` reads as 0 (the full
//! ring); a present-but-malformed value (non-numeric, negative, overflow)
//! is a 400 naming the bad text, never silently treated as 0.
//!
//! The server is deliberately tiny: one accept thread, one short-lived
//! handler thread per connection, `Connection: close` on every response.
//! It exists to be scraped by `curl`/Prometheus during a live run, not to
//! be a web framework. Serving is entirely off the broadcast hot path —
//! a scrape snapshots the registry under a registry lock held only by
//! registration (never by recording).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::expo::{render_event_batch_json, render_jsonl, render_prometheus};
use crate::journal::journal;
use crate::trace::{render_span_batch, spans};

/// A running metrics HTTP server. Dropping it (or calling
/// [`MetricsServer::stop`]) shuts the listener down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`) and starts serving.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("obs-http".into())
            .spawn(move || accept_loop(listener, accept_stop))
            .expect("spawn obs-http thread");
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Short-lived handler; a hung client can't wedge the accept loop.
        let _ = std::thread::Builder::new()
            .name("obs-http-conn".into())
            .spawn(move || handle_connection(stream));
    }
}

fn handle_connection(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers until the blank line; we only route on the request line.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut stream = stream;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = render_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/metrics/json" => {
            let body = render_jsonl();
            respond(&mut stream, 200, "application/json; charset=utf-8", &body);
        }
        "/events" => match since_param(query) {
            Ok(since) => {
                let body = render_event_batch_json(&journal().since(since));
                respond(&mut stream, 200, "application/json; charset=utf-8", &body);
            }
            Err(bad) => respond_bad_since(&mut stream, bad),
        },
        "/trace" => match since_param(query) {
            Ok(since) => {
                let body = render_span_batch(&spans().since(since));
                respond(&mut stream, 200, "application/json; charset=utf-8", &body);
            }
            Err(bad) => respond_bad_since(&mut stream, bad),
        },
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Parses `since=SEQ` out of a query string. An *absent* parameter (no
/// query, no `since=` key) reads as 0 — the full ring — so a bare scrape
/// still gets an answer. A *present but malformed* value (non-numeric,
/// negative, overflow) is an error carrying the offending text: silently
/// reading it as 0 used to hand a buggy scraper the whole ring and hide
/// its cursor bug.
fn since_param(query: Option<&str>) -> Result<u64, String> {
    let Some(raw) = query.and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("since=")))
    else {
        return Ok(0);
    };
    raw.parse::<u64>().map_err(|_| raw.to_string())
}

/// 400 response for a malformed `since=` cursor, echoing the bad value.
fn respond_bad_since(stream: &mut TcpStream, bad: String) {
    let body = format!("bad since parameter: {bad:?} is not a u64\n");
    respond(stream, 400, "text/plain; charset=utf-8", &body);
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_events_and_404() {
        let _g = crate::test_switch_guard();
        let c = crate::registry::counter("obs_test_http_total", "http test counter");
        c.add(3);
        crate::set_tracing_enabled(true);
        crate::journal::event(crate::journal::EventKind::SlotTick, 1, 2);
        crate::set_tracing_enabled(false);

        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("# TYPE obs_test_http_total counter"),
            "{body}"
        );

        let (status, body) = get(addr, "/metrics/json");
        assert_eq!(status, 200);
        assert!(body.contains("\"name\":\"obs_test_http_total\""), "{body}");

        let (status, body) = get(addr, "/events?since=0");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"dropped\":"), "{body}");
        assert!(body.contains("\"kind\":\"slot_tick\""), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn serves_trace_spans_with_summary() {
        let _g = crate::test_switch_guard();
        crate::trace::record_request(
            9001,
            0,
            4.0,
            crate::trace::attribute_wait(10.0, 14.0, 14.0, 14.0, 14.0),
        );

        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let (status, body) = get(server.addr(), "/trace?since=0");
        assert_eq!(status, 200);
        assert!(body.contains("\"client\":9001"), "{body}");
        let last = body.lines().last().unwrap();
        assert!(last.starts_with("{\"summary\":"), "{body}");
        assert!(last.contains("\"p999\":"), "{body}");
        server.stop();
    }

    #[test]
    fn unknown_paths_are_404_without_side_effects() {
        let _g = crate::test_switch_guard();
        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        for target in ["/", "/metric", "/metrics/", "/events/extra", "/trace/x"] {
            let (status, body) = get(addr, target);
            assert_eq!(status, 404, "{target} should 404");
            assert_eq!(body, "not found\n");
        }
        // The server survives the 404s and still serves real routes.
        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn absent_since_defaults_and_malformed_since_is_rejected() {
        let _g = crate::test_switch_guard();
        // Absent: no query, no since= key, other keys only → 0 (full ring).
        assert_eq!(since_param(None), Ok(0));
        assert_eq!(since_param(Some("")), Ok(0));
        assert_eq!(since_param(Some("other=5")), Ok(0));
        // Well-formed values parse, including amid other keys.
        assert_eq!(since_param(Some("since=17")), Ok(17));
        assert_eq!(since_param(Some("a=1&since=8&b=2")), Ok(8));
        assert_eq!(
            since_param(Some(&format!("since={}", u64::MAX))),
            Ok(u64::MAX)
        );
        // Present but malformed: empty, non-numeric, negative, float
        // notation, and u64 overflow are all errors carrying the raw text.
        assert_eq!(since_param(Some("since=")), Err(String::new()));
        assert_eq!(since_param(Some("since=banana")), Err("banana".into()));
        assert_eq!(since_param(Some("since=-3")), Err("-3".into()));
        assert_eq!(since_param(Some("since=1e3")), Err("1e3".into()));
        assert_eq!(
            since_param(Some("since=18446744073709551616")),
            Err("18446744073709551616".into())
        );

        // End to end: malformed cursors are 400 on both journal routes; an
        // absent cursor still serves the whole ring.
        crate::set_tracing_enabled(true);
        crate::journal::event(crate::journal::EventKind::SlotTick, 5, 6);
        crate::set_tracing_enabled(false);
        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        for target in [
            "/events?since=banana",
            "/events?since=-3",
            "/events?since=99999999999999999999",
            "/trace?since=1e3",
        ] {
            let (status, body) = get(addr, target);
            assert_eq!(status, 400, "{target} should 400");
            assert!(body.starts_with("bad since parameter:"), "{body}");
        }
        let (status, body) = get(addr, "/events");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"dropped\":"), "{body}");
        assert!(body.contains("\"next_seq\":"), "{body}");
        // The server survives the 400s and still serves /trace.
        let (status, _) = get(addr, "/trace?since=0");
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn empty_journal_reads_are_well_formed() {
        // `/events` far past the head and `/trace` far past the head both
        // return empty, well-formed batches (no panic, no negative counts).
        let _g = crate::test_switch_guard();
        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, &format!("/events?since={}", u64::MAX));
        assert_eq!(status, 200);
        assert!(body.contains("\"events\":[]"), "{body}");

        let (status, body) = get(addr, &format!("/trace?since={}", u64::MAX));
        assert_eq!(status, 200);
        let last = body.lines().last().unwrap();
        assert!(
            last.contains("\"request_spans\":0,\"stage_spans\":0"),
            "{body}"
        );
        server.stop();
    }
}
