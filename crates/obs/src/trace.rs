//! Wait-attribution tracing: fixed-size span records in a lock-free
//! overwrite-oldest ring, with deterministic 1-in-N request sampling.
//!
//! The metrics registry says *that* p99 moved; spans say *why*. Every
//! sampled client request is decomposed into the paper's wait phases —
//!
//! * **broadcast** — the wait the broadcast itself imposes: from the
//!   request to the page's next airing on the channel the client is
//!   already tuned to (zero on a cache hit);
//! * **switch** — the extra wait a cross-channel retune adds: from the
//!   no-switch arrival to the arrival reachable after the switch penalty;
//! * **loss** — the extra wait loss recovery adds: from the expected
//!   arrival to the periodic airing the client would have fallen back to;
//! * **credit** — the slots coded repair handed back: from the actual
//!   (decoded) receive time to that fallback periodic airing.
//!
//! The four phases telescope, so the **conservation invariant**
//!
//! ```text
//! broadcast + switch + loss − credit == total response time
//! ```
//!
//! holds *exactly* (bit-exact, not approximately): every anchor is a time
//! on the integer slot lattice, far below 2^53, so the f64 differences and
//! sums are exact. [`record_request`] asserts it on every span.
//!
//! The broker side records [`SpanKind::Stage`] spans for sampled slots:
//! tick deadline jitter, frame encode, transport enqueue, and writev
//! drain, all in microseconds.
//!
//! Discipline matches the event [`journal`](mod@crate::journal): writers never
//! block and never allocate (one `fetch_add` to claim a sequence, a
//! seqlock commit word around the field stores), the ring overwrites the
//! oldest spans, and readers are told exactly how many they missed. The
//! sampling knob ([`set_sample_every`]) is the master switch: at the
//! default `0` the hot-path cost is a single relaxed load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default span ring capacity (spans). Power of two.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// Number of phase slots in a span (request: broadcast/switch/loss/credit;
/// stage: jitter/encode/enqueue/drain).
pub const SPAN_PHASES: usize = 4;

/// What a span measures. Discriminants are stable (serialized by number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One sampled client request: `client` is the client's seed, `index`
    /// its measured-request index, `total` the recorded response time in
    /// broadcast units, `phases` = `[broadcast, switch, loss, credit]`.
    Request = 0,
    /// One sampled broker slot: `client` is 0, `index` the slot sequence,
    /// `phases` = `[jitter, encode, enqueue, drain]` in microseconds and
    /// `total` their sum.
    Stage = 1,
}

impl SpanKind {
    /// Stable lower-snake name (used in JSON output).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Stage => "stage",
        }
    }

    /// The kind for a stable wire discriminant, if `v` is one.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SpanKind::Request),
            1 => Some(SpanKind::Stage),
            _ => None,
        }
    }
}

/// One wait-attribution span (see [`SpanKind`] for field meanings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Monotone sequence number assigned at record time.
    pub seq: u64,
    /// What this span measures.
    pub kind: SpanKind,
    /// Request spans: the client's seed. Stage spans: 0.
    pub client: u64,
    /// Request spans: measured-request index. Stage spans: slot sequence.
    pub index: u64,
    /// Request spans: recorded response time (broadcast units). Stage
    /// spans: the sum of the stage timers (microseconds).
    pub total: f64,
    /// The four phase durations (see [`SpanKind`]).
    pub phases: [f64; SPAN_PHASES],
}

impl Span {
    /// The signed phase sum that conservation compares against `total`:
    /// `broadcast + switch + loss − credit` for request spans, the plain
    /// sum for stage spans.
    pub fn phase_sum(&self) -> f64 {
        match self.kind {
            SpanKind::Request => self.phases[0] + self.phases[1] + self.phases[2] - self.phases[3],
            SpanKind::Stage => self.phases.iter().sum(),
        }
    }
}

/// One ring slot. `commit` is a seqlock word: `0` = never written,
/// `u64::MAX` = write in progress, `seq + 1` = slot holds span `seq`.
/// Durations are stored as f64 bit patterns.
struct Cell {
    commit: AtomicU64,
    kind: AtomicU64,
    client: AtomicU64,
    index: AtomicU64,
    total: AtomicU64,
    phases: [AtomicU64; SPAN_PHASES],
}

/// The bounded, overwrite-oldest span ring.
pub struct SpanRing {
    cells: Box<[Cell]>,
    /// Next sequence number to assign (== total spans ever recorded).
    head: AtomicU64,
    mask: u64,
}

/// The result of a [`SpanRing::since`] read.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBatch {
    /// Recovered spans, in sequence order.
    pub spans: Vec<Span>,
    /// Spans in `[since, head)` that the ring had already overwritten (or
    /// a concurrent writer tore the read).
    pub dropped: u64,
    /// The next sequence to pass as `since` to continue tailing.
    pub next_seq: u64,
}

impl SpanRing {
    /// A span ring with `capacity` slots, rounded up to a power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let cells = (0..cap)
            .map(|_| Cell {
                commit: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                client: AtomicU64::new(0),
                index: AtomicU64::new(0),
                total: AtomicU64::new(0),
                phases: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Self {
            cells,
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Records a span. Never blocks, never allocates; overwrites the
    /// oldest span when the ring is full. Returns the assigned sequence.
    #[inline]
    pub fn record(
        &self,
        kind: SpanKind,
        client: u64,
        index: u64,
        total: f64,
        phases: [f64; SPAN_PHASES],
    ) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let cell = &self.cells[(seq & self.mask) as usize];
        cell.commit.store(u64::MAX, Ordering::Release);
        cell.kind.store(kind as u64, Ordering::Relaxed);
        cell.client.store(client, Ordering::Relaxed);
        cell.index.store(index, Ordering::Relaxed);
        cell.total.store(total.to_bits(), Ordering::Relaxed);
        for (slot, phase) in cell.phases.iter().zip(phases) {
            slot.store(phase.to_bits(), Ordering::Relaxed);
        }
        cell.commit.store(seq + 1, Ordering::Release);
        seq
    }

    /// Total spans ever recorded (the next sequence number).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Reads every span with `seq >= since` still present in the ring;
    /// overwritten and torn slots are counted in [`SpanBatch::dropped`].
    pub fn since(&self, since: u64) -> SpanBatch {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.cells.len() as u64;
        let oldest = head.saturating_sub(cap);
        let start = since.max(oldest);
        let mut dropped = start - since;
        let mut spans = Vec::with_capacity(head.saturating_sub(start) as usize);
        for seq in start..head {
            let cell = &self.cells[(seq & self.mask) as usize];
            let before = cell.commit.load(Ordering::Acquire);
            if before != seq + 1 {
                dropped += 1;
                continue;
            }
            let kind = cell.kind.load(Ordering::Relaxed);
            let client = cell.client.load(Ordering::Relaxed);
            let index = cell.index.load(Ordering::Relaxed);
            let total = f64::from_bits(cell.total.load(Ordering::Relaxed));
            let mut phases = [0.0; SPAN_PHASES];
            for (out, slot) in phases.iter_mut().zip(&cell.phases) {
                *out = f64::from_bits(slot.load(Ordering::Relaxed));
            }
            let after = cell.commit.load(Ordering::Acquire);
            if after != seq + 1 {
                dropped += 1;
                continue;
            }
            match SpanKind::from_u8(kind as u8) {
                Some(kind) => spans.push(Span {
                    seq,
                    kind,
                    client,
                    index,
                    total,
                    phases,
                }),
                None => dropped += 1,
            }
        }
        SpanBatch {
            spans,
            dropped,
            next_seq: head,
        }
    }
}

static SPANS: OnceLock<SpanRing> = OnceLock::new();

/// The process-wide span ring, materialized on first use (call this — via
/// [`set_sample_every`] — outside hot paths so the one-time allocation
/// never lands in an allocation-free section).
pub fn spans() -> &'static SpanRing {
    SPANS.get_or_init(|| SpanRing::with_capacity(DEFAULT_SPAN_CAPACITY))
}

/// 1-in-N sampling knob; `0` = tracing off (the default).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);

/// Sets the deterministic sampling rate: record a span for every request
/// (or slot) whose index is a multiple of `n`; `0` turns span tracing off.
/// Turning sampling on materializes the ring outside the hot path.
pub fn set_sample_every(n: u64) {
    if n != 0 {
        let _ = spans();
    }
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// The current 1-in-N sampling rate (`0` = off).
#[inline]
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// True when the request (or slot) with this index should be traced.
/// Deterministic — a simulated client and its live twin sample the same
/// request indices, so their span sets are directly comparable. One
/// relaxed load when tracing is off.
#[inline]
pub fn sampled(index: u64) -> bool {
    let n = SAMPLE_EVERY.load(Ordering::Relaxed);
    n != 0 && index.is_multiple_of(n)
}

/// Decomposes a sampled request's wait into `[broadcast, switch, loss,
/// credit]` from its time anchors, all in broadcast units on the integer
/// slot lattice:
///
/// * `requested_at` — when the client issued the request;
/// * `no_switch` — the page's first airing had the client already been
///   tuned to its channel;
/// * `expected` — the arrival the client actually expected after any
///   cross-channel switch penalty;
/// * `next_periodic` — the periodic airing the client would have fallen
///   back to; equals `received_at` when nothing was lost or the loss was
///   repaired only by waiting (credit is then zero);
/// * `received_at` — when the request actually completed.
///
/// The phases telescope: their signed sum is exactly
/// `received_at - requested_at`.
pub fn attribute_wait(
    requested_at: f64,
    no_switch: f64,
    expected: f64,
    next_periodic: f64,
    received_at: f64,
) -> [f64; SPAN_PHASES] {
    [
        no_switch - requested_at,
        expected - no_switch,
        next_periodic - expected,
        next_periodic - received_at,
    ]
}

/// Records one sampled request span into the process ring, asserting the
/// conservation invariant: the signed phase sum must equal `total`
/// **exactly** (both sides live on the integer slot lattice, so f64
/// arithmetic on them is exact — any mismatch is an attribution bug, not
/// rounding). Returns the assigned sequence.
pub fn record_request(client: u64, index: u64, total: f64, phases: [f64; SPAN_PHASES]) -> u64 {
    let sum = phases[0] + phases[1] + phases[2] - phases[3];
    assert!(
        sum == total,
        "wait-attribution conservation violated: client {client} request {index}: \
         broadcast {} + switch {} + loss {} - credit {} = {sum} != total {total}",
        phases[0],
        phases[1],
        phases[2],
        phases[3],
    );
    spans().record(SpanKind::Request, client, index, total, phases)
}

/// Records one sampled broker slot's stage profile (`[jitter, encode,
/// enqueue, drain]`, microseconds). Returns the assigned sequence.
pub fn record_stage(slot: u64, stages: [f64; SPAN_PHASES]) -> u64 {
    let total = stages.iter().sum();
    spans().record(SpanKind::Stage, 0, slot, total, stages)
}

/// Writev-drain microseconds handed from the transport to the engine's
/// stage span (the engine composes the slot span but cannot see inside the
/// transport's flush path).
static DRAIN_MICROS: AtomicU64 = AtomicU64::new(0);

/// Adds writev-drain time to the pending stage accumulator (transport side).
#[inline]
pub fn note_drain_micros(us: u64) {
    DRAIN_MICROS.fetch_add(us, Ordering::Relaxed);
}

/// Takes (and resets) the accumulated writev-drain time (engine side).
#[inline]
pub fn take_drain_micros() -> u64 {
    DRAIN_MICROS.swap(0, Ordering::Relaxed)
}

/// Phase labels for request spans, in `Span::phases` order.
pub const REQUEST_PHASE_NAMES: [&str; SPAN_PHASES] = ["broadcast", "switch", "loss", "credit"];

/// Stage labels for stage spans, in `Span::phases` order.
pub const STAGE_PHASE_NAMES: [&str; SPAN_PHASES] =
    ["jitter_us", "encode_us", "enqueue_us", "drain_us"];

/// Renders one span as a JSON object (no trailing newline).
pub fn render_span_json(span: &Span) -> String {
    let names = match span.kind {
        SpanKind::Request => &REQUEST_PHASE_NAMES,
        SpanKind::Stage => &STAGE_PHASE_NAMES,
    };
    let mut out = format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"client\":{},\"index\":{},\"total\":{}",
        span.seq,
        span.kind.name(),
        span.client,
        span.index,
        span.total,
    );
    for (name, phase) in names.iter().zip(span.phases) {
        out.push_str(&format!(",\"{name}\":{phase}"));
    }
    out.push('}');
    out
}

/// Nearest-rank percentile of an unsorted sample (`q` in (0, 1]); 0 when
/// empty. Allocation is fine here — rendering is off the hot path.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("span durations are not NaN"));
    let rank = ((samples.len() as f64) * q).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn summary_block(out: &mut String, label: &str, samples: &mut [f64]) {
    out.push_str(&format!(
        "\"{label}\":{{\"p50\":{},\"p99\":{},\"p999\":{}}}",
        percentile(samples, 0.5),
        percentile(samples, 0.99),
        percentile(samples, 0.999),
    ));
}

/// Renders a span batch as JSONL: one object per span, then one final
/// `{"summary":...}` line with per-phase percentiles over the request
/// spans. The summary line is emitted even for an empty batch, so a
/// scraper can always anchor on it.
pub fn render_span_batch(batch: &SpanBatch) -> String {
    let mut out = String::new();
    for span in &batch.spans {
        out.push_str(&render_span_json(span));
        out.push('\n');
    }
    let requests: Vec<&Span> = batch
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .collect();
    let stage_count = batch.spans.len() - requests.len();
    out.push_str(&format!(
        "{{\"summary\":{{\"request_spans\":{},\"stage_spans\":{},\"dropped\":{},\"next_seq\":{},",
        requests.len(),
        stage_count,
        batch.dropped,
        batch.next_seq,
    ));
    let mut totals: Vec<f64> = requests.iter().map(|s| s.total).collect();
    summary_block(&mut out, "total", &mut totals);
    for (i, name) in REQUEST_PHASE_NAMES.iter().enumerate() {
        out.push(',');
        let mut samples: Vec<f64> = requests.iter().map(|s| s.phases[i]).collect();
        summary_block(&mut out, name, &mut samples);
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_in_order() {
        let ring = SpanRing::with_capacity(16);
        for i in 0..5u64 {
            ring.record(SpanKind::Request, 7, i, i as f64, [i as f64, 0.0, 0.0, 0.0]);
        }
        let batch = ring.since(0);
        assert_eq!(batch.dropped, 0);
        assert_eq!(batch.next_seq, 5);
        assert_eq!(batch.spans.len(), 5);
        for (i, s) in batch.spans.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.kind, SpanKind::Request);
            assert_eq!(s.client, 7);
            assert_eq!(s.index, i as u64);
            assert_eq!(s.total, i as f64);
            assert_eq!(s.phases[0], i as f64);
        }
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let ring = SpanRing::with_capacity(8);
        for i in 0..20u64 {
            ring.record(SpanKind::Stage, 0, i, 1.0, [1.0, 0.0, 0.0, 0.0]);
        }
        let batch = ring.since(0);
        assert_eq!(batch.dropped, 12);
        assert_eq!(batch.spans.len(), 8);
        assert_eq!(batch.spans.first().unwrap().seq, 12);
        assert_eq!(batch.next_seq, 20);
    }

    #[test]
    fn sampling_is_deterministic_and_defaults_off() {
        let _g = crate::test_switch_guard();
        set_sample_every(0);
        assert!(!sampled(0), "tracing defaults off");
        set_sample_every(4);
        let picks: Vec<u64> = (0..12).filter(|&i| sampled(i)).collect();
        assert_eq!(picks, vec![0, 4, 8]);
        set_sample_every(0);
        assert!(!sampled(0));
    }

    #[test]
    fn attribution_telescopes_exactly() {
        // Lossless same-channel: t == e == ns.
        assert_eq!(
            attribute_wait(10.0, 14.0, 14.0, 14.0, 14.0),
            [4.0, 0.0, 0.0, 0.0]
        );
        // Cross-channel switch: ns 12, e 17.
        assert_eq!(
            attribute_wait(10.0, 12.0, 17.0, 17.0, 17.0),
            [2.0, 5.0, 0.0, 0.0]
        );
        // Loss, periodic recovery: expected 14, received at 39.
        assert_eq!(
            attribute_wait(10.0, 14.0, 14.0, 39.0, 39.0),
            [4.0, 0.0, 25.0, 0.0]
        );
        // Loss, coded repair at 20 vs periodic 39: 19 slots of credit.
        let phases = attribute_wait(10.0, 14.0, 14.0, 39.0, 20.0);
        assert_eq!(phases, [4.0, 0.0, 25.0, 19.0]);
        let span = Span {
            seq: 0,
            kind: SpanKind::Request,
            client: 1,
            index: 0,
            total: 10.0,
            phases,
        };
        assert_eq!(span.phase_sum(), 10.0, "phases telescope to t - r");
    }

    #[test]
    fn record_request_accepts_conserving_spans() {
        let phases = attribute_wait(6.0, 9.0, 11.0, 30.0, 14.0);
        record_request(42, 8, 8.0, phases);
        let batch = spans().since(0);
        let span = batch
            .spans
            .iter()
            .find(|s| s.client == 42 && s.index == 8)
            .expect("span recorded");
        assert_eq!(span.total, 8.0);
        assert_eq!(span.phase_sum(), span.total);
    }

    #[test]
    #[should_panic(expected = "conservation violated")]
    fn record_request_rejects_non_conserving_spans() {
        record_request(1, 0, 5.0, [1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn drain_micros_accumulate_and_reset() {
        let _g = crate::test_switch_guard();
        let _ = take_drain_micros();
        note_drain_micros(3);
        note_drain_micros(4);
        assert_eq!(take_drain_micros(), 7);
        assert_eq!(take_drain_micros(), 0, "take resets the accumulator");
    }

    #[test]
    fn span_json_shape_is_pinned() {
        let span = Span {
            seq: 3,
            kind: SpanKind::Request,
            client: 11,
            index: 2,
            total: 7.5,
            phases: [5.0, 2.5, 0.0, 0.0],
        };
        assert_eq!(
            render_span_json(&span),
            "{\"seq\":3,\"kind\":\"request\",\"client\":11,\"index\":2,\"total\":7.5,\
             \"broadcast\":5,\"switch\":2.5,\"loss\":0,\"credit\":0}"
        );
        let stage = Span {
            seq: 4,
            kind: SpanKind::Stage,
            client: 0,
            index: 100,
            total: 12.0,
            phases: [1.0, 2.0, 4.0, 5.0],
        };
        assert_eq!(
            render_span_json(&stage),
            "{\"seq\":4,\"kind\":\"stage\",\"client\":0,\"index\":100,\"total\":12,\
             \"jitter_us\":1,\"encode_us\":2,\"enqueue_us\":4,\"drain_us\":5}"
        );
    }

    #[test]
    fn batch_render_always_ends_with_a_summary() {
        let empty = SpanBatch {
            spans: Vec::new(),
            dropped: 0,
            next_seq: 0,
        };
        let text = render_span_batch(&empty);
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"summary\":{\"request_spans\":0,\"stage_spans\":0,"));

        let batch = SpanBatch {
            spans: vec![
                Span {
                    seq: 0,
                    kind: SpanKind::Request,
                    client: 1,
                    index: 0,
                    total: 4.0,
                    phases: [4.0, 0.0, 0.0, 0.0],
                },
                Span {
                    seq: 1,
                    kind: SpanKind::Stage,
                    client: 0,
                    index: 9,
                    total: 3.0,
                    phases: [1.0, 1.0, 1.0, 0.0],
                },
            ],
            dropped: 2,
            next_seq: 12,
        };
        let text = render_span_batch(&batch);
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"request_spans\":1,\"stage_spans\":1,\"dropped\":2"));
        assert!(last.contains("\"total\":{\"p50\":4,\"p99\":4,\"p999\":4}"));
        assert!(last.contains("\"broadcast\":{\"p50\":4"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&mut samples, 0.5), 50.0);
        assert_eq!(percentile(&mut samples, 0.99), 99.0);
        assert_eq!(percentile(&mut samples, 0.999), 100.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn concurrent_writers_keep_sequences_unique() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::with_capacity(1024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    ring.record(SpanKind::Stage, t, i, 1.0, [1.0, 0.0, 0.0, 0.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let batch = ring.since(0);
        assert_eq!(batch.spans.len() as u64 + batch.dropped, 800);
        let mut seqs: Vec<u64> = batch.spans.iter().map(|s| s.seq).collect();
        let len = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), len, "sequence numbers must be unique");
    }
}
