//! # bdisk-obs — live telemetry for the broadcast engine
//!
//! The rest of the workspace can now *run* a broadcast disk at tens of
//! thousands of slots per second; this crate makes a running broadcast
//! *observable* without slowing it down. Three pieces:
//!
//! * [`registry`] — a process-wide metrics registry of **sharded atomic
//!   counters**, gauges, and **fixed-bucket histograms**, registered once
//!   by static name. Recording is lock-free (one relaxed flag load plus an
//!   atomic add on a per-thread shard) and allocation-free, so the
//!   steady-state broadcast hot path stays zero-alloc with metrics enabled
//!   (`crates/broker/tests/alloc_free.rs` pins this).
//! * [`journal`](mod@journal) — a bounded **ring-buffer event journal** of structured
//!   events (slot tick, enqueue, drop, disconnect, cache admit/evict,
//!   backpressure stall) with monotone sequence numbers. Overflow is
//!   explicit — the oldest events are overwritten and a drop count is
//!   reported — and recording **never blocks** the broadcast.
//! * [`trace`] — **wait-attribution spans**: sampled client requests
//!   decomposed into broadcast/switch/loss/credit phases (with an exact
//!   conservation invariant) and sampled broker slots profiled into
//!   jitter/encode/enqueue/drain stage timers, recorded into a second
//!   seqlock ring with deterministic 1-in-N sampling
//!   ([`set_sample_every`]).
//! * [`http`] + [`expo`] — a snapshot sampler that renders the registry as
//!   Prometheus text exposition format (and as JSONL), served from a
//!   minimal `std::net` HTTP endpoint: `GET /metrics`,
//!   `GET /metrics/json`, `GET /events?since=seq`, and
//!   `GET /trace?since=seq`.
//!
//! ## Switches
//!
//! Two global switches gate the hot paths, both single relaxed atomic
//! loads:
//!
//! * [`metrics_enabled`] (default **on**) gates counter/gauge/histogram
//!   recording — `repro bench` measures the fan-out operating point with
//!   this on and off and records the delta in `BENCH_broker.json`;
//! * [`tracing_enabled`] (default **off**) gates event-journal recording —
//!   `repro trace` and `repro live --metrics-addr` turn it on.
//!
//! Neither switch may change *behavior*: the fan-out equivalence proptest
//! runs with tracing enabled and requires delivered frames to stay
//! bit-equal to the sequential path.

#![warn(missing_docs)]

pub mod expo;
pub mod http;
pub mod journal;
pub mod registry;
pub mod trace;

pub use expo::{render_jsonl, render_prometheus};
pub use http::MetricsServer;
pub use journal::{event, journal, Event, EventKind, Journal};
pub use registry::{
    counter, counter_labeled, gauge, gauge_labeled, histogram, Counter, Gauge, Histogram,
    HistogramSnapshot,
};
pub use trace::{attribute_wait, sample_every, set_sample_every, Span, SpanBatch, SpanKind};

use std::sync::atomic::{AtomicBool, Ordering};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);
static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric recording is on (the default). A single relaxed load;
/// every [`Counter::add`], [`Gauge::set`], and [`Histogram::record`] checks
/// it first.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide. Registration and
/// snapshot/render paths are unaffected — a disabled registry still serves
/// its (frozen) values.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// True when event-journal recording is on (default off).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Turns event-journal recording on or off process-wide. Turning tracing on
/// lazily allocates the ring buffer once; recording itself never allocates.
pub fn set_tracing_enabled(on: bool) {
    if on {
        // Materialize the ring outside any hot path.
        let _ = journal::journal();
    }
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

/// Serializes tests that toggle or depend on the global switches, so the
/// default-parallel test runner can't interleave a disable with a record.
#[cfg(test)]
pub(crate) fn test_switch_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_toggle() {
        let _g = test_switch_guard();
        assert!(metrics_enabled(), "metrics default on");
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);

        set_tracing_enabled(true);
        assert!(tracing_enabled());
        set_tracing_enabled(false);
        assert!(!tracing_enabled());
    }
}
