//! Property tests for the sharded-metric merge math: merging per-shard
//! snapshots must be order-independent and must equal recording the same
//! stream unsharded. This is what makes the registry's sharding a pure
//! performance trick — no observable effect on reported values.

use bdisk_obs::registry::{Counter, Histogram, HistogramSnapshot, SHARDS};
use proptest::prelude::*;

/// Bounds shared by every histogram in these tests (`'static` as the
/// registry requires).
static BOUNDS: &[u64] = &[1, 4, 16, 64, 256];

/// Records `values` into fresh per-"shard" snapshots per `assignment`,
/// then merges them in the given `order`.
fn merged_in_order(values: &[u64], assignment: &[usize], order: &[usize]) -> HistogramSnapshot {
    // Build SHARDS standalone histograms standing in for per-shard state
    // (each recorded from one thread here, so all writes land in one
    // shard of each standalone histogram; snapshot() collapses them).
    let shards: Vec<Histogram> = (0..SHARDS)
        .map(|_| Histogram::with_bounds(BOUNDS))
        .collect();
    for (v, &s) in values.iter().zip(assignment) {
        shards[s % SHARDS].record(*v);
    }
    let snaps: Vec<HistogramSnapshot> = shards.iter().map(|h| h.snapshot()).collect();
    let mut out = snaps[order[0] % SHARDS].clone();
    let mut taken = [false; SHARDS];
    taken[order[0] % SHARDS] = true;
    for &o in &order[1..] {
        let idx = o % SHARDS;
        if !taken[idx] {
            taken[idx] = true;
            out.merge(&snaps[idx]);
        }
    }
    for (idx, t) in taken.iter().enumerate() {
        if !t {
            out.merge(&snaps[idx]);
        }
    }
    out
}

proptest! {
    /// A sharded counter's total equals the unsharded sum no matter how
    /// the adds are spread across threads.
    #[test]
    fn counter_shards_sum_to_unsharded(adds in proptest::collection::vec(0u64..1000, 1..64)) {
        let sharded = Counter::new();
        let expected: u64 = adds.iter().sum();
        // Spread the adds over several threads so multiple shards engage.
        std::thread::scope(|scope| {
            for chunk in adds.chunks(8) {
                let sharded = &sharded;
                scope.spawn(move || {
                    for &n in chunk {
                        sharded.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(sharded.value(), expected);
        prop_assert_eq!(sharded.shard_values().iter().sum::<u64>(), expected);
    }

    /// Merging per-shard histogram snapshots gives the same result in any
    /// merge order, and equals recording the whole stream unsharded.
    #[test]
    fn histogram_merge_is_order_independent(
        values in proptest::collection::vec(0u64..1000, 1..128),
        assignment in proptest::collection::vec(0usize..SHARDS, 128),
        order_a in proptest::collection::vec(0usize..SHARDS, SHARDS),
        order_b in proptest::collection::vec(0usize..SHARDS, SHARDS),
    ) {
        let merged_a = merged_in_order(&values, &assignment, &order_a);
        let merged_b = merged_in_order(&values, &assignment, &order_b);
        prop_assert_eq!(&merged_a, &merged_b, "merge order changed the result");

        let unsharded = Histogram::with_bounds(BOUNDS);
        for &v in &values {
            unsharded.record(v);
        }
        let expected = unsharded.snapshot();
        prop_assert_eq!(&merged_a, &expected, "sharding changed the recorded totals");
    }

    /// A histogram recorded from genuinely concurrent threads still
    /// snapshots to exactly the sequential totals.
    #[test]
    fn concurrent_histogram_equals_sequential(
        values in proptest::collection::vec(0u64..500, 1..96),
    ) {
        let concurrent = Histogram::with_bounds(BOUNDS);
        std::thread::scope(|scope| {
            for chunk in values.chunks(16) {
                let concurrent = &concurrent;
                scope.spawn(move || {
                    for &v in chunk {
                        concurrent.record(v);
                    }
                });
            }
        });
        let sequential = Histogram::with_bounds(BOUNDS);
        for &v in &values {
            sequential.record(v);
        }
        prop_assert_eq!(concurrent.snapshot(), sequential.snapshot());
    }
}
