//! Golden inventory of every metric family the workspace registers.
//!
//! The CI `/metrics` smoke test asserts a minimum family count; this test
//! pins the exact names, so adding a family is a deliberate one-line diff
//! here (and a floor bump in `ci.yml`), and losing one — a refactor that
//! silently stops registering a family — fails loudly instead of shrinking
//! the scrape.

use std::collections::BTreeSet;

/// Every family name expected after all layers register eagerly, sorted.
/// One entry per family: labeled series (`bd_shard_queue_depth{shard}` et
/// al.) collapse to their family name, exactly like a `# TYPE` line.
const GOLDEN_FAMILIES: &[&str] = &[
    "bd_bus_backpressure_stalls_total",
    "bd_bus_batch_occupancy",
    "bd_bus_flushes_total",
    "bd_bus_shard_queue_depth",
    "bd_bus_subscribers",
    "bd_cache_evictions_total",
    "bd_cache_hits_total",
    "bd_cache_invalidations_total",
    "bd_cache_miss_loss_delayed_total",
    "bd_cache_misses_total",
    "bd_client_finished_total",
    "bd_client_frames_seen_total",
    "bd_conn_lag_watermark",
    "bd_conn_slab_occupancy",
    "bd_decode_window_evictions_total",
    "bd_engine_active_clients",
    "bd_engine_bytes_sent_total",
    "bd_engine_disconnects_total",
    "bd_engine_frames_delivered_total",
    "bd_engine_frames_dropped_total",
    "bd_engine_max_client_lag",
    "bd_engine_slots_total",
    "bd_epoch_fences_total",
    "bd_epoch_swaps_total",
    "bd_fanout_frames_by_channel_total",
    "bd_fault_injected_by_channel_total",
    "bd_fault_injected_total",
    "bd_frame_gaps_total",
    "bd_frames_corrupt_total",
    "bd_lix_chain_len",
    "bd_partial_writes_total",
    "bd_plan_epoch",
    "bd_poll_wakeups_total",
    "bd_pull_padding_slots_total",
    "bd_pull_queue_depth",
    "bd_pull_requests_rejected_total",
    "bd_pull_requests_total",
    "bd_pull_slots_total",
    "bd_pull_stolen_slots_total",
    "bd_pull_user_max_wait_slots",
    "bd_pull_wait_slots",
    "bd_reconnects_total",
    "bd_recovery_coded_total",
    "bd_recovery_periodic_total",
    "bd_recovery_wait_slots",
    "bd_repair_slots_aired_total",
    "bd_repair_symbols_decoded_total",
    "bd_sim_measured_requests_total",
    "bd_sim_requests_total",
    "bd_sim_response_time",
    "bd_sim_runs_total",
    "bd_sim_virtual_time",
    "bd_slots_by_channel_total",
    "bd_slow_consumer_conn",
    "bd_slow_consumer_lag",
    "bd_stage_drain_us",
    "bd_stage_encode_us",
    "bd_stage_enqueue_us",
    "bd_stage_jitter_us",
    "bd_stale_epoch_frames_total",
    "bd_tcp_accepted_total",
    "bd_tcp_bytes_total",
    "bd_tcp_coalesce_batch",
    "bd_tcp_connections",
    "bd_tcp_disconnects_total",
    "bd_tcp_frames_dropped_total",
    "bd_tcp_writer_backlog",
    "bd_writable_spurious_total",
];

#[test]
fn registered_families_match_the_golden_list() {
    bdisk_broker::register_metrics();
    bdisk_cache::register_metrics();
    bdisk_sim::register_metrics();

    let families: BTreeSet<&'static str> = bdisk_obs::registry::snapshot()
        .iter()
        .map(|s| s.name)
        .collect();
    let actual: Vec<&str> = families.into_iter().collect();
    let golden: Vec<&str> = GOLDEN_FAMILIES.to_vec();
    assert_eq!(
        actual, golden,
        "metric family inventory changed — update GOLDEN_FAMILIES and the \
         /metrics family floor in ci.yml"
    );
}
