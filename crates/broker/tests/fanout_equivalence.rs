//! Property test (satellite of the fan-out tentpole): whatever the tuning —
//! per-slot sequential delivery, batched flushes, or a worker-shard pool —
//! the bus hands every subscriber the exact same frame sequence and reports
//! the exact same `DeliveryStats` totals.
//!
//! Broadcasts run with no concurrent consumer so queue evolution is
//! deterministic; subscribers drain after `finish`. Block is only generated
//! with capacity ≥ frame count (a full lossless queue with nobody draining
//! would rightly block forever).
//!
//! The whole property runs with the event journal recording (tracing
//! enabled): observability must not perturb behavior, so delivered frames
//! must stay bit-equal to the sequential path while every enqueue/drop is
//! being journaled.

use bdisk_broker::{Backpressure, BusTuning, DeliveryStats, InMemoryBus, PagePayloads, Transport};
use bdisk_sched::{PageId, Slot};
use proptest::prelude::*;

/// Runs one broadcast of `frames` frames to `subs` subscribers and returns
/// every subscriber's received (seq, payload-checksum) sequence plus the
/// summed delivery stats.
fn run_fleet(
    tuning: BusTuning,
    backpressure: Backpressure,
    capacity: usize,
    subs: usize,
    frames: usize,
    payloads: &PagePayloads,
) -> (Vec<Vec<(u64, u64)>>, DeliveryStats) {
    let mut bus = InMemoryBus::with_tuning(capacity, backpressure, tuning);
    let mut receivers: Vec<_> = (0..subs).map(|_| bus.subscribe()).collect();
    let mut totals = DeliveryStats::default();
    let num_pages = 7u32;
    for seq in 0..frames as u64 {
        let slot = if seq % 5 == 4 {
            Slot::Empty
        } else {
            Slot::Page(PageId(seq as u32 % num_pages))
        };
        totals.absorb(bus.broadcast(payloads.frame(seq, slot)));
    }
    totals.absorb(bus.finish());
    let seen = receivers
        .iter_mut()
        .map(|sub| {
            std::iter::from_fn(|| sub.recv())
                .map(|f| {
                    let sum: u64 = f.payload.iter().map(|&b| b as u64).sum();
                    (f.seq, sum)
                })
                .collect()
        })
        .collect();
    (seen, totals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tuned_fanout_equals_sequential(
        subs in 1usize..10,
        frames in 1usize..150,
        batch in 1usize..40,
        shards in 1usize..5,
        lossy in 0u8..2,
        page_size in 0usize..48,
    ) {
        // Record every enqueue/drop/disconnect while asserting equality:
        // tracing must be a pure observer.
        bdisk_obs::set_tracing_enabled(true);
        let journal_start = bdisk_obs::journal().head();

        let (backpressure, capacity) = if lossy == 1 {
            (Backpressure::DropNewest, 8)
        } else {
            (Backpressure::Block, 160) // room for every frame
        };
        let payloads = PagePayloads::generate(7, page_size);

        let (baseline_seen, baseline_stats) = run_fleet(
            BusTuning::default(),
            backpressure,
            capacity,
            subs,
            frames,
            &payloads,
        );
        for tuning in [
            BusTuning { batch, shards: 0 },
            BusTuning { batch, shards },
        ] {
            let (seen, stats) =
                run_fleet(tuning, backpressure, capacity, subs, frames, &payloads);
            prop_assert_eq!(
                &seen, &baseline_seen,
                "frame sequences diverged under {:?}", tuning
            );
            prop_assert_eq!(
                stats, baseline_stats,
                "delivery stats diverged under {:?}", tuning
            );
        }
        prop_assert!(
            bdisk_obs::journal().head() > journal_start,
            "tracing was on: the runs must have journaled events"
        );
    }
}
