//! Hybrid push/pull invariants (satellites of the slot-arbiter tentpole):
//!
//! * **Pull-off byte-identity, pinned by proptest**: for any plan shape,
//!   slot budget, and page size, an engine with pull explicitly `Off` —
//!   and even an engine with an *armed but idle* arbiter (pull enabled,
//!   zero upstream requests) — produces the byte-identical wire stream of
//!   an engine that never heard of pull. The arbiter in the slot path
//!   must be invisible until it actually serves something.
//! * **Upstream equivalence**: the threaded and evented transports drain
//!   the identical request sequence from the identical upstream byte
//!   stream — including per-connection FIFO order, interleaved garbage,
//!   and writes fragmented down to single bytes (the evented loop's
//!   readable-drain must reassemble records across arbitrarily many
//!   readable turns).
//! * **Garbage never kills**: flooding the backchannel with seeded junk
//!   neither panics nor disconnects either transport; a valid request
//!   sent after the flood still parses, and the downstream broadcast
//!   still reaches the abusive client intact.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bdisk_broker::{
    encode_request, Backpressure, BroadcastEngine, DeliveryStats, EngineConfig,
    EventedTcpTransport, Frame, PagePayloads, PullConfig, PullMode, PullRequest, TcpTransport,
    TcpTransportConfig, Transport,
};
use bdisk_sched::{BroadcastPlan, DiskLayout, PageId};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Pull-off byte-identity
// ---------------------------------------------------------------------------

/// A downstream-only transport that records the exact wire bytes of the
/// broadcast. One capture stands in for every subscriber: the transports
/// are broadcast-once, so a single canonical stream *is* the wire.
#[derive(Default)]
struct CaptureWire {
    bytes: Vec<u8>,
}

impl Transport for CaptureWire {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        self.bytes.extend_from_slice(&frame.encode());
        DeliveryStats::default()
    }

    fn active_clients(&self) -> usize {
        1
    }
}

/// Runs one engine over a capture transport and returns the wire bytes.
fn capture_run(layout: &DiskLayout, channels: usize, cfg: EngineConfig, pull: PullMode) -> Vec<u8> {
    let plan = BroadcastPlan::generate(layout, channels).expect("test layout is valid");
    let engine = BroadcastEngine::with_plan(plan, cfg).with_pull(PullConfig {
        mode: pull,
        ..PullConfig::default()
    });
    let mut wire = CaptureWire::default();
    engine.run(&mut wire);
    wire.bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pull_off_engine_is_byte_identical_on_the_wire(
        layout_pick in 0usize..3,
        delta in 0u64..4,
        channels in 1usize..3,
        max_slots in 1u64..160,
        page_size in 0usize..48,
    ) {
        let sizes: &[usize] = [&[6_usize, 18][..], &[4, 10, 16][..], &[12][..]][layout_pick];
        let layout = DiskLayout::with_delta(sizes, delta).expect("test layout is valid");
        let cfg = EngineConfig {
            max_slots,
            stop_when_no_clients: false,
            page_size,
            ..EngineConfig::default()
        };

        let baseline = {
            // No `with_pull` at all: the path every pre-pull caller takes.
            let plan = BroadcastPlan::generate(&layout, channels).expect("test layout is valid");
            let mut wire = CaptureWire::default();
            BroadcastEngine::with_plan(plan, cfg.clone()).run(&mut wire);
            wire.bytes
        };
        let explicit_off = capture_run(&layout, channels, cfg.clone(), PullMode::Off);
        let armed_idle = capture_run(&layout, channels, cfg, PullMode::PaddingFill);

        prop_assert_eq!(&explicit_off, &baseline, "PullMode::Off perturbed the wire");
        prop_assert_eq!(
            &armed_idle, &baseline,
            "an armed arbiter with no queued requests perturbed the wire"
        );
    }
}

// ---------------------------------------------------------------------------
// Upstream equivalence: threaded vs evented
// ---------------------------------------------------------------------------

/// The upstream-capable slice of both transports.
trait UpstreamServer: Transport {
    fn addr(&self) -> SocketAddr;
    fn wait(&mut self, n: usize) -> bool;
}

impl UpstreamServer for TcpTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn wait(&mut self, n: usize) -> bool {
        self.wait_for_clients(n, Duration::from_secs(10))
    }
}

impl UpstreamServer for EventedTcpTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn wait(&mut self, n: usize) -> bool {
        self.wait_for_clients(n, Duration::from_secs(10))
    }
}

fn test_config() -> TcpTransportConfig {
    TcpTransportConfig {
        queue_capacity: 64,
        backpressure: Backpressure::DropNewest,
        ..TcpTransportConfig::default()
    }
}

/// Polls `take_requests` until `expected` requests arrive (or panics
/// after a generous deadline — requests must never be silently lost).
fn drain_requests<T: UpstreamServer>(transport: &mut T, expected: usize) -> Vec<PullRequest> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    while out.len() < expected {
        transport.take_requests(&mut out);
        assert!(
            Instant::now() < deadline,
            "drained only {}/{expected} upstream requests in time",
            out.len()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // One more turn: anything *beyond* expected is a duplication bug.
    std::thread::sleep(Duration::from_millis(20));
    transport.take_requests(&mut out);
    assert_eq!(out.len(), expected, "transport produced surplus requests");
    out
}

/// The upstream byte stream both transports must parse identically: valid
/// records interleaved with junk that cannot contain the record magic.
fn upstream_script(user_base: u32, requests: u32) -> (Vec<u8>, Vec<PullRequest>) {
    let mut bytes = Vec::new();
    let mut expected = Vec::new();
    for i in 0..requests {
        if i % 3 == 1 {
            // Magic-free junk between records: the parser must resync.
            bytes.extend_from_slice(&[0xFF; 7]);
        }
        let req = PullRequest {
            user: user_base + i,
            page: PageId(i % 11),
            min_seq: u64::from(i) * 5,
        };
        bytes.extend_from_slice(&encode_request(req.user, req.page, req.min_seq));
        expected.push(req);
    }
    (bytes, expected)
}

/// Sends two connections' upstream scripts — one written whole, one
/// fragmented byte-by-byte — and returns the transport's drained
/// requests. Keeps the streams alive until the drain completes so no
/// bytes race a disconnect.
fn run_upstream<T: UpstreamServer>(mut transport: T) -> Vec<PullRequest> {
    let addr = transport.addr();
    let mut whole = TcpStream::connect(addr).expect("connect whole-writer");
    let mut fragmented = TcpStream::connect(addr).expect("connect fragmented-writer");
    assert!(transport.wait(2), "upstream writers failed to connect");

    let (bytes_a, expected_a) = upstream_script(0, 24);
    let (bytes_b, expected_b) = upstream_script(1000, 24);
    whole.write_all(&bytes_a).expect("whole write");
    whole.flush().expect("whole flush");
    // The fragmented writer stresses the readable-drain: every byte may
    // arrive as its own readable turn and records must reassemble across
    // all of them.
    for chunk in bytes_b.chunks(1) {
        fragmented.write_all(chunk).expect("fragmented write");
    }
    fragmented.flush().expect("fragmented flush");

    let drained = drain_requests(&mut transport, expected_a.len() + expected_b.len());

    // Per-connection FIFO order must survive the shared drain queue.
    let from_a: Vec<PullRequest> = drained.iter().filter(|r| r.user < 1000).copied().collect();
    let from_b: Vec<PullRequest> = drained.iter().filter(|r| r.user >= 1000).copied().collect();
    assert_eq!(
        from_a, expected_a,
        "whole-writer requests reordered or lost"
    );
    assert_eq!(
        from_b, expected_b,
        "fragmented-writer requests reordered or lost"
    );
    drained
}

#[test]
fn threaded_and_evented_drain_the_same_upstream_stream() {
    let threaded = run_upstream(TcpTransport::bind(test_config()).expect("bind threaded"));
    let evented = run_upstream(EventedTcpTransport::bind(test_config()).expect("bind evented"));
    // Cross-connection interleaving is racy on both sides; the canonical
    // comparison is the order-normalized multiset.
    let normalize = |mut v: Vec<PullRequest>| {
        v.sort_by_key(|r| (r.user, r.page.0, r.min_seq));
        v
    };
    assert_eq!(
        normalize(threaded),
        normalize(evented),
        "threaded and evented transports disagree on the upstream stream"
    );
}

// ---------------------------------------------------------------------------
// Garbage never kills
// ---------------------------------------------------------------------------

/// 64 KiB of deterministic junk with the record magic's first byte mapped
/// away, so the flood contains zero valid records and the parser resyncs
/// through all of it.
fn garbage_flood() -> Vec<u8> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..64 * 1024)
        .map(|_| {
            // xorshift* keeps the test dependency-free and seeded.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let b = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8;
            if b == b'B' {
                0u8
            } else {
                b
            }
        })
        .collect()
}

fn garbage_never_kills<T: UpstreamServer>(mut transport: T) {
    let addr = transport.addr();
    let mut abuser = TcpStream::connect(addr).expect("connect abuser");
    assert!(transport.wait(1), "abuser failed to connect");

    abuser.write_all(&garbage_flood()).expect("garbage write");
    // A valid record after the flood: the parser must have resynced.
    abuser
        .write_all(&encode_request(42, PageId(7), 99))
        .expect("post-garbage request write");
    abuser.flush().expect("abuser flush");

    let drained = drain_requests(&mut transport, 1);
    assert_eq!(
        drained,
        vec![PullRequest {
            user: 42,
            page: PageId(7),
            min_seq: 99
        }],
        "the post-flood request did not survive the garbage"
    );
    assert_eq!(
        transport.active_clients(),
        1,
        "garbage killed the connection"
    );

    // Downstream must still flow to the abusive client, CRC-intact.
    let payloads = PagePayloads::generate(8, 32);
    transport.broadcast(payloads.frame(0, bdisk_sched::Slot::Page(PageId(3))));
    transport.finish();
    let mut wire = Vec::new();
    abuser.read_to_end(&mut wire).expect("read downstream");
    let frame = Frame::decode(&wire[4..]).expect("downstream frame survived the flood");
    assert_eq!(frame.seq, 0);
    assert_eq!(frame.slot, bdisk_sched::Slot::Page(PageId(3)));
}

#[test]
fn upstream_garbage_never_kills_the_threaded_transport() {
    garbage_never_kills(TcpTransport::bind(test_config()).expect("bind threaded"));
}

#[test]
fn upstream_garbage_never_kills_the_evented_transport() {
    garbage_never_kills(EventedTcpTransport::bind(test_config()).expect("bind evented"));
}
