//! Property test (satellite of the event-loop tentpole): the evented
//! transport is **bit-identical** to the threaded reference. For any
//! multi-channel frame sequence (pages, repair slots, padding) under any
//! seeded fault plan (erasure, corruption, delay — kills excluded, accept
//! order makes per-connection kill draws racy), every connection receives
//! the exact same wire bytes from both transports, and the summed
//! `DeliveryStats` agree.
//!
//! Runs are lossless by capacity (queue holds every frame, so `DropNewest`
//! never fires) and `max_queue` is zeroed before comparing: queue-depth
//! *evolution* legitimately differs (threaded writers drain concurrently;
//! the evented loop flushes on its coalescing cadence) while the delivered
//! stream must not.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bdisk_broker::{
    Backpressure, DeliveryStats, EventedTcpTransport, FaultPlan, Frame, PagePayloads, TcpTransport,
    TcpTransportConfig, Transport,
};
use bdisk_sched::{PageId, RepairId, Slot};
use proptest::prelude::*;

/// The slice of both transports this test drives.
trait Server: Transport {
    fn addr(&self) -> SocketAddr;
    fn wait(&mut self, n: usize) -> bool;
    fn plan(&mut self, plan: FaultPlan);
    fn chan_plan(&mut self, channel: u16, plan: FaultPlan);
}

impl Server for TcpTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn wait(&mut self, n: usize) -> bool {
        self.wait_for_clients(n, Duration::from_secs(10))
    }
    fn plan(&mut self, plan: FaultPlan) {
        self.set_fault_plan(plan);
    }
    fn chan_plan(&mut self, channel: u16, plan: FaultPlan) {
        self.set_channel_fault_plan(channel, plan);
    }
}

impl Server for EventedTcpTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn wait(&mut self, n: usize) -> bool {
        self.wait_for_clients(n, Duration::from_secs(10))
    }
    fn plan(&mut self, plan: FaultPlan) {
        self.set_fault_plan(plan);
    }
    fn chan_plan(&mut self, channel: u16, plan: FaultPlan) {
        self.set_channel_fault_plan(channel, plan);
    }
}

/// A reader that slurps its connection's entire wire stream until the
/// server closes it. Comparing raw bytes is the strongest equivalence:
/// framing, header encoding, corruption bit-flips, and delay reordering
/// all have to match, not just frame counts.
fn spawn_reader(addr: SocketAddr) -> JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("reader connect");
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("reader drain");
        bytes
    })
}

/// A deterministic multi-channel "coded plan" slot stream: pages striped
/// over `channels`, a repair slot closing each 8-frame parity group, and
/// periodic padding.
fn build_frames(payloads: &PagePayloads, frames: usize, channels: u16) -> Vec<Frame> {
    let symbol: Arc<[u8]> = payloads.frame(0, Slot::Page(PageId(0))).payload;
    (0..frames as u64)
        .map(|seq| {
            let slot = match seq % 8 {
                7 => Slot::Repair(RepairId((seq / 8) as u32)),
                5 => Slot::Empty,
                r => Slot::Page(PageId(r as u32)),
            };
            let mut frame = payloads.frame(seq, slot);
            if matches!(slot, Slot::Repair(_)) {
                frame.payload = Arc::clone(&symbol);
            }
            frame.channel = (seq % channels as u64) as u16;
            frame
        })
        .collect()
}

/// Broadcasts `frames` to `clients` concurrent readers and returns every
/// connection's raw byte stream plus the summed stats (`max_queue`
/// zeroed — see module docs).
fn run_server<T: Server>(
    mut transport: T,
    clients: usize,
    frames: &[Frame],
    default_plan: FaultPlan,
    chan_plan: Option<(u16, FaultPlan)>,
) -> (Vec<Vec<u8>>, DeliveryStats) {
    transport.plan(default_plan);
    if let Some((channel, plan)) = chan_plan {
        transport.chan_plan(channel, plan);
    }
    let addr = transport.addr();
    let readers: Vec<_> = (0..clients).map(|_| spawn_reader(addr)).collect();
    assert!(transport.wait(clients), "readers failed to connect");
    let mut stats = DeliveryStats::default();
    for frame in frames {
        stats.absorb(transport.broadcast(frame.clone()));
    }
    stats.absorb(transport.finish());
    stats.max_queue = 0;
    let streams = readers
        .into_iter()
        .map(|r| r.join().expect("reader panicked"))
        .collect();
    (streams, stats)
}

fn config(frames: usize) -> TcpTransportConfig {
    TcpTransportConfig {
        queue_capacity: frames + 8,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 16,
        ..TcpTransportConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evented_transport_matches_threaded_bit_for_bit(
        clients in 1usize..5,
        frames in 1usize..120,
        channels in 1u16..4,
        page_size in 0usize..48,
        seed in 0u64..1000,
        faulty in 0u8..2,
    ) {
        let payloads = PagePayloads::generate(8, page_size);
        let specs = build_frames(&payloads, frames, channels);
        let default_plan = if faulty == 1 {
            FaultPlan {
                seed,
                erasure: 0.15,
                corruption: 0.10,
                delay: 0.05,
                max_delay_slots: 3,
                ..FaultPlan::none()
            }
        } else {
            FaultPlan::none()
        };
        // Channel 0 gets its own (differently seeded) plan, so the
        // per-channel switchboard path is compared too.
        let chan_plan = (faulty == 1 && channels > 1).then(|| {
            (0u16, FaultPlan { seed: seed ^ 0xABCD, erasure: 0.3, ..FaultPlan::none() })
        });

        let (threaded_streams, threaded_stats) = run_server(
            TcpTransport::bind(config(frames)).expect("bind threaded"),
            clients, &specs, default_plan, chan_plan,
        );
        let (evented_streams, evented_stats) = run_server(
            EventedTcpTransport::bind(config(frames)).expect("bind evented"),
            clients, &specs, default_plan, chan_plan,
        );

        // Broadcast-once: every connection of either transport must carry
        // the identical byte stream (accept order is racy, so compare
        // against a single canonical stream rather than pairwise by index).
        let canon = &threaded_streams[0];
        for (i, stream) in threaded_streams.iter().enumerate() {
            prop_assert_eq!(stream, canon, "threaded conn {} diverged", i);
        }
        for (i, stream) in evented_streams.iter().enumerate() {
            prop_assert_eq!(stream, canon, "evented conn {} diverged from threaded", i);
        }
        prop_assert_eq!(threaded_stats, evented_stats);
    }
}
