//! Satellite assertion for the fan-out tentpole: steady-state broadcast on
//! the in-memory bus performs **zero heap allocations** — frames are
//! refcount clones of pre-built payloads, subscriber queues are pre-sized,
//! and eviction/retention never rebuilds the subscriber list.
//!
//! The observability layer must not change this: the run executes with
//! metric recording enabled (the default) *and* the event journal
//! recording, so sharded counter adds, histogram records, and ring-buffer
//! event writes are all on the measured path.
//!
//! This file deliberately holds a single `#[test]`: the counting global
//! allocator is process-wide, and a sibling test running concurrently
//! would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use std::sync::Arc;

use bdisk_broker::{Backpressure, BusTuning, Frame, InMemoryBus, PagePayloads, Transport};
use bdisk_sched::{PageId, RepairId, Slot};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Broadcasts `frames` slots to `subs` un-drained DropNewest subscribers
/// and returns how many allocations the broadcast loop made.
fn count_broadcast_allocs(bus: &mut InMemoryBus, payloads: &PagePayloads, frames: u64) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for seq in 0..frames {
        let slot = Slot::Page(PageId(seq as u32 % 5));
        bus.broadcast(payloads.frame(seq, slot));
    }
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_broadcast_allocates_nothing() {
    // Telemetry fully on: metrics are enabled by default; turning tracing
    // on here materializes the journal ring before the armed section, and
    // every subsequent broadcast journals its enqueues and drops.
    assert!(bdisk_obs::metrics_enabled(), "metrics must default on");
    bdisk_obs::set_tracing_enabled(true);

    let payloads = PagePayloads::generate(5, 64);

    // DropNewest with full buffers: every broadcast exercises the
    // backpressure path too, and nothing ever drains.
    let mut bus = InMemoryBus::with_tuning(
        32,
        Backpressure::DropNewest,
        BusTuning {
            batch: 8,
            shards: 0,
        },
    );
    let subs: Vec<_> = (0..16).map(|_| bus.subscribe()).collect();

    // Warm-up: fill the (pre-sized) queues and the pending batch, and let
    // lazy one-time init (empty-payload singleton, etc.) happen.
    bus.broadcast(payloads.frame(0, Slot::Empty));
    count_broadcast_allocs(&mut bus, &payloads, 64);

    // Steady state: 16 subscribers × 512 slots, zero allocations — frame
    // clones are refcount bumps and queue pushes land in pre-sized rings.
    // A plan coded at rate 0 airs exactly this slot stream (coding is
    // `None`, no repair slots exist), so this *is* the rate-0 invariant.
    let allocs = count_broadcast_allocs(&mut bus, &payloads, 512);
    assert_eq!(
        allocs, 0,
        "steady-state broadcast must not touch the allocator"
    );

    // Coded airing is alloc-free too: a repair frame shares its symbol
    // buffer by refcount exactly like a page frame shares its payload —
    // the engine precomputes the per-channel symbol tables once per run.
    // Warm the repair path like the page path above: the first airing of
    // each repair id may trigger lazy one-time init (label-map inserts),
    // which is startup cost, not steady state.
    let symbol: Arc<[u8]> = vec![0u8; 64].into();
    for seq in 568..576u64 {
        bus.broadcast(Frame {
            seq,
            channel: 0,
            slot: Slot::Repair(RepairId(seq as u32 % 4)),
            epoch: 0,
            payload: Arc::clone(&symbol),
        });
    }
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for seq in 576..832u64 {
        bus.broadcast(Frame {
            seq,
            channel: 0,
            slot: Slot::Repair(RepairId(seq as u32 % 4)),
            epoch: 0,
            payload: Arc::clone(&symbol),
        });
    }
    ARMED.store(false, Ordering::SeqCst);
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "repair-slot broadcast must not touch the allocator"
    );

    bus.finish();
    drop(subs);
}
