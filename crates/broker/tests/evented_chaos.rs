//! Chaos test for the evented transport: a 256-client fleet rides out 10%
//! erasure plus corruption, delay/reorder, and random connection kills on
//! the single-threaded event loop. Every client must finish its
//! measurement quota — only possible if every lost pending page was
//! recovered at a later periodic broadcast — with zero panics, and the
//! loop's slab must keep absorbing the kill/reconnect churn.
//!
//! This is `tcp_faults.rs`'s chaos scenario pointed at
//! [`EventedTcpTransport`] at 32× the fleet size: the thread-per-connection
//! reference would burn the core on writer-thread context switches long
//! before 256 clients, which is exactly why the event loop exists.

use std::time::Duration;

use bdisk_broker::{
    Backpressure, BroadcastEngine, EngineConfig, EventedTcpTransport, FaultPlan, LiveClient,
    ReconnectPolicy, TcpClientFeed, TcpTransportConfig,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::SimConfig;

#[test]
fn evented_chaos_fleet_of_256_completes_with_gaps_recovered() {
    const CLIENTS: u64 = 256;
    let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let period = program.period() as u64;
    let cfg = SimConfig {
        access_range: 50,
        region_size: 5,
        cache_size: 10,
        offset: 10,
        noise: 0.2,
        policy: PolicyKind::Lix,
        // A lean quota per client: the point is 256 concurrent fault-riding
        // connections, not per-client statistics.
        requests: 40,
        warmup_requests: 10,
        ..SimConfig::default()
    };

    let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    transport.set_fault_plan(FaultPlan {
        seed: 0xC0FFEE,
        erasure: 0.10,
        corruption: 0.02,
        delay: 0.01,
        max_delay_slots: 4,
        kill: 0.00002,
        overrun: 0.0,
        drift_every_slots: 0,
        broker_kill_slot: 0,
    });
    let addr = transport.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let cfg = cfg.clone();
            let layout = layout.clone();
            let program = program.clone();
            std::thread::spawn(move || {
                let policy = ReconnectPolicy {
                    max_attempts: 10,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(20),
                    seed: 0xFEED ^ id,
                };
                let mut feed = TcpClientFeed::connect(addr, policy, id).unwrap();
                let mut client = LiveClient::new(&cfg, &layout, program, 100 + id).unwrap();
                while let Some(frame) = feed.recv() {
                    if client.on_frame(&frame) {
                        break;
                    }
                }
                (client.is_done(), client.into_results())
            })
        })
        .collect();

    assert!(transport.wait_for_clients(CLIENTS as usize, Duration::from_secs(60)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 5_000_000,
            // Gentle pacing keeps a reconnect outage to a handful of slots,
            // so recovery waits stay commensurate with the period.
            slot_duration: Duration::from_micros(20),
            no_client_grace_slots: 4 * period,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);
    let counts = transport.fault_counts();

    assert!(counts.erased > 0, "plan injected no erasures");
    assert!(counts.corrupted > 0, "plan injected no corruption");
    assert!(report.slots_sent < 5_000_000, "fleet never finished");

    let mut fleet_gaps = 0u64;
    let mut fleet_recoveries = 0u64;
    let mut fleet_max_wait = 0u64;
    for handle in handles {
        // join() panics here only if the client thread panicked: the
        // acceptance bar is zero client panics under faults.
        let (done, results) = handle.join().expect("client panicked under faults");
        assert!(done, "a client failed to finish its quota");
        assert_eq!(results.outcome.measured_requests, cfg.requests);
        fleet_gaps += results.gaps;
        fleet_recoveries += results.recoveries;
        fleet_max_wait = fleet_max_wait.max(results.max_recovery_wait);
    }
    assert!(fleet_gaps > 0, "10% erasure produced no observable gaps");
    assert!(
        fleet_recoveries >= 1,
        "no lost pending page was ever recovered"
    );
    assert!(
        fleet_max_wait <= 12 * period,
        "recovery waited {fleet_max_wait} slots; period is {period}"
    );
}
