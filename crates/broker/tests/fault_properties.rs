//! Fault-plan properties (satellites of the fault-injection tentpole):
//!
//! * a **zero-fault** plan is not "a plan that happens to do nothing" — it
//!   must leave both transports *bit-identical* to never having installed
//!   a plan at all: same frames, same payload bytes, same `DeliveryStats`
//!   (TCP compares stats minus `max_queue`, which races the concurrent
//!   writer drain by design);
//! * the same seed replays the identical fault sequence, at both the
//!   decision level (`channel_fault`) and the injector level (what comes
//!   out of the choke point, and in what order).

use std::time::Duration;

use bdisk_broker::faults::InjectedFrame;
use bdisk_broker::{
    Backpressure, BusTuning, ChannelFault, DeliveryStats, FaultInjector, FaultPlan, Frame,
    InMemoryBus, PagePayloads, TcpFrameReader, TcpTransport, TcpTransportConfig, Transport,
};
use bdisk_sched::{PageId, Slot};
use proptest::prelude::*;

fn slot_for(seq: u64) -> Slot {
    if seq % 5 == 4 {
        Slot::Empty
    } else {
        Slot::Page(PageId(seq as u32 % 7))
    }
}

/// Broadcasts `frames` slots on a bus (optionally under `plan`) and
/// returns each subscriber's received (seq, payload-checksum) sequence
/// plus the summed stats.
fn run_bus(
    plan: Option<FaultPlan>,
    backpressure: Backpressure,
    capacity: usize,
    subs: usize,
    frames: usize,
    payloads: &PagePayloads,
) -> (Vec<Vec<(u64, u64)>>, DeliveryStats) {
    let mut bus = InMemoryBus::with_tuning(capacity, backpressure, BusTuning::default());
    if let Some(plan) = plan {
        bus.set_fault_plan(plan);
    }
    let mut receivers: Vec<_> = (0..subs).map(|_| bus.subscribe()).collect();
    let mut totals = DeliveryStats::default();
    for seq in 0..frames as u64 {
        totals.absorb(bus.broadcast(payloads.frame(seq, slot_for(seq))));
    }
    totals.absorb(bus.finish());
    let seen = receivers
        .iter_mut()
        .map(|sub| {
            std::iter::from_fn(|| sub.recv())
                .map(|f| {
                    let sum: u64 = f.payload.iter().map(|&b| b as u64).sum();
                    (f.seq, sum)
                })
                .collect()
        })
        .collect();
    (seen, totals)
}

/// Broadcasts `frames` slots over loopback TCP (optionally under `plan`)
/// and returns the reader's received (seq, payload-checksum) sequence plus
/// the summed stats.
fn run_tcp(
    plan: Option<FaultPlan>,
    frames: usize,
    payloads: &PagePayloads,
) -> (Vec<(u64, u64)>, DeliveryStats) {
    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: frames.max(1),
        ..TcpTransportConfig::default()
    })
    .unwrap();
    if let Some(plan) = plan {
        transport.set_fault_plan(plan);
    }
    let addr = transport.local_addr();
    let reader = std::thread::spawn(move || {
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        let mut seen = Vec::new();
        while let Some(f) = reader.recv().unwrap() {
            let sum: u64 = f.payload.iter().map(|&b| b as u64).sum();
            seen.push((f.seq, sum));
        }
        seen
    });
    assert!(transport.wait_for_clients(1, Duration::from_secs(10)));
    let mut totals = DeliveryStats::default();
    for seq in 0..frames as u64 {
        totals.absorb(transport.broadcast(payloads.frame(seq, slot_for(seq))));
    }
    totals.absorb(transport.finish());
    (reader.join().unwrap(), totals)
}

/// Stats with the timing-dependent field removed: on TCP the writer drains
/// concurrently with the broadcaster, so the sampled peak backlog is not
/// deterministic even on a fault-free run.
fn sans_max_queue(mut stats: DeliveryStats) -> DeliveryStats {
    stats.max_queue = 0;
    stats
}

/// A zero-rate plan with everything else (seed, delay bound) arbitrary.
fn zero_plan(seed: u64, max_delay_slots: u64) -> FaultPlan {
    FaultPlan {
        seed,
        max_delay_slots: max_delay_slots.max(1),
        ..FaultPlan::none()
    }
}

/// Runs one frame stream through an injector, recording the emitted
/// (seq, was_corrupted) sequence and the final counts.
fn injector_trace(plan: FaultPlan, frames: usize) -> (Vec<(u64, bool)>, u64) {
    let mut inj = FaultInjector::new(plan);
    let mut out: Vec<InjectedFrame> = Vec::new();
    let mut trace = Vec::new();
    for seq in 0..frames as u64 {
        out.clear();
        inj.step(Frame::bare(seq, slot_for(seq)), &mut out);
        for f in &out {
            trace.push((f.frame.seq, f.corrupt.is_some()));
        }
    }
    (trace, inj.counts.total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero-fault plan ≡ no plan, on the bus: frames and full stats.
    #[test]
    fn zero_fault_plan_is_bit_identical_on_bus(
        seed in any::<u64>(),
        max_delay in 1u64..16,
        subs in 1usize..6,
        frames in 1usize..120,
        lossy in 0u8..2,
        page_size in 0usize..48,
    ) {
        let (backpressure, capacity) = if lossy == 1 {
            (Backpressure::DropNewest, 8)
        } else {
            (Backpressure::Block, 128)
        };
        let payloads = PagePayloads::generate(7, page_size);
        let (base_seen, base_stats) =
            run_bus(None, backpressure, capacity, subs, frames, &payloads);
        let (seen, stats) = run_bus(
            Some(zero_plan(seed, max_delay)),
            backpressure,
            capacity,
            subs,
            frames,
            &payloads,
        );
        prop_assert_eq!(seen, base_seen, "zero plan changed delivered frames");
        prop_assert_eq!(stats, base_stats, "zero plan changed delivery stats");
    }

    /// The same seed replays the identical fault sequence — decision
    /// stream and injector output alike.
    #[test]
    fn same_seed_replays_identically(
        seed in any::<u64>(),
        erasure in 0.0f64..0.4,
        corruption in 0.0f64..0.3,
        delay in 0.0f64..0.3,
        max_delay in 1u64..8,
        frames in 1usize..250,
    ) {
        let plan = FaultPlan {
            seed,
            erasure,
            corruption,
            delay,
            max_delay_slots: max_delay,
            kill: 0.02,
            overrun: 0.02,
            drift_every_slots: 0,
            broker_kill_slot: 0,
        };
        for seq in 0..frames as u64 {
            prop_assert_eq!(plan.channel_fault(seq), plan.channel_fault(seq));
            prop_assert_eq!(plan.kills_client(seq, 3), plan.kills_client(seq, 3));
            prop_assert_eq!(plan.overrun_at(seq), plan.overrun_at(seq));
        }
        let (trace_a, total_a) = injector_trace(plan, frames);
        let (trace_b, total_b) = injector_trace(plan, frames);
        prop_assert_eq!(trace_a, trace_b, "injector replay diverged");
        prop_assert_eq!(total_a, total_b);
    }

    /// Raising the erasure rate only adds losses (coupled sampling): the
    /// erased slot set at a lower rate is a subset of the higher rate's.
    #[test]
    fn erasure_sets_nest_across_rates(
        seed in any::<u64>(),
        low in 0.0f64..0.5,
        extra in 0.0f64..0.5,
    ) {
        let lo = FaultPlan::erasure_only(seed, low);
        let hi = FaultPlan::erasure_only(seed, (low + extra).min(1.0));
        for seq in 0..500u64 {
            if lo.channel_fault(seq) == ChannelFault::Erase {
                prop_assert_eq!(hi.channel_fault(seq), ChannelFault::Erase);
            }
        }
    }
}

proptest! {
    // Real sockets per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Zero-fault plan ≡ no plan, over TCP: frames bit-equal, stats equal
    /// except the timing-raced `max_queue`.
    #[test]
    fn zero_fault_plan_is_bit_identical_on_tcp(
        seed in any::<u64>(),
        frames in 1usize..60,
        page_size in 0usize..48,
    ) {
        let payloads = PagePayloads::generate(7, page_size);
        let (base_seen, base_stats) = run_tcp(None, frames, &payloads);
        let (seen, stats) = run_tcp(Some(zero_plan(seed, 4)), frames, &payloads);
        prop_assert_eq!(seen, base_seen, "zero plan changed TCP frames");
        prop_assert_eq!(
            sans_max_queue(stats),
            sans_max_queue(base_stats),
            "zero plan changed TCP delivery stats"
        );
    }
}
