//! Live-vs-simulator parity: 16 concurrent clients (four per policy) on a
//! lossless in-memory bus must reproduce each client's simulator prediction
//! exactly — same seed, same config, bit-identical measurements.

use bdisk_broker::{
    aggregate, Backpressure, BroadcastEngine, BusTuning, EngineConfig, InMemoryBus, LiveClient,
    LiveClientResult,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::{simulate, SimConfig};

fn config(policy: PolicyKind) -> SimConfig {
    SimConfig {
        access_range: 100,
        region_size: 5,
        cache_size: 20,
        offset: 20,
        noise: 0.3,
        policy,
        requests: 400,
        warmup_requests: 100,
        ..SimConfig::default()
    }
}

#[test]
fn sixteen_clients_match_their_simulated_twins() {
    let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let policies = [
        PolicyKind::Lru,
        PolicyKind::L,
        PolicyKind::Lix,
        PolicyKind::Pix,
    ];

    // 16 clients: four seeds per policy.
    let roster: Vec<(PolicyKind, u64)> = policies
        .iter()
        .flat_map(|&p| (0..4).map(move |i| (p, 1000 + i * 17)))
        .collect();
    assert_eq!(roster.len(), 16);

    let mut bus = InMemoryBus::new(256, Backpressure::Block);
    let subs: Vec<_> = roster.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = roster
        .iter()
        .map(|&(policy, seed)| {
            LiveClient::new(&config(policy), &layout, program.clone(), seed).unwrap()
        })
        .collect();

    let engine = BroadcastEngine::new(program.clone(), EngineConfig::default());
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().unwrap();
        }
        report
    })
    .unwrap();

    // The lossless bus delivered every frame: nothing dropped, and the run
    // spanned at least two full major cycles of the broadcast.
    assert_eq!(report.frames_dropped, 0);
    assert!(
        report.major_cycles >= 2,
        "only {} major cycles ({} slots of period {})",
        report.major_cycles,
        report.slots_sent,
        program.period()
    );

    let results: Vec<LiveClientResult> = clients.into_iter().map(|c| c.into_results()).collect();
    for (result, &(policy, seed)) in results.iter().zip(&roster) {
        let predicted = simulate(&config(policy), &layout, seed).unwrap();
        let live = &result.outcome;
        assert_eq!(live.measured_requests, predicted.measured_requests);
        assert_eq!(
            live.mean_response_time, predicted.mean_response_time,
            "{policy:?} seed {seed}: live mean diverged from simulator"
        );
        assert_eq!(
            live.hit_rate, predicted.hit_rate,
            "{policy:?} seed {seed}: live hit rate diverged from simulator"
        );
        assert_eq!(live.end_time, predicted.end_time);
        assert_eq!(live.access_fractions, predicted.access_fractions);
    }

    let fleet = aggregate(report, results);
    assert_eq!(fleet.clients, 16);
    assert_eq!(fleet.measured_requests, 16 * 400);
    let fleet_hit_rate = fleet.hit_rate.expect("measured fleet has a hit rate");
    assert!(fleet_hit_rate > 0.0 && fleet_hit_rate < 1.0);
    assert!(fleet.p50 <= fleet.p95 && fleet.p95 <= fleet.p99);
}

/// The zero-copy fast path (batched flushes + worker-shard fan-out) is
/// observably identical to the default bus: the same clients still match
/// their simulated twins bit for bit.
#[test]
fn batched_sharded_bus_preserves_simulator_parity() {
    let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let roster: Vec<(PolicyKind, u64)> = [PolicyKind::Lru, PolicyKind::Lix]
        .iter()
        .flat_map(|&p| (0..4).map(move |i| (p, 2000 + i * 13)))
        .collect();

    let mut bus = InMemoryBus::with_tuning(
        256,
        Backpressure::Block,
        BusTuning {
            batch: 16,
            shards: 2,
        },
    );
    let subs: Vec<_> = roster.iter().map(|_| bus.subscribe()).collect();
    let mut clients: Vec<LiveClient> = roster
        .iter()
        .map(|&(policy, seed)| {
            LiveClient::new(&config(policy), &layout, program.clone(), seed).unwrap()
        })
        .collect();

    let engine = BroadcastEngine::new(program, EngineConfig::default());
    let report = crossbeam::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(subs)
            .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
            .collect();
        let report = engine.run(&mut bus);
        for h in handles {
            h.join().unwrap();
        }
        report
    })
    .unwrap();

    assert_eq!(report.frames_dropped, 0);
    for (client, &(policy, seed)) in clients.into_iter().zip(&roster) {
        let predicted = simulate(&config(policy), &layout, seed).unwrap();
        let live = client.into_results().outcome;
        assert_eq!(
            live.mean_response_time, predicted.mean_response_time,
            "{policy:?} seed {seed}: sharded bus diverged from simulator"
        );
        assert_eq!(live.hit_rate, predicted.hit_rate);
        assert_eq!(live.end_time, predicted.end_time);
        assert_eq!(live.access_fractions, predicted.access_fractions);
    }
}

#[test]
fn drop_newest_bus_still_lets_clients_finish() {
    // A lossy feed costs extra broadcast periods (a dropped page comes
    // around again) but never wedges the protocol.
    let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let cfg = config(PolicyKind::Lix);
    let cfg = SimConfig {
        access_range: 50,
        cache_size: 10,
        offset: 10,
        requests: 150,
        warmup_requests: 20,
        ..cfg
    };

    // Tiny buffer so the free-running engine overruns the client.
    let mut bus = InMemoryBus::new(2, Backpressure::DropNewest);
    let sub = bus.subscribe();
    let mut client = LiveClient::new(&cfg, &layout, program.clone(), 5).unwrap();

    let engine = BroadcastEngine::new(program, EngineConfig::default());
    let client_ref = &mut client;
    let report = crossbeam::scope(move |scope| {
        let handle = scope.spawn(move |_| client_ref.run(sub));
        let report = engine.run(&mut bus);
        handle.join().unwrap();
        report
    })
    .unwrap();

    let results = client.into_results();
    assert_eq!(results.outcome.measured_requests, 150);
    // The engine raced ahead of the client, so frames were dropped — the
    // client finished anyway by waiting out extra periods.
    assert!(report.slots_sent > 0);
}
