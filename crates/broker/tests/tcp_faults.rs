//! Chaos test: a TCP client fleet under a seeded fault plan (erasure +
//! corruption + delay + connection kills) completes its full measurement
//! quota with zero panics, recovering every lost page at a later periodic
//! broadcast — the paper's recovery model, end to end over real sockets.

use std::time::Duration;

use bdisk_broker::{
    Backpressure, BroadcastEngine, EngineConfig, FaultPlan, LiveClient, ReconnectPolicy,
    TcpClientFeed, TcpTransport, TcpTransportConfig,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::SimConfig;

fn small_setup() -> (SimConfig, DiskLayout, BroadcastProgram) {
    let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let cfg = SimConfig {
        access_range: 50,
        region_size: 5,
        cache_size: 10,
        offset: 10,
        noise: 0.2,
        policy: PolicyKind::Lix,
        requests: 120,
        warmup_requests: 20,
        ..SimConfig::default()
    };
    (cfg, layout, program)
}

/// Eight clients ride out 10% erasure plus corruption, delay/reorder, and
/// random connection kills. Every client must finish its quota (which is
/// only possible if every lost pending page was eventually recovered), and
/// no recovery may wait more than a small multiple of the period.
#[test]
fn chaos_fleet_completes_under_seeded_faults() {
    const CLIENTS: u64 = 8;
    let (cfg, layout, program) = small_setup();
    let period = program.period() as u64;

    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    transport.set_fault_plan(FaultPlan {
        seed: 0xC0FFEE,
        erasure: 0.10,
        corruption: 0.02,
        delay: 0.01,
        max_delay_slots: 4,
        kill: 0.0001,
        overrun: 0.0,
        drift_every_slots: 0,
        broker_kill_slot: 0,
    });
    let addr = transport.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let cfg = cfg.clone();
            let layout = layout.clone();
            let program = program.clone();
            std::thread::spawn(move || {
                let policy = ReconnectPolicy {
                    max_attempts: 10,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(20),
                    seed: 0xFEED,
                };
                let mut feed = TcpClientFeed::connect(addr, policy, id).unwrap();
                let mut client = LiveClient::new(&cfg, &layout, program, 100 + id).unwrap();
                while let Some(frame) = feed.recv() {
                    if client.on_frame(&frame) {
                        break;
                    }
                }
                (client.is_done(), feed.reconnects(), client.into_results())
            })
        })
        .collect();

    assert!(transport.wait_for_clients(CLIENTS as usize, Duration::from_secs(10)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 5_000_000,
            // Gentle pacing keeps a reconnect outage to a handful of slots,
            // so recovery waits stay commensurate with the period.
            slot_duration: Duration::from_micros(20),
            no_client_grace_slots: 4 * period,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);
    let counts = transport.fault_counts();

    assert!(counts.erased > 0, "plan injected no erasures");
    assert!(counts.corrupted > 0, "plan injected no corruption");
    assert!(report.slots_sent < 5_000_000, "fleet never finished");

    let mut fleet_gaps = 0u64;
    let mut fleet_recoveries = 0u64;
    let mut fleet_max_wait = 0u64;
    for handle in handles {
        // join() panics here only if the client thread panicked: the
        // acceptance bar is zero client panics under faults.
        let (done, _reconnects, results) = handle.join().expect("client panicked under faults");
        assert!(done, "a client failed to finish its quota");
        assert_eq!(results.outcome.measured_requests, cfg.requests);
        fleet_gaps += results.gaps;
        fleet_recoveries += results.recoveries;
        fleet_max_wait = fleet_max_wait.max(results.max_recovery_wait);
    }
    assert!(fleet_gaps > 0, "10% erasure produced no observable gaps");
    assert!(
        fleet_recoveries >= 1,
        "no lost pending page was ever recovered"
    );
    assert!(
        fleet_max_wait <= 10 * period,
        "recovery waited {fleet_max_wait} slots; period is {period}"
    );
}

/// A lone client whose connection is repeatedly killed reconnects with
/// backoff, resyncs on the next slot marker, and still finishes — while
/// the engine's grace window keeps the slot clock ticking through the
/// momentarily empty client set.
#[test]
fn killed_client_reconnects_and_finishes() {
    let (cfg, layout, program) = small_setup();
    let period = program.period() as u64;

    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    transport.set_fault_plan(FaultPlan {
        seed: 7,
        kill: 0.002,
        ..FaultPlan::none()
    });
    let addr = transport.local_addr();

    let client_cfg = cfg.clone();
    let client_program = program.clone();
    let handle = std::thread::spawn(move || {
        let policy = ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            seed: 3,
        };
        let mut feed = TcpClientFeed::connect(addr, policy, 0).unwrap();
        let mut client = LiveClient::new(&client_cfg, &layout, client_program, 42).unwrap();
        while let Some(frame) = feed.recv() {
            if client.on_frame(&frame) {
                break;
            }
        }
        (client.is_done(), feed.reconnects(), client.into_results())
    });

    assert!(transport.wait_for_clients(1, Duration::from_secs(10)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 5_000_000,
            slot_duration: Duration::from_micros(20),
            no_client_grace_slots: 4 * period,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);

    let (done, reconnects, results) = handle.join().expect("client panicked");
    assert!(done, "client failed to finish across kills");
    assert_eq!(results.outcome.measured_requests, cfg.requests);
    assert!(
        reconnects >= 1,
        "kill rate 0.002 over {} slots produced no reconnects",
        report.slots_sent
    );
    // Each outage shows up as an ordinary sequence gap to the client.
    assert!(results.gaps >= reconnects);
    assert!(transport.fault_counts().killed >= reconnects);
}
