//! Satellite assertion for the event-loop tentpole: the evented
//! transport's steady-state broadcast cost is a **client-count-independent
//! constant number of allocations per slot** — one shared wire encoding
//! (`Arc<[u8]>`), refcount-bump enqueues into pre-sized backlogs, and
//! vectored flushes through a stack `IoSlice` array. Doubling the fleet
//! must not add a single allocation.
//!
//! Metrics stay enabled (the default): the cached counter/gauge handles
//! must not allocate on the hot path either.
//!
//! This file deliberately holds a single `#[test]`: the counting global
//! allocator is process-wide, and a sibling test running concurrently
//! would pollute the count. Reader threads drain into fixed stack buffers
//! so their work is invisible to the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use bdisk_broker::{
    Backpressure, EventedTcpTransport, PagePayloads, TcpTransportConfig, Transport,
};
use bdisk_sched::{PageId, Slot};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A reader that drains its connection into a fixed stack buffer until the
/// server closes it — allocation-free by construction, so the global
/// counter only ever sees the broadcast path.
fn spawn_silent_reader(addr: SocketAddr) -> JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("reader connect");
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0u64;
        loop {
            match stream.read(&mut buf) {
                Ok(0) => return total,
                Ok(n) => total += n as u64,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return total,
            }
        }
    })
}

/// Broadcasts `frames` slots to a fleet of `clients` draining readers and
/// returns how many allocations the broadcast loop made after warm-up.
fn count_evented_allocs(clients: usize, frames: u64, payloads: &PagePayloads) -> u64 {
    let mut transport = EventedTcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 16,
        ..TcpTransportConfig::default()
    })
    .expect("bind evented transport");
    let readers: Vec<_> = (0..clients)
        .map(|_| spawn_silent_reader(transport.local_addr()))
        .collect();
    assert!(transport.wait_for_clients(clients, Duration::from_secs(10)));

    // Warm-up: let lazy one-time init happen (metric handle caches, the
    // epoll readiness plumbing, first flush).
    for seq in 0..64u64 {
        transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 5))));
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for seq in 64..64 + frames {
        transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 5))));
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    transport.finish();
    for reader in readers {
        assert!(reader.join().expect("reader panicked") > 0);
    }
    allocs
}

#[test]
fn evented_steady_state_allocs_are_constant_per_slot_and_client_independent() {
    assert!(bdisk_obs::metrics_enabled(), "metrics must default on");
    let payloads = PagePayloads::generate(5, 64);
    const FRAMES: u64 = 512;

    let small_fleet = count_evented_allocs(2, FRAMES, &payloads);
    let big_fleet = count_evented_allocs(16, FRAMES, &payloads);

    // The only per-slot allocations are the shared wire encoding itself;
    // enqueue and flush are allocation-free for every connection.
    assert!(
        small_fleet <= FRAMES * 4,
        "per-slot allocation budget blown: {small_fleet} allocs for {FRAMES} slots"
    );
    assert_eq!(
        small_fleet, big_fleet,
        "allocations must not scale with client count (2 clients: {small_fleet}, \
         16 clients: {big_fleet})"
    );
}
