//! TCP transport end to end: a live measuring client over a real socket,
//! and slow consumers triggering both backpressure policies.

use std::time::{Duration, Instant};

use bdisk_broker::{
    Backpressure, BroadcastEngine, EngineConfig, LiveClient, TcpFrameReader, TcpTransport,
    TcpTransportConfig, Transport,
};
use bdisk_cache::PolicyKind;
use bdisk_sched::{BroadcastProgram, DiskLayout};
use bdisk_sim::SimConfig;

fn small_setup() -> (SimConfig, DiskLayout, BroadcastProgram) {
    let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
    let program = BroadcastProgram::generate(&layout).unwrap();
    let cfg = SimConfig {
        access_range: 50,
        region_size: 5,
        cache_size: 10,
        offset: 10,
        noise: 0.2,
        policy: PolicyKind::Lix,
        requests: 200,
        warmup_requests: 20,
        ..SimConfig::default()
    };
    (cfg, layout, program)
}

#[test]
fn live_client_completes_over_tcp() {
    let (cfg, layout, program) = small_setup();
    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 64,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    let addr = transport.local_addr();

    let client_program = program.clone();
    let client_thread = std::thread::spawn(move || {
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        let mut client = LiveClient::new(&cfg, &layout, client_program, 21).unwrap();
        while let Some(frame) = reader.recv().unwrap() {
            if client.on_frame(&frame) {
                break;
            }
        }
        client.into_results()
    });

    assert!(transport.wait_for_clients(1, Duration::from_secs(10)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 5_000_000,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);

    let results = client_thread.join().unwrap();
    assert_eq!(results.outcome.measured_requests, 200);
    assert!(results.outcome.mean_response_time > 0.0);
    assert!(results.outcome.hit_rate > 0.0);
    assert!(report.frames_delivered > 0);
}

#[test]
fn slow_consumer_triggers_drops() {
    let (_, _, program) = small_setup();
    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4,
        backpressure: Backpressure::DropNewest,
        max_coalesce: 16,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    let addr = transport.local_addr();

    // A deliberately slow consumer: sleeps on every frame while the engine
    // free-runs, so its 4-frame buffer overflows almost immediately.
    let slow = std::thread::spawn(move || {
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        let mut seen = 0u64;
        while let Some(_frame) = reader.recv().unwrap() {
            seen += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        seen
    });

    assert!(transport.wait_for_clients(1, Duration::from_secs(10)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 2_000,
            stop_when_no_clients: false,
            ..EngineConfig::default()
        },
    );
    let report = engine.run(&mut transport);

    let seen = slow.join().unwrap();
    assert_eq!(report.slots_sent, 2_000);
    assert!(
        report.frames_dropped > 0,
        "slow consumer never overflowed its buffer"
    );
    assert_eq!(
        report.frames_delivered + report.frames_dropped,
        report.slots_sent
    );
    assert!(seen < report.slots_sent, "drops must reduce what arrives");
    assert_eq!(seen, report.frames_delivered);
}

#[test]
fn slow_consumer_gets_disconnected() {
    let (_, _, program) = small_setup();
    let mut transport = TcpTransport::bind(TcpTransportConfig {
        queue_capacity: 4,
        backpressure: Backpressure::Disconnect,
        max_coalesce: 16,
        ..TcpTransportConfig::default()
    })
    .unwrap();
    let addr = transport.local_addr();

    let slow = std::thread::spawn(move || {
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        let mut seen = 0u64;
        while let Ok(Some(_)) = reader.recv() {
            seen += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        seen
    });

    assert!(transport.wait_for_clients(1, Duration::from_secs(10)));
    let engine = BroadcastEngine::new(
        program,
        EngineConfig {
            max_slots: 100_000,
            stop_when_no_clients: true,
            ..EngineConfig::default()
        },
    );
    let start = Instant::now();
    let report = engine.run(&mut transport);

    assert_eq!(report.clients_disconnected, 1);
    assert_eq!(transport.active_clients(), 0);
    // Eviction ended the run long before the slot cap.
    assert!(report.slots_sent < 100_000);
    let seen = slow.join().unwrap();
    assert!(seen <= report.frames_delivered);
    assert!(start.elapsed() < Duration::from_secs(30));
}
