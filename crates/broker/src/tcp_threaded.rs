//! The **threaded** TCP transport: length-prefixed page frames over real
//! sockets, one writer thread per connection.
//!
//! The server binds a loopback listener; an accept thread hands new
//! connections to the engine thread, which registers each one with a
//! bounded send buffer drained by a per-connection writer thread. A client
//! whose buffer fills is a slow consumer: depending on the configured
//! [`Backpressure`] its newest frames are dropped or it is disconnected
//! (blocking the whole broadcast on one slow socket is not offered here —
//! that is what [`crate::InMemoryBus`] with [`Backpressure::Block`] is for).
//!
//! The hot path is zero-copy on the server side: each slot's wire frame is
//! encoded **once** into a shared `Arc<[u8]>` and every connection's send
//! buffer holds a refcount to the same bytes. A writer that wakes up to a
//! backlog drains up to [`TcpTransportConfig::max_coalesce`] buffers and
//! pushes them with one vectored write instead of one syscall per frame.
//!
//! Thread lifecycle: `finish()` (also run on drop) closes every
//! connection's send channel, **joins** each writer thread and the accept
//! thread, and returns only when all of them have exited. Writer sockets
//! carry a bounded [`TcpTransportConfig::write_timeout`] so a join can
//! never hang on a peer that stopped reading mid-write — a stalled socket
//! errors out of its blocking write within the timeout and the writer
//! exits (the slow consumer is disconnected, which is the same fate
//! [`Backpressure`] would hand it).
//!
//! This implementation tops out around a few hundred connections (one OS
//! thread each); it is kept as the **reference implementation** the
//! event-loop transport ([`crate::EventedTcpTransport`]) is differentially
//! tested against — `tests/evented_equivalence.rs` pins the two to
//! bit-identical delivered streams.

use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bdisk_obs::journal::{event, EventKind};
use bdisk_sched::PageId;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use mini_mio::{Events, Interest, Poll, Token};

use crate::faults::{
    encode_corrupted, FaultCounts, FaultPlan, FaultSwitchboard, InjectedFrame, SplitMix,
};
use crate::transport::{Backpressure, DeliveryStats, Frame, FrameError, PullRequest, Transport};
use crate::upstream::{encode_request, UpstreamParser};

/// TCP transport tuning knobs.
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// Frames buffered per connection before backpressure applies.
    pub queue_capacity: usize,
    /// Slow-consumer policy ([`Backpressure::Block`] is rejected at bind).
    pub backpressure: Backpressure,
    /// Most backlog frames a writer folds into one vectored write.
    pub max_coalesce: usize,
    /// Upper bound on one blocking socket write (`SO_SNDTIMEO`). A peer
    /// that stops reading while its kernel buffer is full would otherwise
    /// block its writer thread indefinitely — and block `finish()`'s join
    /// with it. On timeout the write errors, the writer exits, and the
    /// stalled client is disconnected. `None` disables the bound (not
    /// recommended; shutdown promptness then depends on every peer).
    pub write_timeout: Option<Duration>,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            backpressure: Backpressure::DropNewest,
            max_coalesce: 64,
            write_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Writes every buffer in order, coalescing them into vectored writes and
/// resuming correctly across partial writes.
fn write_coalesced<W: Write>(w: &mut W, bufs: &[Arc<[u8]>]) -> io::Result<()> {
    if let [single] = bufs {
        return w.write_all(single);
    }
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len());
    while written < total {
        // Rebuild the slice list past what has already gone out; partial
        // writes are rare so the rebuild is off the common path.
        slices.clear();
        let mut skip = written;
        for buf in bufs {
            if skip >= buf.len() {
                skip -= buf.len();
                continue;
            }
            slices.push(IoSlice::new(&buf[skip..]));
            skip = 0;
        }
        let n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "socket write returned zero",
            ));
        }
        written += n;
    }
    Ok(())
}

struct Conn {
    /// Stable id (accept order) — fault plans key per-client kills on it.
    id: u64,
    tx: Sender<Arc<[u8]>>,
    writer: JoinHandle<()>,
    /// A `try_clone` of the socket for the upstream direction. The
    /// original moved into the writer thread; this clone shares the open
    /// file description, so it stays **blocking** (`O_NONBLOCK` is shared
    /// and flipping it would break the blocking writer). Reads happen
    /// only on epoll readiness, where a single read cannot block.
    reader: Option<TcpStream>,
    /// `reader` is currently registered with the request poll.
    registered: bool,
    /// Reassembles this connection's upstream bytes into pull requests.
    upstream: UpstreamParser,
}

/// Upper bound on one wire frame's body length. The length prefix is
/// attacker-visible plaintext (it sits outside the CRC-protected body), so
/// a reader must never trust it as an allocation size: a single forged
/// 32-bit prefix could otherwise demand a 4 GiB buffer. Real frames are a
/// 22-byte header plus one page or repair symbol, so 16 MiB is generous
/// headroom for any plausible page size while keeping a hostile prefix
/// harmless.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Broadcast server over loopback TCP.
pub struct TcpTransport {
    addr: SocketAddr,
    cfg: TcpTransportConfig,
    incoming: Receiver<TcpStream>,
    conns: Vec<Conn>,
    next_conn_id: u64,
    /// Writers of evicted connections, joined at finish.
    graveyard: Vec<JoinHandle<()>>,
    /// Readiness poll over connection reader clones, created on the first
    /// `take_requests` call (push-only runs never pay for it).
    req_poll: Option<Poll>,
    /// Reusable event buffer for `req_poll`.
    req_events: Events,
    /// Reusable buffer for draining upstream bytes.
    req_scratch: Box<[u8]>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Per-channel fault choke points (default plan + overrides).
    faults: FaultSwitchboard,
    /// Per-channel fan-out counters, cached off the registry.
    channel_frames: crate::obs::ChannelCounters,
    /// Encoded greeting frame enqueued to every new connection before any
    /// broadcast traffic (the epoch hello fence).
    hello: Option<Arc<[u8]>>,
}

impl TcpTransport {
    /// Binds `127.0.0.1:0` and starts accepting connections.
    pub fn bind(cfg: TcpTransportConfig) -> io::Result<Self> {
        assert!(
            cfg.backpressure != Backpressure::Block,
            "TCP transport cannot block the broadcast on one socket; \
             use DropNewest or Disconnect"
        );
        assert!(cfg.queue_capacity > 0, "need send-buffer capacity");
        assert!(cfg.max_coalesce > 0, "writers must send at least one frame");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, incoming) = unbounded();
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            cfg,
            incoming,
            conns: Vec::new(),
            next_conn_id: 0,
            graveyard: Vec::new(),
            req_poll: None,
            req_events: Events::with_capacity(256),
            req_scratch: vec![0u8; 4096].into_boxed_slice(),
            stop,
            accept_thread: Some(accept_thread),
            faults: FaultSwitchboard::new(),
            channel_frames: crate::obs::ChannelCounters::new(crate::obs::fanout_by_channel),
            hello: None,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Retires an evicted connection: deregisters its reader clone from
    /// the request poll (closing the clone alone would NOT remove the
    /// registration — the writer thread's fd keeps the description open,
    /// and a stale registration would report readiness forever), closes
    /// the send channel, and parks the writer for the shutdown join.
    fn retire(req_poll: &Option<Poll>, graveyard: &mut Vec<JoinHandle<()>>, conn: Conn) {
        if conn.registered {
            if let (Some(poll), Some(reader)) = (req_poll.as_ref(), conn.reader.as_ref()) {
                let _ = poll.deregister(reader);
            }
        }
        drop(conn.tx);
        graveyard.push(conn.writer);
    }

    /// Installs (or, with [`FaultPlan::is_none`], removes) the fault plan
    /// this transport's broadcasts run under, on **every** channel
    /// (clearing per-channel overrides). A zero plan leaves the broadcast
    /// path bit-identical to never having called this.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.set_default(plan);
    }

    /// Overrides the fault plan for one broadcast channel (other channels
    /// keep the [`Self::set_fault_plan`] default, or run clean without
    /// one).
    pub fn set_channel_fault_plan(&mut self, channel: u16, plan: FaultPlan) {
        self.faults.set_channel(channel, plan);
    }

    /// Faults injected so far, summed over every channel's injector.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.counts()
    }

    /// Registers any connections the accept thread has queued; returns the
    /// current client count.
    pub fn poll_accept(&mut self) -> usize {
        let m = crate::obs::tcp();
        while let Ok(stream) = self.incoming.try_recv() {
            let _ = stream.set_nodelay(true);
            // Bound every blocking write so a stalled peer cannot wedge
            // this writer thread (and the shutdown join behind it).
            let _ = stream.set_write_timeout(self.cfg.write_timeout);
            // The upstream direction reads from a clone of the socket;
            // the original moves into the writer thread below.
            let reader = stream.try_clone().ok();
            let (tx, rx) = bounded::<Arc<[u8]>>(self.cfg.queue_capacity);
            let max_coalesce = self.cfg.max_coalesce;
            let writer = std::thread::spawn(move || {
                let coalesce = crate::obs::tcp().coalesce_batch;
                let mut stream = stream;
                let mut bufs: Vec<Arc<[u8]>> = Vec::with_capacity(max_coalesce);
                while let Ok(first) = rx.recv() {
                    // Fold whatever backlog has accumulated into one
                    // vectored write.
                    bufs.clear();
                    bufs.push(first);
                    while bufs.len() < max_coalesce {
                        match rx.try_recv() {
                            Ok(buf) => bufs.push(buf),
                            Err(_) => break,
                        }
                    }
                    coalesce.record(bufs.len() as u64);
                    if write_coalesced(&mut stream, &bufs).is_err() {
                        break;
                    }
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
            let id = self.next_conn_id;
            self.next_conn_id += 1;
            if let Some(hello) = &self.hello {
                // Fresh bounded channel, capacity > 0: this cannot fail.
                let _ = tx.try_send(Arc::clone(hello));
            }
            self.conns.push(Conn {
                id,
                tx,
                writer,
                reader,
                registered: false,
                upstream: UpstreamParser::new(),
            });
            m.accepted.inc();
        }
        m.connections.set(self.conns.len() as i64);
        self.conns.len()
    }

    /// Waits until at least `n` clients are connected, sleeping between
    /// accept polls. Returns `false` promptly at the deadline — the final
    /// sleep is clamped to the time remaining, so a timeout overshoots by
    /// at most one poll, never a full poll interval. Call before starting
    /// a run so no client misses the first slots.
    pub fn wait_for_clients(&mut self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.poll_accept() >= n {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(1)));
        }
    }

    /// Severs every live connection at once — send channels close, each
    /// writer drains its backlog and hangs up — while the listener keeps
    /// accepting. From the fleet's side this is exactly a broker crash:
    /// every socket dies mid-stream and reconnect backoff kicks in. (The
    /// listener standing back up instantly models a restarted broker
    /// rebinding its well-known port; keeping the socket avoids fighting
    /// TIME_WAIT for the same port inside one test process.) Returns how
    /// many connections were severed.
    pub fn disconnect_all(&mut self) -> usize {
        let severed = self.conns.len();
        for conn in self.conns.drain(..) {
            Self::retire(&self.req_poll, &mut self.graveyard, conn);
        }
        crate::obs::tcp().connections.set(0);
        severed
    }

    /// Fans one encoded wire frame out to every connection.
    fn fan_out(&mut self, wire: &Arc<[u8]>, stats: &mut DeliveryStats) {
        let m = crate::obs::tcp();
        let mut i = 0;
        while i < self.conns.len() {
            // Backlog sampled before the enqueue so max_queue reports the
            // peak including the frame in flight.
            let backlog = self.conns[i].tx.len();
            m.writer_backlog.record(backlog as u64);
            match self.conns[i].tx.try_send(Arc::clone(wire)) {
                Ok(()) => {
                    stats.delivered += 1;
                    stats.bytes += wire.len() as u64;
                    stats.max_queue = stats.max_queue.max(backlog + 1);
                    i += 1;
                }
                Err(TrySendError::Full(_)) => match self.cfg.backpressure {
                    Backpressure::DropNewest => {
                        stats.dropped += 1;
                        stats.max_queue = stats.max_queue.max(backlog);
                        i += 1;
                    }
                    Backpressure::Disconnect | Backpressure::Block => {
                        // Evict in place: closing the channel lets the
                        // writer drain what is queued, then shut down.
                        stats.disconnected += 1;
                        event(EventKind::Disconnect, i as u64, 1);
                        let conn = self.conns.swap_remove(i);
                        Self::retire(&self.req_poll, &mut self.graveyard, conn);
                    }
                },
                Err(TrySendError::Disconnected(_)) => {
                    // Writer exited (peer closed or write error).
                    stats.disconnected += 1;
                    event(EventKind::Disconnect, i as u64, 0);
                    let conn = self.conns.swap_remove(i);
                    Self::retire(&self.req_poll, &mut self.graveyard, conn);
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats {
        self.poll_accept();
        let mut stats = DeliveryStats::default();
        self.channel_frames.get(frame.channel).inc();
        if self.faults.active() {
            let seq = frame.seq;
            let mut out: Vec<InjectedFrame> = Vec::new();
            match self.faults.injector_mut(frame.channel) {
                Some(inj) => {
                    // Per-client kills first: a killed connection misses
                    // even this slot's frame, like a receiver whose link
                    // just died. Evaluated against the frame's channel plan
                    // (the same client on the same seq evicts once even
                    // when several channels agree — the first frame wins).
                    let mut i = 0;
                    while i < self.conns.len() {
                        if inj.plan().kills_client(seq, self.conns[i].id) {
                            inj.record_kill(seq, self.conns[i].id);
                            stats.disconnected += 1;
                            event(EventKind::Disconnect, self.conns[i].id, 1);
                            let conn = self.conns.swap_remove(i);
                            Self::retire(&self.req_poll, &mut self.graveyard, conn);
                        } else {
                            i += 1;
                        }
                    }
                    // Channel faults next: erase, corrupt, delay/reorder.
                    inj.step(frame, &mut out);
                }
                // This channel runs clean under the installed plans.
                None => out.push(InjectedFrame {
                    frame,
                    corrupt: None,
                }),
            }
            if !self.conns.is_empty() {
                for injected in out {
                    let wire = match injected.corrupt {
                        Some(entropy) => encode_corrupted(&injected.frame, entropy),
                        None => injected.frame.encode_shared(),
                    };
                    self.fan_out(&wire, &mut stats);
                }
            }
        } else {
            if self.conns.is_empty() {
                return stats;
            }
            // Encode once per slot; every connection's writer shares the
            // bytes.
            let wire = frame.encode_shared();
            self.fan_out(&wire, &mut stats);
        }
        let m = crate::obs::tcp();
        m.bytes.add(stats.bytes);
        m.frames_dropped.add(stats.dropped);
        m.disconnects.add(stats.disconnected);
        m.connections.set(self.conns.len() as i64);
        stats
    }

    fn active_clients(&self) -> usize {
        self.conns.len()
    }

    fn take_requests(&mut self, out: &mut Vec<PullRequest>) {
        self.poll_accept();
        if self.req_poll.is_none() {
            self.req_poll = Poll::new().ok();
        }
        let Self {
            req_poll,
            req_events,
            req_scratch,
            conns,
            ..
        } = self;
        let Some(poll) = req_poll.as_mut() else {
            return;
        };
        // Register any connection not yet watched. Tokens are connection
        // ids (stable across `swap_remove`), not vector indices.
        for conn in conns.iter_mut() {
            if !conn.registered {
                if let Some(reader) = conn.reader.as_ref() {
                    match poll.register(reader, Token(conn.id as usize), Interest::READABLE) {
                        Ok(()) => conn.registered = true,
                        Err(_) => conn.reader = None,
                    }
                }
            }
        }
        // One poll pass, one read per ready connection. The reader clones
        // are *blocking* sockets, but a single read on a level-triggered
        // readable socket never blocks; any bytes left over re-signal on
        // the next call (the engine drains every tick).
        if !matches!(poll.poll(req_events, Some(Duration::ZERO)), Ok(n) if n > 0) {
            return;
        }
        for ev in req_events.iter() {
            let id = ev.token().0 as u64;
            let Some(conn) = conns.iter_mut().find(|c| c.id == id) else {
                continue;
            };
            let Some(reader) = conn.reader.as_ref() else {
                continue;
            };
            let mut r: &TcpStream = reader;
            match r.read(req_scratch) {
                Ok(n) if n > 0 => conn.upstream.feed(&req_scratch[..n], out),
                Ok(_) => {
                    // EOF: the peer shut down its write side. Stop
                    // watching; the writer thread handles the hangup.
                    let _ = poll.deregister(reader);
                    conn.registered = false;
                    conn.reader = None;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => {
                    let _ = poll.deregister(reader);
                    conn.registered = false;
                    conn.reader = None;
                }
            }
        }
    }

    fn set_hello(&mut self, hello: Option<Frame>) {
        self.hello = hello.map(|f| f.encode_shared());
    }

    fn finish(&mut self) -> DeliveryStats {
        for conn in self.conns.drain(..) {
            Self::retire(&self.req_poll, &mut self.graveyard, conn);
        }
        for writer in self.graveyard.drain(..) {
            let _ = writer.join();
        }
        if let Some(accept) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept so the thread observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
        crate::obs::tcp().connections.set(0);
        // TCP broadcasts are unbatched: all stats were reported per slot.
        DeliveryStats::default()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Client-side frame reader: connects and decodes the length-prefixed feed.
///
/// Frames whose CRC fails verification are *discarded and counted*, never
/// surfaced: the receiver treats a damaged frame exactly like an erased
/// one and recovers the page at its next periodic broadcast.
pub struct TcpFrameReader {
    stream: TcpStream,
    corrupt: u64,
}

impl TcpFrameReader {
    /// Connects to a broadcast server.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an already-connected socket (e.g. one that has been writing
    /// raw upstream bytes and now wants the framed downstream view).
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream, corrupt: 0 })
    }

    /// Frames discarded so far because their CRC failed.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt
    }

    /// Writes one upstream pull-request record to the broker: "air `page`
    /// for `user`, who can receive from slot `min_seq` on". Fire-and-
    /// forget — the broker never replies on the backchannel; the answer,
    /// if any, is a `Slot::Pull` frame on the broadcast itself.
    pub fn send_request(&mut self, user: u32, page: PageId, min_seq: u64) -> io::Result<()> {
        self.stream.write_all(&encode_request(user, page, min_seq))
    }

    /// Reads the next intact frame, silently skipping CRC failures;
    /// `Ok(None)` on a clean end of stream.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        loop {
            let mut len_buf = [0u8; 4];
            if let Err(e) = self.stream.read_exact(&mut len_buf) {
                return match e.kind() {
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset => Ok(None),
                    _ => Err(e),
                };
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if len > MAX_FRAME_LEN {
                // The prefix is unauthenticated: never let it size an
                // allocation. A bound violation means a hostile or
                // desynchronized peer, not line noise — hang up.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds bound {MAX_FRAME_LEN}"),
                ));
            }
            let mut body = vec![0u8; len];
            match self.stream.read_exact(&mut body) {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    // Truncated mid-frame (server shut down): treat as EOF.
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
            match Frame::decode(&body) {
                Ok(frame) => return Ok(Some(frame)),
                Err(FrameError::Corrupt { .. }) => {
                    // Damaged in flight. Framing is intact (the length
                    // prefix is outside the faultable body), so skip this
                    // frame and keep reading; the sequence gap it leaves
                    // is the client's recovery signal.
                    self.corrupt += 1;
                    crate::obs::recovery().frames_corrupt.inc();
                    continue;
                }
                Err(FrameError::Truncated) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed frame",
                    ));
                }
            }
        }
    }
}

/// Reconnect behavior for a [`TcpClientFeed`]: capped exponential backoff
/// with seeded jitter, bounded attempts per outage.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Connect attempts per outage before the feed gives up (end of feed).
    pub max_attempts: u32,
    /// Backoff before the second attempt (doubles each retry).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed: the same seed replays the same backoff schedule.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            seed: 0,
        }
    }
}

/// The backoff before retry `attempt` (1-based; attempt 0 is immediate and
/// never calls this): `base_delay * 2^(attempt-1)` capped at `max_delay`,
/// then jittered into `[50%, 100%]` of that by one draw from `rng`. Seeded
/// jitter keeps schedules replayable and desynchronized across a fleet;
/// the cap holds *after* jitter because jitter only ever shrinks the delay.
pub fn backoff_delay(policy: &ReconnectPolicy, attempt: u32, rng: &mut SplitMix) -> Duration {
    debug_assert!(attempt > 0, "attempt 0 connects immediately");
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(policy.max_delay);
    exp.mul_f64(0.5 + 0.5 * rng.next_f64())
}

/// A self-healing client feed: wraps [`TcpFrameReader`] and, when the
/// connection dies mid-broadcast, reconnects with capped exponential
/// backoff + jitter and resumes from whatever slot the server broadcasts
/// next. Frames carry absolute slot sequence numbers, so the consumer
/// resynchronizes on the first post-reconnect frame and sees the outage as
/// an ordinary (if long) sequence gap — recovered page by page as the
/// periodic program comes around.
pub struct TcpClientFeed {
    addr: SocketAddr,
    policy: ReconnectPolicy,
    /// Feed id for journal events (typically the client id).
    id: u64,
    rng: SplitMix,
    reader: Option<TcpFrameReader>,
    reconnects: u64,
    corrupt: u64,
}

impl TcpClientFeed {
    /// Connects to a broadcast server (initial connect retries under the
    /// same backoff policy as reconnects, but is not counted as one).
    pub fn connect(addr: SocketAddr, policy: ReconnectPolicy, id: u64) -> io::Result<Self> {
        let seed = policy.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut feed = Self {
            addr,
            policy,
            id,
            rng: SplitMix::new(seed),
            reader: None,
            reconnects: 0,
            corrupt: 0,
        };
        feed.reader = feed.attempt_connect();
        if feed.reader.is_some() {
            Ok(feed)
        } else {
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "broadcast server unreachable",
            ))
        }
    }

    /// Completed reconnects (outages survived) so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// CRC-failed frames discarded so far, across all connections.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt + self.reader.as_ref().map_or(0, |r| r.corrupt_frames())
    }

    /// Connect with backoff; `None` when attempts are exhausted.
    fn attempt_connect(&mut self) -> Option<TcpFrameReader> {
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(&self.policy, attempt, &mut self.rng));
            }
            if let Ok(reader) = TcpFrameReader::connect(self.addr) {
                return Some(reader);
            }
        }
        None
    }

    /// Reads the next intact frame, transparently reconnecting on
    /// connection loss; `None` when the feed is over (the server is gone
    /// and backoff attempts are exhausted).
    pub fn recv(&mut self) -> Option<Frame> {
        loop {
            let reader = self.reader.as_mut()?;
            match reader.recv() {
                Ok(Some(frame)) => return Some(frame),
                Ok(None) | Err(_) => {
                    // Connection lost (killed, reset, or server done):
                    // bank its corrupt count and try to rejoin.
                    self.corrupt += reader.corrupt_frames();
                    self.reader = self.attempt_connect();
                    if self.reader.is_some() {
                        self.reconnects += 1;
                        crate::obs::recovery().reconnects.inc();
                        event(EventKind::Reconnect, self.id, self.reconnects);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PagePayloads;
    use bdisk_sched::{PageId, Slot};

    #[test]
    fn loopback_round_trip_carries_payloads() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let addr = transport.local_addr();
        let reader = std::thread::spawn(move || {
            let mut reader = TcpFrameReader::connect(addr).unwrap();
            let mut frames = Vec::new();
            while let Some(frame) = reader.recv().unwrap() {
                frames.push(frame);
            }
            frames
        });
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(10, 16);
        for seq in 0..10u64 {
            let stats = transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32))));
            assert_eq!(stats.delivered, 1);
            assert_eq!(stats.dropped, 0);
            assert!(stats.bytes > 0);
        }
        transport.finish();
        let frames = reader.join().unwrap();
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.slot, Slot::Page(PageId(i as u32)));
            let expect = payloads.frame(i as u64, Slot::Page(PageId(i as u32)));
            assert_eq!(f.payload, expect.payload, "payload survived the wire");
        }
    }

    #[test]
    fn closed_peer_detected() {
        let mut transport = TcpTransport::bind(TcpTransportConfig {
            queue_capacity: 1,
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        let reader = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        drop(reader);
        // Keep broadcasting until the write error propagates back.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut disconnected = 0;
        while disconnected == 0 && Instant::now() < deadline {
            disconnected = transport
                .broadcast(Frame::bare(0, Slot::Empty))
                .disconnected;
        }
        assert_eq!(disconnected, 1);
        assert_eq!(transport.active_clients(), 0);
    }

    /// A writer that accepts at most 3 bytes per call, to exercise the
    /// partial-write resume path of the coalescer.
    struct Trickle(Vec<u8>);

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn wait_for_clients_times_out_promptly() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let timeout = Duration::from_millis(100);
        let start = Instant::now();
        assert!(!transport.wait_for_clients(1, timeout));
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "returned before the deadline");
        // The final sleep is clamped to the time remaining, so the return
        // lands within scheduling noise of the deadline — not a full poll
        // interval (or worse) past it.
        assert!(
            elapsed < timeout + Duration::from_millis(100),
            "timeout overshot: {elapsed:?}"
        );
    }

    #[test]
    fn corrupt_frames_are_skipped_and_counted() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let addr = transport.local_addr();
        // Corrupt every frame at seq 1 (deterministically, via a plan that
        // corrupts everything and erases/delays nothing).
        transport.set_fault_plan(FaultPlan {
            seed: 3,
            corruption: 1.0,
            ..FaultPlan::none()
        });
        let reader = std::thread::spawn(move || {
            let mut reader = TcpFrameReader::connect(addr).unwrap();
            let mut frames = Vec::new();
            while let Some(frame) = reader.recv().unwrap() {
                frames.push(frame);
            }
            (frames, reader.corrupt_frames())
        });
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(4, 32);
        for seq in 0..6u64 {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 4))));
        }
        transport.finish();
        let (frames, corrupt) = reader.join().unwrap();
        assert!(frames.is_empty(), "every frame was damaged: {frames:?}");
        assert_eq!(corrupt, 6, "all six damaged frames counted");
    }

    /// The lifecycle pin: dropping the transport joins the accept thread
    /// and every per-connection writer thread — including one blocked in a
    /// socket write against a peer that stopped reading — promptly, not
    /// eventually. The stalled writer is released by the bounded
    /// `write_timeout`, so shutdown latency is `O(write_timeout)`, never
    /// unbounded.
    #[test]
    fn shutdown_joins_writer_and_accept_threads_promptly() {
        let mut transport = TcpTransport::bind(TcpTransportConfig {
            queue_capacity: 8,
            write_timeout: Some(Duration::from_millis(200)),
            ..TcpTransportConfig::default()
        })
        .unwrap();
        let addr = transport.local_addr();
        // A connected client that never reads: the kernel socket buffers
        // fill and the connection's writer thread blocks mid-write.
        let stalled = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        let payloads = PagePayloads::generate(4, 16 * 1024);
        for seq in 0..512u64 {
            transport.broadcast(payloads.frame(seq, Slot::Page(PageId(seq as u32 % 4))));
        }
        let start = Instant::now();
        // finish() (via drop) must close the send channels, wake the
        // accept loop, and join every thread.
        drop(transport);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "shutdown joins took {elapsed:?} (write_timeout is 200ms)"
        );
        drop(stalled);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        // A hostile peer (here: a raw socket posing as the server) sends a
        // forged length prefix claiming a multi-gigabyte frame. The reader
        // must refuse it outright instead of trusting the unauthenticated
        // prefix as an allocation size.
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let evil = (u32::MAX - 7).to_le_bytes();
            stream.write_all(&evil).unwrap();
            // Keep the socket open: the reader must fail on the prefix
            // alone, not on a downstream EOF.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        let err = reader.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("exceeds bound"),
            "unexpected error: {err}"
        );
        server.join().unwrap();

        // A length exactly at the bound is still read (and then rejected
        // only by frame decoding, not by the allocation guard).
        assert!(MAX_FRAME_LEN < u32::MAX as usize);
    }

    #[test]
    fn backoff_is_capped_and_deterministic_per_seed() {
        let policy = ReconnectPolicy {
            max_attempts: 32,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            seed: 0xB0FF,
        };
        // Determinism: the same seed replays the same schedule exactly.
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = SplitMix::new(seed);
            (1..32)
                .map(|a| backoff_delay(&policy, a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(
            schedule(7),
            schedule(8),
            "different seeds must jitter apart"
        );

        // The cap holds for every attempt — including ones whose shift
        // would overflow without the `.min(16)` clamp — and jitter keeps
        // each delay within [50%, 100%] of the capped exponential.
        let mut rng = SplitMix::new(policy.seed);
        for attempt in 1..64u32 {
            let d = backoff_delay(&policy, attempt, &mut rng);
            assert!(d <= policy.max_delay, "attempt {attempt}: {d:?} over cap");
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(policy.max_delay);
            assert!(
                d >= exp.mul_f64(0.5),
                "attempt {attempt}: {d:?} under floor"
            );
        }
    }

    #[test]
    fn upstream_requests_reach_take_requests() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let addr = transport.local_addr();
        let mut reader = TcpFrameReader::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        reader.send_request(3, PageId(9), 50).unwrap();
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.is_empty() && Instant::now() < deadline {
            transport.take_requests(&mut out);
        }
        assert_eq!(
            out,
            vec![PullRequest {
                user: 3,
                page: PageId(9),
                min_seq: 50
            }]
        );
        // The downstream direction is unaffected: broadcast still flows.
        let payloads = PagePayloads::generate(2, 16);
        let stats = transport.broadcast(payloads.frame(0, Slot::Page(PageId(1))));
        assert_eq!(stats.delivered, 1);
        transport.finish();
        let frame = reader.recv().unwrap().expect("frame delivered");
        assert_eq!(frame.slot, Slot::Page(PageId(1)));
    }

    /// Garbage upstream bytes on the threaded path: rejected by the
    /// parser, never a disconnect — mirror of the evented pin.
    #[test]
    fn garbage_upstream_bytes_never_kill_the_connection() {
        let mut transport = TcpTransport::bind(TcpTransportConfig::default()).unwrap();
        let addr = transport.local_addr();
        let mut legacy = TcpStream::connect(addr).unwrap();
        assert!(transport.wait_for_clients(1, Duration::from_secs(5)));
        legacy.write_all(&[0xAB; 512]).unwrap();
        // Then a valid record after the noise: resync must find it.
        legacy
            .write_all(&crate::upstream::encode_request(1, PageId(2), 3))
            .unwrap();
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.is_empty() && Instant::now() < deadline {
            transport.take_requests(&mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].page, PageId(2));
        assert_eq!(transport.active_clients(), 1, "garbage killed the conn");
        drop(legacy);
    }

    #[test]
    fn coalesced_write_survives_partial_writes() {
        let bufs: Vec<Arc<[u8]>> = vec![
            Arc::from(&b"hello "[..]),
            Arc::from(&b""[..]),
            Arc::from(&b"broadcast "[..]),
            Arc::from(&b"world"[..]),
        ];
        let mut sink = Trickle(Vec::new());
        write_coalesced(&mut sink, &bufs).unwrap();
        assert_eq!(sink.0, b"hello broadcast world");
    }
}
