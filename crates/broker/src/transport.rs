//! The wire model shared by all transports: frames, backpressure policy,
//! and the [`Transport`] trait the engine drives.

use bdisk_sched::{PageId, Slot};

/// Page-id sentinel marking an empty (padding) slot on the wire.
pub const EMPTY_SENTINEL: u32 = u32::MAX;

/// Bytes of frame header following the length prefix: 8 (seq) + 4 (page).
pub const HEADER_LEN: usize = 12;

/// One broadcast transmission: the engine's monotone slot counter plus the
/// slot content. Slot `seq` covers broadcast-unit time `[seq, seq+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Absolute slot sequence number since the engine started.
    pub seq: u64,
    /// The page broadcast in this slot (or padding).
    pub slot: Slot,
}

impl Frame {
    /// Serializes the frame as `[u32 len][u64 seq][u32 page][payload]`, all
    /// little-endian. `len` counts every byte after itself; `page` is
    /// [`EMPTY_SENTINEL`] for padding slots. The payload is `payload_len`
    /// filler bytes standing in for page content, so TCP clients experience
    /// realistic per-page transfer sizes.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        let len = (HEADER_LEN + payload_len) as u32;
        let page = match self.slot {
            Slot::Page(p) => p.0,
            Slot::Empty => EMPTY_SENTINEL,
        };
        let mut buf = Vec::with_capacity(4 + HEADER_LEN + payload_len);
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&page.to_le_bytes());
        buf.resize(4 + HEADER_LEN + payload_len, self.seq as u8);
        buf
    }

    /// Parses a frame body (everything after the length prefix). Returns
    /// `None` if the body is shorter than the header.
    pub fn decode(body: &[u8]) -> Option<Frame> {
        if body.len() < HEADER_LEN {
            return None;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
        let page = u32::from_le_bytes(body[8..12].try_into().unwrap());
        let slot = if page == EMPTY_SENTINEL {
            Slot::Empty
        } else {
            Slot::Page(PageId(page))
        };
        Some(Frame { seq, slot })
    }
}

/// What to do when a client's send buffer is full — i.e. the client is
/// consuming slower than the broadcast rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Drop the new frame for that client; the broadcast never stalls.
    /// This is what a real broadcast medium does — a receiver that is not
    /// listening simply misses the page and waits a period for it.
    DropNewest,
    /// Disconnect the slow client outright.
    Disconnect,
    /// Block the broadcast until the client catches up (lossless). Only
    /// meaningful for in-process experiments — it gives every client a
    /// perfect feed, which is what exact simulator parity requires.
    Block,
}

impl std::str::FromStr for Backpressure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "drop" | "drop-newest" | "dropnewest" => Ok(Backpressure::DropNewest),
            "disconnect" => Ok(Backpressure::Disconnect),
            "block" => Ok(Backpressure::Block),
            other => Err(format!(
                "unknown backpressure policy '{other}' (expected drop, disconnect, or block)"
            )),
        }
    }
}

/// Per-broadcast delivery accounting, accumulated by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Frames enqueued to clients.
    pub delivered: u64,
    /// Frames dropped because a client's buffer was full.
    pub dropped: u64,
    /// Clients disconnected during this broadcast (slow or gone).
    pub disconnected: u64,
    /// Largest per-client backlog (queued frames) observed after sending.
    pub max_queue: usize,
}

impl DeliveryStats {
    /// Accumulates another sample (sums counters, maxes the backlog).
    pub fn absorb(&mut self, other: DeliveryStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.disconnected += other.disconnected;
        self.max_queue = self.max_queue.max(other.max_queue);
    }
}

/// A broadcast medium: fans one frame out to every connected client.
///
/// Implementations own the client registry; the engine only sees aggregate
/// delivery stats and the live client count.
pub trait Transport: Send {
    /// Sends `frame` to every connected client, applying the transport's
    /// backpressure policy to slow consumers.
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats;

    /// Number of currently connected clients.
    fn active_clients(&self) -> usize;

    /// Flushes and releases transport resources (closes client feeds). The
    /// engine calls this once after the last slot.
    fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let f = Frame {
            seq: 123_456_789,
            slot: Slot::Page(PageId(42)),
        };
        let bytes = f.encode(16);
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(Frame::decode(&bytes[4..]), Some(f));
    }

    #[test]
    fn empty_slot_uses_sentinel() {
        let f = Frame {
            seq: 7,
            slot: Slot::Empty,
        };
        let bytes = f.encode(0);
        assert_eq!(bytes.len(), 4 + HEADER_LEN);
        assert_eq!(Frame::decode(&bytes[4..]), Some(f));
    }

    #[test]
    fn truncated_body_rejected() {
        assert_eq!(Frame::decode(&[0u8; 5]), None);
    }

    #[test]
    fn backpressure_parses() {
        assert_eq!("drop".parse::<Backpressure>(), Ok(Backpressure::DropNewest));
        assert_eq!(
            "Disconnect".parse::<Backpressure>(),
            Ok(Backpressure::Disconnect)
        );
        assert_eq!("BLOCK".parse::<Backpressure>(), Ok(Backpressure::Block));
        assert!("nope".parse::<Backpressure>().is_err());
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = DeliveryStats {
            delivered: 3,
            dropped: 1,
            disconnected: 0,
            max_queue: 5,
        };
        a.absorb(DeliveryStats {
            delivered: 2,
            dropped: 0,
            disconnected: 1,
            max_queue: 2,
        });
        assert_eq!(a.delivered, 5);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.disconnected, 1);
        assert_eq!(a.max_queue, 5);
    }
}
