//! The wire model shared by all transports: frames, page payloads,
//! backpressure policy, and the [`Transport`] trait the engine drives.

use std::sync::Arc;
use std::sync::OnceLock;

use bdisk_sched::{PageId, RepairId, Slot};

/// Page-id sentinel marking an empty (padding) slot on the wire.
pub const EMPTY_SENTINEL: u32 = u32::MAX;

/// High bit of the page field marking a coded repair slot: the remaining
/// 31 bits carry the [`RepairId`]. Checked *after* [`EMPTY_SENTINEL`]
/// (which also has the high bit set), so page ids are limited to
/// `0..2^31` and repair ids to `0..2^31 - 1` on the wire. On wire v3
/// frames, repair ids are further limited to `0..2^31 - 2`: the value
/// `0x7FFF_FFFE` under the flag would collide with [`FENCE_SENTINEL`].
pub const REPAIR_FLAG: u32 = 0x8000_0000;

/// Page-id sentinel marking an epoch-fence frame (wire v3 only). v2
/// decoders never interpret this value — without [`CHANNEL_V3_FLAG`] set
/// it still reads as `Repair(0x7FFF_FFFE)`, preserving the pinned v2
/// repair-id space.
pub const FENCE_SENTINEL: u32 = 0xFFFF_FFFE;

/// High bit of the channel field marking a wire-v3 frame, whose header
/// carries a 4-byte plan epoch after the CRC. Real channel ids are
/// limited to `0..2^15` on the wire.
pub const CHANNEL_V3_FLAG: u16 = 0x8000;

/// Channel-field flag marking an on-demand pull airing ([`Slot::Pull`]):
/// the page field carries the page id unchanged, so a pull frame is
/// byte-identical to the equivalent push frame except for this one
/// (CRC-bound) bit. Composes with [`CHANNEL_V3_FLAG`]; with both flags
/// reserved, real channel ids are limited to `0..2^14` on the wire.
/// Push-only runs never set this bit, keeping them byte-identical to
/// pre-pull brokers.
pub const CHANNEL_PULL_FLAG: u16 = 0x4000;

/// Bytes of frame header following the length prefix:
/// 8 (seq) + 2 (channel) + 4 (page) + 4 (crc). Wire format v2: the frame
/// carries the broadcast channel it was aired on.
pub const HEADER_LEN: usize = 18;

/// Bytes of a wire-v3 frame header following the length prefix: the v2
/// header plus 4 (plan epoch). A frame is encoded as v3 exactly when it
/// must be — nonzero epoch or an epoch-fence slot — so epoch-0 runs stay
/// byte-identical to v2.
pub const HEADER_LEN_V3: usize = 22;

/// Bytes of the length prefix itself.
pub const LEN_PREFIX: usize = 4;

/// Byte offset of the CRC32 field within a frame body (after
/// seq + channel + page).
pub const CRC_OFFSET: usize = 14;

/// Why a frame body failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The body is shorter than the fixed header.
    Truncated,
    /// The CRC32 over seq + channel + page + payload does not match the header's.
    /// The frame was damaged in flight; receivers discard it and recover
    /// the page at its next periodic broadcast.
    Corrupt {
        /// CRC carried in the frame header.
        expected: u32,
        /// CRC recomputed over the received bytes.
        found: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame body shorter than header"),
            FrameError::Corrupt { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch (header {expected:#010x}, computed {found:#010x})"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn empty_payload() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..])))
}

/// One broadcast transmission: the engine's monotone slot counter, the slot
/// content, and the page payload bytes. Slot `seq` covers broadcast-unit
/// time `[seq, seq+1)`.
///
/// The payload is an `Arc<[u8]>` shared by every subscriber and every
/// transport queue entry: cloning a `Frame` bumps a refcount instead of
/// copying page bytes, which is what makes server-side fan-out O(1) per
/// subscriber in payload size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Absolute slot sequence number since the engine started.
    pub seq: u64,
    /// Broadcast channel this frame was aired on (0 on a single-channel
    /// plan).
    pub channel: u16,
    /// The page broadcast in this slot (or padding).
    pub slot: Slot,
    /// Plan epoch this frame belongs to. 0 for the initial plan — such
    /// frames encode as wire v2, byte-identical to pre-epoch brokers.
    pub epoch: u32,
    /// Shared page content (empty for padding slots).
    pub payload: Arc<[u8]>,
}

impl Frame {
    /// A payload-less frame (metadata only) on channel 0. Padding slots and
    /// unit tests use this; the shared empty buffer means no per-frame
    /// allocation.
    pub fn bare(seq: u64, slot: Slot) -> Self {
        Frame::bare_on(seq, 0, slot)
    }

    /// A payload-less frame on an explicit channel (epoch 0, wire v2).
    pub fn bare_on(seq: u64, channel: u16, slot: Slot) -> Self {
        Frame {
            seq,
            channel,
            slot,
            epoch: 0,
            payload: empty_payload(),
        }
    }

    /// An epoch-fence marker frame on `channel`: announces that plan
    /// `epoch`'s slot clock starts at absolute seq `base`. The epoch rides
    /// in the (CRC-bound) v3 header; the base rides in an 8-byte LE
    /// payload. Fences are out-of-band — they share the announcing tick's
    /// seq and never occupy a program slot.
    pub fn fence(seq: u64, channel: u16, epoch: u32, base: u64) -> Self {
        Frame {
            seq,
            channel,
            slot: Slot::EpochFence,
            epoch,
            payload: Arc::from(&base.to_le_bytes()[..]),
        }
    }

    /// Tags the frame with a plan epoch (builder style). Nonzero epochs
    /// encode as wire v3.
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// The slot-clock base carried by an epoch-fence frame, or `None`
    /// when this is not a fence or its payload is malformed.
    pub fn fence_base(&self) -> Option<u64> {
        if self.slot != Slot::EpochFence {
            return None;
        }
        let bytes: [u8; 8] = self.payload.as_ref().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// True when this frame must carry the v3 header: it belongs to a
    /// nonzero epoch, or it is an epoch fence (meaningful even when
    /// announcing epoch 0 at a restart).
    fn is_v3(&self) -> bool {
        self.epoch != 0 || self.slot == Slot::EpochFence
    }

    /// Header bytes this frame encodes with ([`HEADER_LEN`] or
    /// [`HEADER_LEN_V3`]).
    pub fn header_len(&self) -> usize {
        if self.is_v3() {
            HEADER_LEN_V3
        } else {
            HEADER_LEN
        }
    }

    /// Total bytes this frame occupies on the wire (length prefix, header,
    /// payload).
    pub fn wire_len(&self) -> usize {
        LEN_PREFIX + self.header_len() + self.payload.len()
    }

    /// Serializes the frame as `[u32 len][u64 seq][u16 chan][u32 page]
    /// [u32 crc][payload]`, all little-endian (wire format v2). `len`
    /// counts every byte after itself; `page` is [`EMPTY_SENTINEL`] for
    /// padding slots; `crc` is CRC-32/ISO-HDLC over seq + channel + page +
    /// payload, so any single-bit damage to the body (outside the length
    /// prefix) is detected on decode.
    ///
    /// Frames in a nonzero epoch (and fence frames) encode as wire v3:
    /// the channel field carries [`CHANNEL_V3_FLAG`] and a 4-byte epoch
    /// follows the CRC — `[u32 len][u64 seq][u16 chan|V3][u32 page]
    /// [u32 crc][u32 epoch][payload]`. The CRC computation is version
    /// blind (everything but the CRC field itself), so the epoch bytes
    /// are CRC-bound with no format branch in the checksum.
    pub fn encode(&self) -> Vec<u8> {
        let v3 = self.is_v3();
        let len = (self.header_len() + self.payload.len()) as u32;
        let page = match self.slot {
            Slot::Page(p) => p.0,
            Slot::Empty => EMPTY_SENTINEL,
            Slot::Repair(r) => {
                debug_assert!(
                    !v3 || r.0 < FENCE_SENTINEL & !REPAIR_FLAG,
                    "repair id {} collides with the v3 fence sentinel",
                    r.0
                );
                REPAIR_FLAG | r.0
            }
            Slot::EpochFence => FENCE_SENTINEL,
            Slot::Pull(p) => {
                debug_assert!(
                    p.0 & REPAIR_FLAG == 0,
                    "page id {} overflows the 31-bit wire page space",
                    p.0
                );
                p.0
            }
        };
        debug_assert!(
            self.channel & (CHANNEL_V3_FLAG | CHANNEL_PULL_FLAG) == 0,
            "channel {} overflows the 14-bit wire channel space",
            self.channel
        );
        let mut chan = self.channel;
        if v3 {
            chan |= CHANNEL_V3_FLAG;
        }
        if matches!(self.slot, Slot::Pull(_)) {
            chan |= CHANNEL_PULL_FLAG;
        }
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&chan.to_le_bytes());
        buf.extend_from_slice(&page.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // crc placeholder
        if v3 {
            buf.extend_from_slice(&self.epoch.to_le_bytes());
        }
        buf.extend_from_slice(&self.payload);
        let crc = body_crc(&buf[LEN_PREFIX..]);
        buf[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4]
            .copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Serializes once into a shared buffer. The TCP transport encodes each
    /// slot exactly once with this and hands the same bytes to every
    /// connection's writer.
    pub fn encode_shared(&self) -> Arc<[u8]> {
        Arc::from(self.encode())
    }

    /// Parses and verifies a frame body (everything after the length
    /// prefix). Fails with [`FrameError::Truncated`] when the body is
    /// shorter than the header and [`FrameError::Corrupt`] when the CRC
    /// over seq + page + payload disagrees with the header's — any
    /// single-bit damage to the body is caught here. Bytes past the header
    /// become the frame's payload.
    ///
    /// The wire version is read off the channel field's high bit: v3
    /// bodies carry a 4-byte epoch after the CRC and may carry the
    /// [`FENCE_SENTINEL`] page value. v2 bodies decode with epoch 0 and
    /// never interpret the fence sentinel (it remains a legal v2 repair
    /// id).
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        if body.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let expected = u32::from_le_bytes(body[CRC_OFFSET..CRC_OFFSET + 4].try_into().unwrap());
        let found = body_crc(body);
        if found != expected {
            return Err(FrameError::Corrupt { expected, found });
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
        let chan_raw = u16::from_le_bytes(body[8..10].try_into().unwrap());
        let v3 = chan_raw & CHANNEL_V3_FLAG != 0;
        let pull = chan_raw & CHANNEL_PULL_FLAG != 0;
        let channel = chan_raw & !(CHANNEL_V3_FLAG | CHANNEL_PULL_FLAG);
        if v3 && body.len() < HEADER_LEN_V3 {
            return Err(FrameError::Truncated);
        }
        let header_len = if v3 { HEADER_LEN_V3 } else { HEADER_LEN };
        let epoch = if v3 {
            u32::from_le_bytes(body[HEADER_LEN..HEADER_LEN_V3].try_into().unwrap())
        } else {
            0
        };
        let page = u32::from_le_bytes(body[10..14].try_into().unwrap());
        let slot = if pull {
            // The pull flag overrides the page-field sentinel space: a
            // pull airing always carries a plain page id.
            Slot::Pull(PageId(page))
        } else if v3 && page == FENCE_SENTINEL {
            Slot::EpochFence
        } else if page == EMPTY_SENTINEL {
            Slot::Empty
        } else if page & REPAIR_FLAG != 0 {
            Slot::Repair(RepairId(page & !REPAIR_FLAG))
        } else {
            Slot::Page(PageId(page))
        };
        let payload = if body.len() > header_len {
            Arc::from(&body[header_len..])
        } else {
            empty_payload()
        };
        Ok(Frame {
            seq,
            channel,
            slot,
            epoch,
            payload,
        })
    }
}

/// CRC-32/ISO-HDLC over a frame body (seq + channel + page + payload),
/// skipping the CRC field itself (bytes `CRC_OFFSET..CRC_OFFSET + 4`).
fn body_crc(body: &[u8]) -> u32 {
    let mut state = crate::faults::crc32_init();
    state = crate::faults::crc32_update(state, &body[..CRC_OFFSET]);
    state = crate::faults::crc32_update(state, &body[HEADER_LEN..]);
    crate::faults::crc32_finish(state)
}

/// True when `body` (a frame body, after the length prefix) carries a CRC
/// consistent with its bytes. Lets transports check integrity without
/// materializing a [`Frame`].
pub fn body_crc_ok(body: &[u8]) -> bool {
    body.len() >= HEADER_LEN
        && body_crc(body)
            == u32::from_le_bytes(body[CRC_OFFSET..CRC_OFFSET + 4].try_into().unwrap())
}

/// Pre-built page payloads, one shared buffer per page.
///
/// The engine generates this table once at startup (`PageSize` bytes per
/// page, paper Table 2) and every frame of page `p` clones the same
/// `Arc<[u8]>` — page content is materialized exactly once per run, no
/// matter how many slots or subscribers it fans out to.
#[derive(Debug, Clone)]
pub struct PagePayloads {
    pages: Vec<Arc<[u8]>>,
    empty: Arc<[u8]>,
}

impl PagePayloads {
    /// Builds deterministic `page_size`-byte payloads for pages
    /// `0..num_pages`. Byte `i` of page `p` is `(p * 131 + i) mod 256`, so
    /// clients can verify content integrity without shipping real data.
    pub fn generate(num_pages: usize, page_size: usize) -> Self {
        let pages = (0..num_pages)
            .map(|p| {
                (0..page_size)
                    .map(|i| (p.wrapping_mul(131).wrapping_add(i)) as u8)
                    .collect::<Vec<u8>>()
                    .into()
            })
            .collect();
        Self {
            pages,
            empty: empty_payload(),
        }
    }

    /// Bytes per page payload.
    pub fn page_size(&self) -> usize {
        self.pages.first().map_or(0, |p| p.len())
    }

    /// The channel-0 frame for slot `seq` carrying `slot`, sharing the
    /// page's pre-built payload (empty for padding slots). Zero
    /// allocations.
    pub fn frame(&self, seq: u64, slot: Slot) -> Frame {
        self.frame_on(seq, 0, slot)
    }

    /// Like [`PagePayloads::frame`] but on an explicit channel.
    ///
    /// Repair slots get the empty payload here: the symbol's XOR payload
    /// comes from the engine's per-channel repair table (see
    /// `engine::RepairTables`), which this type knows nothing about.
    pub fn frame_on(&self, seq: u64, channel: u16, slot: Slot) -> Frame {
        let payload = match slot {
            // A pull airing carries the same shared payload as a push
            // airing of the page — only the channel-field flag differs.
            Slot::Page(p) | Slot::Pull(p) => Arc::clone(&self.pages[p.index()]),
            // EpochFence never comes from a program slot (fences carry
            // their base in a payload built by `Frame::fence`), but an
            // empty payload keeps the match total.
            Slot::Empty | Slot::Repair(_) | Slot::EpochFence => Arc::clone(&self.empty),
        };
        Frame {
            seq,
            channel,
            slot,
            epoch: 0,
            payload,
        }
    }

    /// The payload table itself, indexed by page id (the repair-symbol
    /// encoder XORs these).
    pub fn page(&self, page: PageId) -> &Arc<[u8]> {
        &self.pages[page.index()]
    }
}

/// A client→server pull request: the client missed `page` in its cache
/// and asks the broker to air it on demand instead of waiting out the
/// periodic schedule. Parsed from the upstream byte stream by
/// [`crate::upstream::UpstreamParser`] and queued by the slot arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullRequest {
    /// Client-chosen user id, for per-user fairness accounting.
    pub user: u32,
    /// The page being requested.
    pub page: PageId,
    /// The earliest slot seq at which the requester can receive the page
    /// (its current frame seq, raised by any retune penalty in flight).
    /// The arbiter never services the request before this instant, and
    /// drops it when the periodic schedule already aired the page at or
    /// after it.
    pub min_seq: u64,
}

/// What to do when a client's send buffer is full — i.e. the client is
/// consuming slower than the broadcast rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Drop the new frame for that client; the broadcast never stalls.
    /// This is what a real broadcast medium does — a receiver that is not
    /// listening simply misses the page and waits a period for it.
    DropNewest,
    /// Disconnect the slow client outright.
    Disconnect,
    /// Block the broadcast until the client catches up (lossless). Only
    /// meaningful for in-process experiments — it gives every client a
    /// perfect feed, which is what exact simulator parity requires.
    Block,
}

impl std::str::FromStr for Backpressure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "drop" | "drop-newest" | "dropnewest" => Ok(Backpressure::DropNewest),
            "disconnect" => Ok(Backpressure::Disconnect),
            "block" => Ok(Backpressure::Block),
            other => Err(format!(
                "unknown backpressure policy '{other}' (expected drop, disconnect, or block)"
            )),
        }
    }
}

/// Per-broadcast delivery accounting, accumulated by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Frames enqueued to clients.
    pub delivered: u64,
    /// Frames dropped because a client's buffer was full.
    pub dropped: u64,
    /// Clients disconnected during this broadcast (slow or gone).
    pub disconnected: u64,
    /// Wire bytes enqueued to clients (length prefix + header + payload
    /// per delivered frame).
    pub bytes: u64,
    /// Largest per-client backlog (queued frames, including the frame
    /// being delivered) sampled at enqueue time. Sampling happens *before*
    /// a blocking send waits, so a full buffer under
    /// [`Backpressure::Block`] reports `capacity + 1` — the queued frames
    /// plus the one in flight — rather than whatever remains after the
    /// client drains.
    pub max_queue: usize,
}

impl DeliveryStats {
    /// Accumulates another sample (sums counters, maxes the backlog).
    pub fn absorb(&mut self, other: DeliveryStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.disconnected += other.disconnected;
        self.bytes += other.bytes;
        self.max_queue = self.max_queue.max(other.max_queue);
    }
}

/// A broadcast medium: fans one frame out to every connected client.
///
/// Implementations own the client registry; the engine only sees aggregate
/// delivery stats and the live client count. A transport may batch
/// deliveries internally, in which case a `broadcast` call reports the
/// stats of whatever flush it completed (possibly none) and the tail batch
/// is reported by [`Transport::finish`].
pub trait Transport: Send {
    /// Sends `frame` to every connected client, applying the transport's
    /// backpressure policy to slow consumers.
    fn broadcast(&mut self, frame: Frame) -> DeliveryStats;

    /// Number of currently connected clients (as of the last flush for
    /// batching transports).
    fn active_clients(&self) -> usize;

    /// Flushes and releases transport resources (closes client feeds),
    /// returning the delivery stats of any final partial batch. The engine
    /// calls this once after the last slot and absorbs the result.
    fn finish(&mut self) -> DeliveryStats {
        DeliveryStats::default()
    }

    /// Sets the hello frame sent to each newly connected client before any
    /// broadcast traffic — the engine installs the current epoch's fence
    /// here so a late joiner (or a reconnect after a broker restart)
    /// learns `(epoch, base)` immediately instead of waiting up to a cycle
    /// for the next refresh fence. `None` (the default, and the epoch-0
    /// state) sends nothing, keeping pre-epoch runs byte-identical.
    fn set_hello(&mut self, _hello: Option<Frame>) {}

    /// Drains every upstream [`PullRequest`] received since the last call
    /// into `out` (appending; arrival order preserved). The engine polls
    /// this once per tick when pull arbitration is enabled and never
    /// otherwise, so push-only runs pay nothing. The default is the
    /// downstream-only transport: no requests, `out` untouched.
    fn take_requests(&mut self, _out: &mut Vec<PullRequest>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_with_payload() {
        let payloads = PagePayloads::generate(100, 16);
        let f = payloads.frame(123_456_789, Slot::Page(PageId(42)));
        assert_eq!(f.payload.len(), 16);
        let bytes = f.encode();
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(bytes.len(), f.wire_len());
        assert_eq!(Frame::decode(&bytes[4..]), Ok(f));
    }

    #[test]
    fn payloads_are_shared_not_copied() {
        let payloads = PagePayloads::generate(10, 64);
        let a = payloads.frame(0, Slot::Page(PageId(3)));
        let b = payloads.frame(7, Slot::Page(PageId(3)));
        // Same allocation: fan-out clones bump a refcount, nothing more.
        assert!(Arc::ptr_eq(&a.payload, &b.payload));
        let c = a.clone();
        assert!(Arc::ptr_eq(&a.payload, &c.payload));
    }

    #[test]
    fn payload_content_is_deterministic() {
        let a = PagePayloads::generate(5, 8);
        let b = PagePayloads::generate(5, 8);
        for p in 0..5 {
            let fa = a.frame(0, Slot::Page(PageId(p)));
            let fb = b.frame(0, Slot::Page(PageId(p)));
            assert_eq!(fa.payload, fb.payload);
        }
        // Pages differ from each other.
        let p0 = a.frame(0, Slot::Page(PageId(0)));
        let p1 = a.frame(0, Slot::Page(PageId(1)));
        assert_ne!(p0.payload, p1.payload);
    }

    #[test]
    fn empty_slot_uses_sentinel() {
        let f = Frame::bare(7, Slot::Empty);
        let bytes = f.encode();
        assert_eq!(bytes.len(), 4 + HEADER_LEN);
        assert_eq!(Frame::decode(&bytes[4..]), Ok(f));
    }

    #[test]
    fn repair_slot_round_trips_and_stays_distinct() {
        // A repair frame round-trips through the flag bit with its payload.
        let payload: Arc<[u8]> = vec![0xAB; 16].into();
        let f = Frame {
            seq: 42,
            channel: 1,
            slot: Slot::Repair(RepairId(7)),
            epoch: 0,
            payload,
        };
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes[LEN_PREFIX..]), Ok(f));
        // The empty sentinel has the high bit set too: decode must not
        // confuse padding with a repair symbol, in either direction.
        let e = Frame::bare(3, Slot::Empty);
        let decoded = Frame::decode(&e.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Empty);
        let r = Frame::bare(3, Slot::Repair(RepairId(0x7FFF_FFFE)));
        let decoded = Frame::decode(&r.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Repair(RepairId(0x7FFF_FFFE)));
    }

    #[test]
    fn pull_frame_round_trips_on_v2_and_v3() {
        let payloads = PagePayloads::generate(8, 16);
        // Epoch 0: a pull frame is v2-sized — same header as a push frame.
        let mut f = payloads.frame_on(31, 2, Slot::Page(PageId(5)));
        f.slot = Slot::Pull(PageId(5));
        let bytes = f.encode();
        assert_eq!(bytes.len(), LEN_PREFIX + HEADER_LEN + 16);
        let decoded = Frame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Pull(PageId(5)));
        assert_eq!(decoded.channel, 2);
        assert_eq!(decoded.epoch, 0);
        assert_eq!(decoded.payload, f.payload);
        // Nonzero epoch: pull composes with the v3 flag.
        let f3 = f.clone().with_epoch(9);
        let decoded = Frame::decode(&f3.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Pull(PageId(5)));
        assert_eq!(decoded.epoch, 9);
        assert_eq!(decoded.channel, 2);
    }

    #[test]
    fn pull_differs_from_push_by_exactly_one_wire_bit() {
        let payloads = PagePayloads::generate(8, 16);
        let push = payloads.frame_on(31, 2, Slot::Page(PageId(5)));
        let mut pull = push.clone();
        pull.slot = Slot::Pull(PageId(5));
        let pb = push.encode();
        let lb = pull.encode();
        assert_eq!(pb.len(), lb.len());
        let diff: u32 = pb
            .iter()
            .zip(&lb)
            .enumerate()
            // The CRC field re-binds the flag; exclude it from the count.
            .filter(|&(i, _)| !(LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4).contains(&i))
            .map(|(_, (a, b))| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "pull flag must be the only non-CRC difference");
        assert_ne!(
            &pb[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4],
            &lb[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4],
            "the pull flag must be CRC-bound"
        );
    }

    #[test]
    fn pull_flag_overrides_page_sentinels() {
        // A pull airing of a page whose id happens to have the repair
        // high bit clear is the normal case; the decode path must check
        // the pull flag before any page-field sentinel.
        let f = Frame::bare_on(7, 1, Slot::Pull(PageId(0)));
        let decoded = Frame::decode(&f.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Pull(PageId(0)));
    }

    #[test]
    fn bare_frames_share_one_empty_buffer() {
        let a = Frame::bare(0, Slot::Empty);
        let b = Frame::bare(1, Slot::Empty);
        assert!(Arc::ptr_eq(&a.payload, &b.payload));
    }

    #[test]
    fn encode_shared_matches_encode() {
        let payloads = PagePayloads::generate(4, 32);
        let f = payloads.frame(9, Slot::Page(PageId(2)));
        assert_eq!(&f.encode_shared()[..], &f.encode()[..]);
    }

    #[test]
    fn truncated_body_rejected() {
        assert_eq!(Frame::decode(&[0u8; 5]), Err(FrameError::Truncated));
    }

    #[test]
    fn every_single_bit_corruption_detected() {
        let payloads = PagePayloads::generate(8, 24);
        let f = payloads.frame(77, Slot::Page(PageId(5)));
        let bytes = f.encode();
        let body = &bytes[LEN_PREFIX..];
        assert!(body_crc_ok(body));
        // Flip every bit of the body (header fields, CRC itself, payload):
        // decode must reject each damaged copy.
        for bit in 0..body.len() * 8 {
            let mut damaged = body.to_vec();
            damaged[bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(Frame::decode(&damaged), Err(FrameError::Corrupt { .. })),
                "bit {bit} flip went undetected"
            );
            assert!(!body_crc_ok(&damaged));
        }
    }

    #[test]
    fn crc_covers_seq_and_page_not_just_payload() {
        // Two frames with identical payloads but different headers must
        // carry different CRCs (the checksum binds the sequence number).
        let payloads = PagePayloads::generate(4, 16);
        let a = payloads.frame(1, Slot::Page(PageId(2))).encode();
        let b = payloads.frame(2, Slot::Page(PageId(2))).encode();
        let crc = |buf: &[u8]| {
            u32::from_le_bytes(
                buf[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4]
                    .try_into()
                    .unwrap(),
            )
        };
        assert_ne!(crc(&a), crc(&b));
    }

    #[test]
    fn channel_round_trips_and_is_crc_bound() {
        let payloads = PagePayloads::generate(4, 16);
        let f = payloads.frame_on(9, 3, Slot::Page(PageId(1)));
        assert_eq!(f.channel, 3);
        let bytes = f.encode();
        let decoded = Frame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.channel, 3);
        assert_eq!(decoded, f);
        // Same seq/page/payload on another channel: different CRC — the
        // checksum binds the channel field too.
        let other = payloads.frame_on(9, 4, Slot::Page(PageId(1))).encode();
        let crc = |buf: &[u8]| {
            u32::from_le_bytes(
                buf[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4]
                    .try_into()
                    .unwrap(),
            )
        };
        assert_ne!(crc(&bytes), crc(&other));
        // The channel-0 helpers stay aliases of the explicit form.
        assert_eq!(
            payloads.frame(9, Slot::Page(PageId(1))),
            payloads.frame_on(9, 0, Slot::Page(PageId(1)))
        );
        assert_eq!(
            Frame::bare(5, Slot::Empty),
            Frame::bare_on(5, 0, Slot::Empty)
        );
    }

    #[test]
    fn epoch_zero_frames_stay_wire_v2_byte_identical() {
        // An epoch-0 frame must encode exactly as pre-epoch brokers did:
        // 18-byte header, no v3 flag, no epoch field.
        let payloads = PagePayloads::generate(8, 16);
        for slot in [
            Slot::Page(PageId(3)),
            Slot::Empty,
            Slot::Repair(RepairId(0x7FFF_FFFE)),
        ] {
            let f = payloads.frame_on(41, 2, slot);
            assert_eq!(f.epoch, 0);
            assert_eq!(f.header_len(), HEADER_LEN);
            let bytes = f.encode();
            let chan = u16::from_le_bytes(bytes[12..14].try_into().unwrap());
            assert_eq!(chan & CHANNEL_V3_FLAG, 0, "v3 flag leaked into {slot:?}");
            let decoded = Frame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(decoded, f);
            assert_eq!(decoded.epoch, 0);
        }
    }

    #[test]
    fn nonzero_epoch_frames_round_trip_as_v3() {
        let payloads = PagePayloads::generate(8, 16);
        for slot in [
            Slot::Page(PageId(5)),
            Slot::Empty,
            Slot::Repair(RepairId(9)),
        ] {
            let f = payloads.frame_on(99, 1, slot).with_epoch(7);
            assert_eq!(f.header_len(), HEADER_LEN_V3);
            assert_eq!(f.wire_len(), LEN_PREFIX + HEADER_LEN_V3 + f.payload.len());
            let bytes = f.encode();
            assert_eq!(bytes.len(), f.wire_len());
            let chan = u16::from_le_bytes(bytes[12..14].try_into().unwrap());
            assert_ne!(chan & CHANNEL_V3_FLAG, 0);
            let decoded = Frame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(decoded, f);
            assert_eq!(decoded.epoch, 7);
            assert_eq!(decoded.channel, 1);
        }
    }

    #[test]
    fn fence_frames_carry_epoch_and_base() {
        let f = Frame::fence(1000, 3, 4, 960);
        assert_eq!(f.slot, Slot::EpochFence);
        assert_eq!(f.fence_base(), Some(960));
        let bytes = f.encode();
        let decoded = Frame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(decoded.epoch, 4);
        assert_eq!(decoded.fence_base(), Some(960));
        // A fence announcing epoch 0 (restart hello) is still v3 on the
        // wire — the fence sentinel only exists in the v3 page space.
        let hello = Frame::fence(0, 0, 0, 0);
        assert_eq!(hello.header_len(), HEADER_LEN_V3);
        let decoded = Frame::decode(&hello.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::EpochFence);
        assert_eq!(decoded.fence_base(), Some(0));
        // Non-fence frames have no base; malformed fence payloads read None.
        assert_eq!(Frame::bare(0, Slot::Empty).fence_base(), None);
        let mut bad = Frame::fence(0, 0, 1, 5);
        bad.payload = Arc::from(&[1u8, 2, 3][..]);
        assert_eq!(bad.fence_base(), None);
    }

    #[test]
    fn v2_never_interprets_the_fence_sentinel() {
        // The same page value that marks a fence on v3 is a legal repair
        // id on v2 — a pre-epoch decoder contract we must not break.
        let r = Frame::bare(3, Slot::Repair(RepairId(0x7FFF_FFFE)));
        assert_eq!(r.header_len(), HEADER_LEN);
        let decoded = Frame::decode(&r.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(decoded.slot, Slot::Repair(RepairId(0x7FFF_FFFE)));
        assert_eq!(decoded.epoch, 0);
    }

    #[test]
    fn every_single_bit_corruption_detected_on_v3() {
        // The version-blind CRC binds the epoch bytes too: flip any bit of
        // a v3 body (header, epoch, payload, CRC itself) and decode fails.
        let payloads = PagePayloads::generate(8, 24);
        let f = payloads
            .frame_on(77, 2, Slot::Page(PageId(5)))
            .with_epoch(3);
        let bytes = f.encode();
        let body = &bytes[LEN_PREFIX..];
        assert!(body_crc_ok(body));
        for bit in 0..body.len() * 8 {
            let mut damaged = body.to_vec();
            damaged[bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(Frame::decode(&damaged), Err(FrameError::Corrupt { .. })),
                "bit {bit} flip went undetected"
            );
        }
        // Same frame in a different epoch: different CRC — the checksum
        // binds the epoch field.
        let other = payloads
            .frame_on(77, 2, Slot::Page(PageId(5)))
            .with_epoch(4)
            .encode();
        let crc = |buf: &[u8]| {
            u32::from_le_bytes(
                buf[LEN_PREFIX + CRC_OFFSET..LEN_PREFIX + CRC_OFFSET + 4]
                    .try_into()
                    .unwrap(),
            )
        };
        assert_ne!(crc(&bytes), crc(&other));
    }

    #[test]
    fn truncated_v3_header_rejected() {
        // A v3 frame cut between the CRC and the epoch field is Truncated,
        // not mis-decoded — but the CRC check runs first, so a clean cut
        // surfaces as Corrupt and only a CRC-consistent short body (never
        // produced by our encoder) reports Truncated. Build one by hand.
        let f = Frame::bare(9, Slot::Empty).with_epoch(2);
        let bytes = f.encode();
        assert_eq!(bytes.len(), LEN_PREFIX + HEADER_LEN_V3);
        let mut short = bytes[LEN_PREFIX..LEN_PREFIX + HEADER_LEN].to_vec();
        // Recompute a consistent CRC for the shortened body.
        let crc = body_crc(&short);
        short[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&short), Err(FrameError::Truncated));
    }

    #[test]
    fn backpressure_parses() {
        assert_eq!("drop".parse::<Backpressure>(), Ok(Backpressure::DropNewest));
        assert_eq!(
            "Disconnect".parse::<Backpressure>(),
            Ok(Backpressure::Disconnect)
        );
        assert_eq!("BLOCK".parse::<Backpressure>(), Ok(Backpressure::Block));
        assert!("nope".parse::<Backpressure>().is_err());
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = DeliveryStats {
            delivered: 3,
            dropped: 1,
            disconnected: 0,
            bytes: 48,
            max_queue: 5,
        };
        a.absorb(DeliveryStats {
            delivered: 2,
            dropped: 0,
            disconnected: 1,
            bytes: 32,
            max_queue: 2,
        });
        assert_eq!(a.delivered, 5);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.disconnected, 1);
        assert_eq!(a.bytes, 80);
        assert_eq!(a.max_queue, 5);
    }
}
