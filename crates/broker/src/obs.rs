//! Broker-side telemetry: the static metric handles for the engine slot
//! loop, the in-memory bus, the TCP transport, and live clients.
//!
//! All handles are `&'static` metrics from the [`bdisk_obs`] registry,
//! materialized once per process through `OnceLock` — after the first
//! touch (which the engine's warm-up traffic performs), the hot paths do
//! a single pointer load plus lock-free atomic recording, keeping the
//! steady-state broadcast allocation-free (`tests/alloc_free.rs` pins
//! this with metrics *and* tracing enabled).

use std::sync::OnceLock;

use bdisk_obs::registry::{self, Counter, Gauge, Histogram, POW2_BOUNDS};

/// Engine slot-loop metrics.
pub(crate) struct EngineMetrics {
    /// `bd_engine_slots_total`
    pub slots: &'static Counter,
    /// `bd_engine_frames_delivered_total`
    pub frames_delivered: &'static Counter,
    /// `bd_engine_frames_dropped_total`
    pub frames_dropped: &'static Counter,
    /// `bd_engine_disconnects_total`
    pub disconnects: &'static Counter,
    /// `bd_engine_bytes_sent_total`
    pub bytes: &'static Counter,
    /// `bd_engine_active_clients`
    pub active_clients: &'static Gauge,
    /// `bd_engine_max_client_lag`
    pub max_client_lag: &'static Gauge,
}

pub(crate) fn engine() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| EngineMetrics {
        slots: registry::counter(
            "bd_engine_slots_total",
            "Broadcast slots sent by the engine",
        ),
        frames_delivered: registry::counter(
            "bd_engine_frames_delivered_total",
            "Frames successfully enqueued to clients",
        ),
        frames_dropped: registry::counter(
            "bd_engine_frames_dropped_total",
            "Frames dropped at full client buffers",
        ),
        disconnects: registry::counter(
            "bd_engine_disconnects_total",
            "Clients disconnected (evicted as slow, finished, or died)",
        ),
        bytes: registry::counter(
            "bd_engine_bytes_sent_total",
            "Wire bytes enqueued to clients (header + payload per frame)",
        ),
        active_clients: registry::gauge(
            "bd_engine_active_clients",
            "Clients currently attached to the running transport",
        ),
        max_client_lag: registry::gauge(
            "bd_engine_max_client_lag",
            "Largest per-client backlog observed so far this process (frames)",
        ),
    })
}

/// In-memory bus fan-out metrics.
pub(crate) struct BusMetrics {
    /// `bd_bus_flushes_total`
    pub flushes: &'static Counter,
    /// `bd_bus_batch_occupancy`
    pub batch_occupancy: &'static Histogram,
    /// `bd_bus_backpressure_stalls_total`
    pub stalls: &'static Counter,
    /// `bd_bus_subscribers`
    pub subscribers: &'static Gauge,
}

pub(crate) fn bus() -> &'static BusMetrics {
    static M: OnceLock<BusMetrics> = OnceLock::new();
    M.get_or_init(|| BusMetrics {
        flushes: registry::counter(
            "bd_bus_flushes_total",
            "Batch flushes delivered by the in-memory bus",
        ),
        batch_occupancy: registry::histogram(
            "bd_bus_batch_occupancy",
            "Frames per bus flush batch",
            POW2_BOUNDS,
        ),
        stalls: registry::counter(
            "bd_bus_backpressure_stalls_total",
            "Producer stalls on a full subscriber queue under Backpressure::Block",
        ),
        subscribers: registry::gauge(
            "bd_bus_subscribers",
            "Subscribers currently registered on in-memory buses",
        ),
    })
}

/// Per-shard queue-depth gauge (`bd_bus_shard_queue_depth{shard=...}`),
/// registered when a shard worker spawns. Peak backlog seen by the shard's
/// most recent flush.
pub(crate) fn shard_queue_depth(shard: usize) -> &'static Gauge {
    registry::gauge_labeled(
        "bd_bus_shard_queue_depth",
        "Peak subscriber backlog observed by this shard's latest flush (frames)",
        "shard",
        shard.to_string(),
    )
}

/// Per-channel slots aired by the engine
/// (`bd_slots_by_channel_total{channel=...}`).
pub(crate) fn slots_by_channel(channel: u16) -> &'static Counter {
    registry::counter_labeled(
        "bd_slots_by_channel_total",
        "Broadcast slots aired by the engine, per channel",
        "channel",
        channel.to_string(),
    )
}

/// Per-channel frames entering transport fan-out
/// (`bd_fanout_frames_by_channel_total{channel=...}`).
pub(crate) fn fanout_by_channel(channel: u16) -> &'static Counter {
    registry::counter_labeled(
        "bd_fanout_frames_by_channel_total",
        "Frames handed to transport fan-out (bus or TCP), per channel",
        "channel",
        channel.to_string(),
    )
}

/// Per-channel injected faults
/// (`bd_fault_injected_by_channel_total{channel=...}`).
pub(crate) fn fault_channel_counter(channel: u16) -> &'static Counter {
    registry::counter_labeled(
        "bd_fault_injected_by_channel_total",
        "Faults injected into the broadcast, per channel",
        "channel",
        channel.to_string(),
    )
}

/// Lazily-grown cache of one labelled family's per-channel counter
/// handles. The registry lookup allocates (it formats the label value), so
/// hot paths hold one of these and pay that cost once per channel, on
/// first sighting — steady-state traffic is a pointer index plus an atomic
/// add, preserving the zero-allocation broadcast invariant.
pub(crate) struct ChannelCounters {
    make: fn(u16) -> &'static Counter,
    handles: Vec<&'static Counter>,
}

impl ChannelCounters {
    /// A cache over `make` (one of the `*_by_channel` constructors above).
    pub(crate) fn new(make: fn(u16) -> &'static Counter) -> Self {
        Self {
            make,
            handles: Vec::new(),
        }
    }

    /// The counter for `channel`, materializing handles up to it on first
    /// use.
    pub(crate) fn get(&mut self, channel: u16) -> &'static Counter {
        let idx = channel as usize;
        while self.handles.len() <= idx {
            let next = self.handles.len() as u16;
            self.handles.push((self.make)(next));
        }
        self.handles[idx]
    }
}

/// Broker stage-timer metrics: where a sampled slot's wall-clock time
/// went, in microseconds — the histogram view of the [`bdisk_obs::trace`]
/// stage spans (tick deadline jitter, frame encode, transport enqueue,
/// writev drain).
pub(crate) struct StageMetrics {
    /// `bd_stage_jitter_us`
    pub jitter: &'static Histogram,
    /// `bd_stage_encode_us`
    pub encode: &'static Histogram,
    /// `bd_stage_enqueue_us`
    pub enqueue: &'static Histogram,
    /// `bd_stage_drain_us`
    pub drain: &'static Histogram,
    /// `bd_conn_lag_watermark`
    pub conn_lag_watermark: &'static Gauge,
}

pub(crate) fn stage() -> &'static StageMetrics {
    static M: OnceLock<StageMetrics> = OnceLock::new();
    M.get_or_init(|| StageMetrics {
        jitter: registry::histogram(
            "bd_stage_jitter_us",
            "How late a sampled slot started past its absolute tick deadline (us)",
            POW2_BOUNDS,
        ),
        encode: registry::histogram(
            "bd_stage_encode_us",
            "Frame build time for a sampled slot, summed over channels (us)",
            POW2_BOUNDS,
        ),
        enqueue: registry::histogram(
            "bd_stage_enqueue_us",
            "Transport enqueue/fan-out time for a sampled slot, summed over channels (us)",
            POW2_BOUNDS,
        ),
        drain: registry::histogram(
            "bd_stage_drain_us",
            "Writev drain time accumulated since the previous sampled slot (us)",
            POW2_BOUNDS,
        ),
        conn_lag_watermark: registry::gauge(
            "bd_conn_lag_watermark",
            "High-water per-connection send backlog observed at enqueue (frames)",
        ),
    })
}

/// Send backlog of the `rank`-th slowest TCP connection at the latest
/// broadcast (`bd_slow_consumer_lag{rank=...}`).
pub(crate) fn slow_consumer_lag(rank: usize) -> &'static Gauge {
    registry::gauge_labeled(
        "bd_slow_consumer_lag",
        "Send backlog of the rank-th slowest connection at the latest broadcast (frames)",
        "rank",
        rank.to_string(),
    )
}

/// Connection id of the `rank`-th slowest TCP connection at the latest
/// broadcast (`bd_slow_consumer_conn{rank=...}`).
pub(crate) fn slow_consumer_conn(rank: usize) -> &'static Gauge {
    registry::gauge_labeled(
        "bd_slow_consumer_conn",
        "Connection id holding the rank-th largest send backlog at the latest broadcast",
        "rank",
        rank.to_string(),
    )
}

/// TCP transport metrics.
pub(crate) struct TcpMetrics {
    /// `bd_tcp_connections`
    pub connections: &'static Gauge,
    /// `bd_tcp_accepted_total`
    pub accepted: &'static Counter,
    /// `bd_tcp_writer_backlog`
    pub writer_backlog: &'static Histogram,
    /// `bd_tcp_coalesce_batch`
    pub coalesce_batch: &'static Histogram,
    /// `bd_tcp_bytes_total`
    pub bytes: &'static Counter,
    /// `bd_tcp_frames_dropped_total`
    pub frames_dropped: &'static Counter,
    /// `bd_tcp_disconnects_total`
    pub disconnects: &'static Counter,
}

pub(crate) fn tcp() -> &'static TcpMetrics {
    static M: OnceLock<TcpMetrics> = OnceLock::new();
    M.get_or_init(|| TcpMetrics {
        connections: registry::gauge(
            "bd_tcp_connections",
            "TCP broadcast connections currently registered",
        ),
        accepted: registry::counter(
            "bd_tcp_accepted_total",
            "TCP broadcast connections accepted since process start",
        ),
        writer_backlog: registry::histogram(
            "bd_tcp_writer_backlog",
            "Per-connection send-buffer backlog sampled at each enqueue (frames)",
            POW2_BOUNDS,
        ),
        coalesce_batch: registry::histogram(
            "bd_tcp_coalesce_batch",
            "Frames folded into one vectored write by a connection writer",
            POW2_BOUNDS,
        ),
        bytes: registry::counter(
            "bd_tcp_bytes_total",
            "Wire bytes enqueued to TCP connections",
        ),
        frames_dropped: registry::counter(
            "bd_tcp_frames_dropped_total",
            "Frames dropped at full TCP send buffers (DropNewest)",
        ),
        disconnects: registry::counter(
            "bd_tcp_disconnects_total",
            "TCP connections evicted as slow consumers or lost to write errors",
        ),
    })
}

/// Event-loop (epoll) transport metrics.
pub(crate) struct EventedMetrics {
    /// `bd_poll_wakeups_total`
    pub poll_wakeups: &'static Counter,
    /// `bd_partial_writes_total`
    pub partial_writes: &'static Counter,
    /// `bd_conn_slab_occupancy`
    pub slab_occupancy: &'static Gauge,
    /// `bd_writable_spurious_total`
    pub writable_spurious: &'static Counter,
}

pub(crate) fn evented() -> &'static EventedMetrics {
    static M: OnceLock<EventedMetrics> = OnceLock::new();
    M.get_or_init(|| EventedMetrics {
        poll_wakeups: registry::counter(
            "bd_poll_wakeups_total",
            "Readiness polls that returned at least one event to the evented transport",
        ),
        partial_writes: registry::counter(
            "bd_partial_writes_total",
            "Socket writes that accepted only part of the pending backlog (resumed by cursor)",
        ),
        slab_occupancy: registry::gauge(
            "bd_conn_slab_occupancy",
            "Connection slots currently occupied in the evented transport's slab",
        ),
        writable_spurious: registry::counter(
            "bd_writable_spurious_total",
            "Writable wakeups that found an empty backlog (interest disarmed too late)",
        ),
    })
}

/// Live-client metrics.
pub(crate) struct ClientMetrics {
    /// `bd_client_frames_seen_total`
    pub frames_seen: &'static Counter,
    /// `bd_client_finished_total`
    pub finished: &'static Counter,
}

pub(crate) fn client() -> &'static ClientMetrics {
    static M: OnceLock<ClientMetrics> = OnceLock::new();
    M.get_or_init(|| ClientMetrics {
        frames_seen: registry::counter(
            "bd_client_frames_seen_total",
            "Broadcast frames observed by live clients",
        ),
        finished: registry::counter(
            "bd_client_finished_total",
            "Live clients that completed their measured request quota",
        ),
    })
}

/// Loss-recovery metrics: wire damage detected, gaps observed, reconnects
/// survived, and how long recoveries waited for the next broadcast.
pub(crate) struct RecoveryMetrics {
    /// `bd_frames_corrupt_total`
    pub frames_corrupt: &'static Counter,
    /// `bd_reconnects_total`
    pub reconnects: &'static Counter,
    /// `bd_frame_gaps_total`
    pub gaps: &'static Counter,
    /// `bd_recovery_wait_slots`
    pub recovery_wait: &'static Histogram,
}

pub(crate) fn recovery() -> &'static RecoveryMetrics {
    static M: OnceLock<RecoveryMetrics> = OnceLock::new();
    M.get_or_init(|| RecoveryMetrics {
        frames_corrupt: registry::counter(
            "bd_frames_corrupt_total",
            "Frames discarded by receivers after CRC verification failed",
        ),
        reconnects: registry::counter(
            "bd_reconnects_total",
            "Client feed reconnects completed after a lost connection",
        ),
        gaps: registry::counter(
            "bd_frame_gaps_total",
            "Contiguous frame-sequence gaps detected by live clients",
        ),
        recovery_wait: registry::histogram(
            "bd_recovery_wait_slots",
            "Slots a client waited from a missed broadcast of a pending page \
             to the next periodic broadcast that recovered it",
            registry::RESPONSE_BOUNDS,
        ),
    })
}

/// Coded-repair metrics: repair symbols aired by the engine, decodes and
/// window churn on the client side, and how recoveries split between the
/// coded fast path and the periodic-wait fallback.
pub(crate) struct RepairMetrics {
    /// `bd_repair_slots_aired_total`
    pub slots_aired: &'static Counter,
    /// `bd_repair_symbols_decoded_total`
    pub symbols_decoded: &'static Counter,
    /// `bd_decode_window_evictions_total`
    pub window_evictions: &'static Counter,
    /// `bd_recovery_coded_total`
    pub recoveries_coded: &'static Counter,
    /// `bd_recovery_periodic_total`
    pub recoveries_periodic: &'static Counter,
}

pub(crate) fn repair() -> &'static RepairMetrics {
    static M: OnceLock<RepairMetrics> = OnceLock::new();
    M.get_or_init(|| RepairMetrics {
        slots_aired: registry::counter(
            "bd_repair_slots_aired_total",
            "Repair (parity/fountain) slots aired by the engine across all channels",
        ),
        symbols_decoded: registry::counter(
            "bd_repair_symbols_decoded_total",
            "Repair symbols that produced at least one decoded page at a live client",
        ),
        window_evictions: registry::counter(
            "bd_decode_window_evictions_total",
            "Decode-window entries or pending symbols aged out before they could help",
        ),
        recoveries_coded: registry::counter(
            "bd_recovery_coded_total",
            "Pending-page recoveries completed early from a decoded repair symbol",
        ),
        recoveries_periodic: registry::counter(
            "bd_recovery_periodic_total",
            "Pending-page recoveries that waited for the next periodic broadcast",
        ),
    })
}

/// Epoch / hot-swap metrics: where the plan clock stands, how many swaps
/// the engine has executed, and how much stale-epoch traffic clients are
/// discarding (nonzero only around a swap or a rejoin).
pub(crate) struct EpochMetrics {
    /// `bd_plan_epoch`
    pub plan_epoch: &'static Gauge,
    /// `bd_epoch_swaps_total`
    pub swaps: &'static Counter,
    /// `bd_epoch_fences_total`
    pub fences: &'static Counter,
    /// `bd_stale_epoch_frames_total`
    pub stale_frames: &'static Counter,
}

pub(crate) fn epoch_metrics() -> &'static EpochMetrics {
    static M: OnceLock<EpochMetrics> = OnceLock::new();
    M.get_or_init(|| EpochMetrics {
        plan_epoch: registry::gauge(
            "bd_plan_epoch",
            "Plan epoch currently on the air (0 until the first hot swap)",
        ),
        swaps: registry::counter(
            "bd_epoch_swaps_total",
            "Plan hot-swaps executed by the engine at cycle boundaries",
        ),
        fences: registry::counter(
            "bd_epoch_fences_total",
            "Epoch-fence marker ticks aired (announce + refresh)",
        ),
        stale_frames: registry::counter(
            "bd_stale_epoch_frames_total",
            "Frames discarded by live clients for carrying a non-current plan epoch",
        ),
    })
}

/// Hybrid push/pull metrics: the upstream request stream, the slot
/// arbiter's queue and service decisions, and user-perceived fairness
/// (per-user wait, not per-item — the "Be Fair to Users" objective).
pub(crate) struct PullMetrics {
    /// `bd_pull_requests_total`
    pub requests: &'static Counter,
    /// `bd_pull_requests_rejected_total`
    pub rejected: &'static Counter,
    /// `bd_pull_slots_total`
    pub slots: &'static Counter,
    /// `bd_pull_padding_slots_total`
    pub padding_slots: &'static Counter,
    /// `bd_pull_stolen_slots_total`
    pub stolen_slots: &'static Counter,
    /// `bd_pull_queue_depth`
    pub queue_depth: &'static Gauge,
    /// `bd_pull_wait_slots`
    pub wait: &'static Histogram,
    /// `bd_pull_user_max_wait_slots`
    pub user_max_wait: &'static Gauge,
}

pub(crate) fn pull() -> &'static PullMetrics {
    static M: OnceLock<PullMetrics> = OnceLock::new();
    M.get_or_init(|| PullMetrics {
        requests: registry::counter(
            "bd_pull_requests_total",
            "Upstream pull requests accepted into the slot arbiter's queue",
        ),
        rejected: registry::counter(
            "bd_pull_requests_rejected_total",
            "Upstream pull requests dropped (bad page, full queue, or already \
             satisfied by the periodic schedule)",
        ),
        slots: registry::counter(
            "bd_pull_slots_total",
            "On-demand pull airings substituted into the broadcast",
        ),
        padding_slots: registry::counter(
            "bd_pull_padding_slots_total",
            "Pull airings that filled empty padding slots (free bandwidth)",
        ),
        stolen_slots: registry::counter(
            "bd_pull_stolen_slots_total",
            "Pull airings that displaced a scheduled push slot (fixed-ratio or \
             adaptive stealing)",
        ),
        queue_depth: registry::gauge(
            "bd_pull_queue_depth",
            "Pull requests currently waiting in the slot arbiter (all channels)",
        ),
        wait: registry::histogram(
            "bd_pull_wait_slots",
            "Slots a pull request waited in the arbiter queue before its page aired",
            registry::RESPONSE_BOUNDS,
        ),
        user_max_wait: registry::gauge(
            "bd_pull_user_max_wait_slots",
            "Worst single-request pull wait observed for any user (slots)",
        ),
    })
}

/// Eagerly registers every broker metric (engine, bus, TCP, client, fault
/// injection, loss recovery) so a scrape of `/metrics` shows the full
/// inventory before traffic arrives. Idempotent; call when starting a
/// metrics server.
pub fn register_metrics() {
    let _ = engine();
    let _ = bus();
    let _ = tcp();
    let _ = evented();
    let _ = client();
    let _ = stage();
    let _ = shard_queue_depth(0);
    let _ = slots_by_channel(0);
    let _ = fanout_by_channel(0);
    let _ = fault_channel_counter(0);
    let _ = slow_consumer_lag(0);
    let _ = slow_consumer_conn(0);
    let _ = recovery();
    let _ = repair();
    let _ = epoch_metrics();
    let _ = pull();
    let _ = crate::faults::metrics();
}
