//! Fleet-wide aggregation: merges per-client measurements into one report.

use bdesim::{Histogram, RunningStats};
use bdisk_sim::SimOutcome;

use crate::client::LiveClientResult;
use crate::engine::EngineReport;

/// Aggregate results of one live run: engine throughput plus fleet-wide
/// service statistics pooled over every client's measured requests.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Engine-side accounting (slot rate, drops, disconnects, lag).
    pub engine: EngineReport,
    /// Clients that reported results.
    pub clients: usize,
    /// Measured requests pooled across clients.
    pub measured_requests: u64,
    /// Fleet mean response time, in broadcast units.
    pub mean_response_time: f64,
    /// Fleet cache hit rate, or `None` when no requests were measured —
    /// a misconfigured warm-up is visible instead of masquerading as a
    /// 0% hit rate.
    pub hit_rate: Option<f64>,
    /// Fleet median response time (unit buckets).
    pub p50: f64,
    /// Fleet 95th-percentile response time.
    pub p95: f64,
    /// Fleet 99th-percentile response time.
    pub p99: f64,
    /// Fleet 99.9th-percentile response time (the extreme tail — where
    /// loss recovery and switch penalties live).
    pub p999: f64,
    /// Each client's own summarized outcome, in client order.
    pub per_client: Vec<SimOutcome>,
}

/// Merges client results into a [`LiveReport`].
///
/// Response-time moments merge exactly (parallel Welford); percentiles come
/// from summing the clients' unit-bucket histograms, so the fleet p50/p95/p99
/// are as exact as any single client's.
pub fn aggregate(engine: EngineReport, results: Vec<LiveClientResult>) -> LiveReport {
    let mut stats = RunningStats::new();
    let mut hist = Histogram::new(1);
    let mut cache_hits = 0u64;
    let mut total = 0u64;
    let mut per_client = Vec::with_capacity(results.len());

    for result in results {
        stats.merge(&result.measurements.stats);
        hist.merge(&result.measurements.hist);
        cache_hits += result.measurements.locations.count(0);
        total += result.measurements.locations.total();
        per_client.push(result.outcome);
    }

    LiveReport {
        engine,
        clients: per_client.len(),
        measured_requests: stats.count(),
        mean_response_time: stats.mean(),
        hit_rate: if total == 0 {
            None
        } else {
            Some(cache_hits as f64 / total as f64)
        },
        p50: hist.quantile(0.5).unwrap_or(0.0),
        p95: hist.quantile(0.95).unwrap_or(0.0),
        p99: hist.quantile(0.99).unwrap_or(0.0),
        p999: hist.quantile(0.999).unwrap_or(0.0),
        per_client,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::transport::Backpressure;
    use crate::{BroadcastEngine, InMemoryBus, LiveClient};
    use bdisk_cache::PolicyKind;
    use bdisk_sched::{BroadcastProgram, DiskLayout};
    use bdisk_sim::SimConfig;

    #[test]
    fn aggregate_pools_two_clients() {
        let layout = DiskLayout::with_delta(&[10, 40, 50], 2).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let cfg = SimConfig {
            access_range: 50,
            region_size: 5,
            cache_size: 10,
            offset: 10,
            noise: 0.2,
            policy: PolicyKind::Lru,
            requests: 200,
            warmup_requests: 20,
            ..SimConfig::default()
        };

        let mut bus = InMemoryBus::new(64, Backpressure::Block);
        let subs = [bus.subscribe(), bus.subscribe()];
        let mut clients: Vec<LiveClient> = (0..2)
            .map(|i| LiveClient::new(&cfg, &layout, program.clone(), 7 + i).unwrap())
            .collect();

        let engine = BroadcastEngine::new(program, EngineConfig::default());
        let engine_report = crossbeam::scope(|scope| {
            let handles: Vec<_> = clients
                .iter_mut()
                .zip(subs)
                .map(|(client, sub)| scope.spawn(move |_| client.run(sub)))
                .collect();
            let report = engine.run(&mut bus);
            for h in handles {
                h.join().unwrap();
            }
            report
        })
        .unwrap();
        let client_results: Vec<LiveClientResult> =
            clients.into_iter().map(|c| c.into_results()).collect();
        let results = aggregate(engine_report, client_results);

        assert_eq!(results.clients, 2);
        assert_eq!(results.measured_requests, 400);
        assert!(results.mean_response_time > 0.0);
        let hit_rate = results.hit_rate.expect("measured run has a hit rate");
        assert!((0.0..=1.0).contains(&hit_rate));
        assert!(results.p50 <= results.p95 && results.p95 <= results.p99);
        assert!(results.p99 <= results.p999);
        // Pooled mean equals the request-weighted mean of the parts.
        let weighted: f64 = results
            .per_client
            .iter()
            .map(|o| o.mean_response_time * o.measured_requests as f64)
            .sum::<f64>()
            / 400.0;
        assert!((results.mean_response_time - weighted).abs() < 1e-9);
    }

    #[test]
    fn empty_fleet_is_safe() {
        let layout = DiskLayout::with_delta(&[4, 8], 1).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let engine = BroadcastEngine::new(
            program,
            EngineConfig {
                max_slots: 10,
                stop_when_no_clients: false,
                ..EngineConfig::default()
            },
        );
        let mut bus = InMemoryBus::new(4, Backpressure::Block);
        let report = engine.run(&mut bus);
        let live = aggregate(report, Vec::new());
        assert_eq!(live.clients, 0);
        assert_eq!(live.measured_requests, 0);
        assert_eq!(live.mean_response_time, 0.0);
        assert_eq!(
            live.hit_rate, None,
            "no measured requests must not read as a 0% hit rate"
        );
    }
}
