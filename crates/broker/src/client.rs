//! A live client: the simulator's protocol driven by real frames.
//!
//! [`LiveClient`] wraps the same [`ClientCore`] as the simulator's
//! `ClientModel`, but instead of jumping a virtual clock to a page's next
//! arrival it watches the broadcast go by one frame at a time. Frame `seq`
//! places the client at virtual time `seq` (broadcast units), so all
//! response times are directly comparable to — and, on a lossless feed with
//! jitter-free think times, bit-identical to — the simulator's.
//!
//! ## Multi-channel tuning
//!
//! Against a multi-channel [`BroadcastPlan`] the client models the paper's
//! single-tuner receiver exactly like the simulator: a miss on a page that
//! lives on the currently-tuned channel waits in place; a miss on another
//! channel retunes, forfeiting the slot in flight and paying the switch
//! penalty — the earliest receivable slot starts at `⌊t⌋ + 1 +
//! switch_slots`, anchored on the request time. Because the engine airs
//! every channel's slot for a given `seq` in channel order, and (with a
//! positive think time) a request-issuing chain always begins on the first
//! frame of a sequence number, the live decision point sees exactly the
//! frames the simulator's `next_arrival` assumes are still receivable. (At
//! `think_time == 0` a chain can begin mid-sequence and the live client may
//! observe one fewer same-`seq` slot than the model; the paper's default
//! think time is 2.0.)

use std::sync::Arc;

use bdisk_cache::PolicyContext;
use bdisk_code::{ChannelCode, DecodeWindow, Decoded};
use bdisk_obs::journal::{event, EventKind};
use bdisk_obs::trace::{self, Span, SpanKind};
use bdisk_sched::{BroadcastPlan, BroadcastProgram, ChannelId, DiskLayout, PageId, Slot};
use bdisk_sim::{
    AccessLocation, ClientCore, Mapping, Measurements, SimConfig, SimError, SimOutcome,
};

use crate::bus::BusSubscription;
use crate::transport::{Frame, PullRequest};

/// One plan epoch as a client sees it: the plan itself plus the policy
/// context (physical page probabilities, page→disk map, disk frequencies)
/// the cache should re-score under when this epoch takes the air. Built
/// once per fleet and shared by `Arc` — adoption clones the plan, never
/// the context.
pub struct ClientEpoch {
    /// The plan aired during this epoch.
    pub plan: BroadcastPlan,
    /// Policy context matching this epoch's workload/plan.
    pub ctx: PolicyContext,
}

/// A deterministic client-side drift schedule: every `every_slots` slots
/// the workload's logical→physical mapping advances one phase. Applied
/// identically by adaptive and control fleets (zero RNG draws), so the
/// only difference between those runs is whether the *broadcast* adapts.
pub struct DriftBook {
    /// Slots per drift phase.
    pub every_slots: u64,
    /// Mapping for phase `p` (cumulative — each entry is the full mapping,
    /// not a delta). Phases past the end hold at the last entry.
    pub mappings: Vec<Mapping>,
    /// Last phase applied.
    cur_phase: usize,
}

impl DriftBook {
    /// A drift schedule stepping through `mappings` every `every_slots`
    /// slots (phase 0 must already be the client's construction mapping).
    pub fn new(every_slots: u64, mappings: Vec<Mapping>) -> Self {
        assert!(every_slots > 0, "drift cadence must be nonzero");
        assert!(!mappings.is_empty(), "drift book must hold phase 0");
        Self {
            every_slots,
            mappings,
            cur_phase: 0,
        }
    }
}

/// Final results of one live client: the summarized outcome plus the raw
/// measurements for fleet-wide aggregation.
pub struct LiveClientResult {
    /// Summarized steady-state outcome (same type the simulator produces).
    pub outcome: SimOutcome,
    /// Raw measurement accumulators, mergeable across clients.
    pub measurements: Measurements,
    /// Frames this client consumed before finishing.
    pub frames_seen: u64,
    /// Contiguous frame-sequence gaps this client observed (lost frames,
    /// however caused: erasure, CRC discard, or an outage).
    pub gaps: u64,
    /// Total slots swallowed by those gaps.
    pub gap_slots: u64,
    /// Stale (reordered/delayed) frames discarded because virtual time
    /// never rewinds.
    pub late_frames: u64,
    /// Pending pages whose broadcast was lost and that were recovered at a
    /// later periodic broadcast.
    pub recoveries: u64,
    /// Longest recovery wait (slots from the lost broadcast to the
    /// periodic reappearance that recovered it). At most one broadcast
    /// period per consecutive loss of the same page.
    pub max_recovery_wait: u64,
    /// Of those recoveries, how many completed early from a decoded repair
    /// symbol rather than waiting for the page's next periodic broadcast.
    pub recoveries_coded: u64,
    /// Repair symbols that decoded at least one lost page at this client.
    pub symbols_decoded: u64,
    /// Every recovery wait, in slots — raw samples for fleet-wide
    /// percentile aggregation (p99, max). Empty on a lossless feed.
    pub recovery_waits: Vec<u64>,
    /// Sampled wait-attribution spans, in completion order. Empty unless
    /// [`bdisk_obs::trace::set_sample_every`] turned span sampling on.
    pub spans: Vec<Span>,
    /// Plan epochs this client adopted mid-run (hot swaps survived).
    pub epoch_swaps: u64,
    /// Frames discarded for carrying a non-current (older) plan epoch.
    pub stale_epoch_frames: u64,
    /// Per-window mean miss delay while measuring: `(sum, count)` of
    /// response times bucketed by completion slot. Empty unless
    /// [`LiveClient::with_delay_buckets`] was set.
    pub delay_buckets: Vec<(f64, u64)>,
}

/// Client-side decode state for a coded plan: the per-channel symbol
/// compositions and a bounded window of recent tuned-channel slots. `None`
/// on uncoded plans, so `rate = 0` leaves every frame path untouched.
struct CodedState {
    /// Symbol specs per channel (indexed by channel id).
    codes: Vec<ChannelCode>,
    /// Recent tuned-channel slots, heard (with payload) or known-lost.
    window: DecodeWindow,
    /// Evictions already flushed to `bd_decode_window_evictions_total`.
    evictions_seen: u64,
}

/// One client of the live broadcast: seeded request stream, cache policy,
/// warm-up, and measurement — fed by frames instead of a virtual clock.
pub struct LiveClient {
    core: ClientCore,
    plan: BroadcastPlan,
    /// Channel the single tuner is currently listening to.
    tuned: u16,
    /// Retune penalty in broadcast units (from [`SimConfig::switch_slots`]).
    switch_slots: f64,
    /// Earliest sequence the pending page may be received at — past the
    /// retune penalty window after a cross-channel miss (0 otherwise).
    min_receive_seq: u64,
    /// Virtual time at which the next request becomes due.
    next_due: f64,
    /// A missed request waiting for its page: `(page, requested_at)`.
    pending: Option<(PageId, f64)>,
    /// Wait-attribution anchors `(no_switch, expected)` for the pending
    /// request, when it was sampled at issue time (`None` otherwise).
    /// Computed with pure plan arithmetic only — tracing never touches the
    /// frame protocol or the RNG.
    pending_trace: Option<(f64, f64)>,
    /// The slot at which the pending page's broadcast was lost in a gap,
    /// if it was — the anchor for recovery-wait accounting.
    pending_missed_at: Option<u64>,
    /// Next frame sequence this client expects on the tuned channel
    /// (`None` before any frame and right after a retune).
    expected_seq: Option<u64>,
    gaps: u64,
    gap_slots: u64,
    late_frames: u64,
    recoveries: u64,
    max_recovery_wait: u64,
    recoveries_coded: u64,
    symbols_decoded: u64,
    recovery_waits: Vec<u64>,
    /// Decode state when the plan carries repair slots (`None` at rate 0).
    coded: Option<CodedState>,
    /// Plan epoch currently adopted; frames of other epochs are dropped.
    epoch: u32,
    /// Absolute seq where the adopted epoch's slot clock starts (0 for
    /// epoch 0, so single-plan runs do identical arithmetic to before).
    base: u64,
    /// An announced-but-not-yet-active swap: `(epoch, base)` from a fence
    /// whose boundary is still ahead. Activated at the first frame with
    /// `seq >= base`.
    pending_swap: Option<(u32, u64)>,
    /// Per-epoch plans and policy contexts; `None` locks the client to
    /// its construction plan (fences still track `base` on restart).
    epoch_book: Option<Arc<Vec<ClientEpoch>>>,
    /// Deterministic workload drift, if the run schedules one.
    drift: Option<DriftBook>,
    epoch_swaps: u64,
    stale_epoch_frames: u64,
    /// Bucket width (slots) for windowed delay means; 0 = off.
    bucket_every: u64,
    delay_buckets: Vec<(f64, u64)>,
    done: bool,
    end_time: f64,
    frames_seen: u64,
    /// Span identity: the seed this client was built with.
    trace_id: u64,
    /// Sampled wait-attribution spans, in completion order.
    spans: Vec<Span>,
    /// When `Some(user)`, every miss that goes pending also queues an
    /// upstream [`PullRequest`] under that user id (drained by the feed
    /// via [`LiveClient::drain_pull_requests`]). `None` = push-only.
    pull_user: Option<u32>,
    /// Requests queued since the last drain.
    pull_outbox: Vec<PullRequest>,
}

impl LiveClient {
    /// Builds the client for `cfg` with the given seed, listening to the
    /// single-channel broadcast of `program`. Identical seeds and configs
    /// produce the exact request stream of `bdisk_sim::simulate`.
    pub fn new(
        cfg: &SimConfig,
        layout: &DiskLayout,
        program: BroadcastProgram,
        seed: u64,
    ) -> Result<Self, SimError> {
        Self::with_plan(cfg, layout, BroadcastPlan::single(program), seed)
    }

    /// Like [`LiveClient::new`] but against a multi-channel
    /// [`BroadcastPlan`]. A 1-channel plan is bit-identical to [`new`]
    /// with the wrapped program; the tuner starts on channel 0.
    ///
    /// [`new`]: LiveClient::new
    pub fn with_plan(
        cfg: &SimConfig,
        layout: &DiskLayout,
        plan: BroadcastPlan,
        seed: u64,
    ) -> Result<Self, SimError> {
        let core = ClientCore::new_plan(cfg, layout, &plan, seed)?;
        // A coded plan gets a decode window spanning one (largest) period:
        // a repair symbol only ever covers slots within its own period, so
        // anything older can no longer be repaired anyway.
        let coded = plan.coding().map(|cfg| CodedState {
            codes: (0..plan.num_channels())
                .map(|c| ChannelCode::build(plan.program(ChannelId(c as u16)), c as u16, cfg))
                .collect(),
            window: DecodeWindow::new(plan.max_period()),
            evictions_seen: 0,
        });
        Ok(Self {
            core,
            plan,
            tuned: 0,
            switch_slots: cfg.switch_slots,
            min_receive_seq: 0,
            next_due: 0.0,
            pending: None,
            pending_trace: None,
            pending_missed_at: None,
            expected_seq: None,
            gaps: 0,
            gap_slots: 0,
            late_frames: 0,
            recoveries: 0,
            max_recovery_wait: 0,
            recoveries_coded: 0,
            symbols_decoded: 0,
            recovery_waits: Vec::new(),
            coded,
            epoch: 0,
            base: 0,
            pending_swap: None,
            epoch_book: None,
            drift: None,
            epoch_swaps: 0,
            stale_epoch_frames: 0,
            bucket_every: 0,
            delay_buckets: Vec::new(),
            done: false,
            end_time: 0.0,
            frames_seen: 0,
            trace_id: seed,
            spans: Vec::new(),
            pull_user: None,
            pull_outbox: Vec::new(),
        })
    }

    /// Arms the client to survive plan hot-swaps: when an epoch fence
    /// announces epoch `e`, the client re-scores its cache under
    /// `book[e].ctx` and continues against `book[e].plan`. Entry 0 should
    /// match the construction plan.
    pub fn with_epoch_book(mut self, book: Arc<Vec<ClientEpoch>>) -> Self {
        assert!(!book.is_empty(), "epoch book must hold epoch 0");
        self.epoch_book = Some(book);
        self
    }

    /// Installs a deterministic workload-drift schedule (see [`DriftBook`]).
    pub fn with_drift(mut self, drift: DriftBook) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Turns on windowed delay means: responses completed while measuring
    /// accumulate into buckets of `every` slots (by completion time).
    pub fn with_delay_buckets(mut self, every: u64) -> Self {
        assert!(every > 0, "bucket width must be nonzero");
        self.bucket_every = every;
        self
    }

    /// Arms the upstream backchannel: every miss that goes pending also
    /// queues a [`PullRequest`] under `user`, with `min_seq` set to the
    /// earliest slot this tuner could actually receive (the retune
    /// penalty boundary on a cross-channel miss). The feed is expected to
    /// [`drain_pull_requests`](LiveClient::drain_pull_requests) after each
    /// frame and relay them upstream.
    pub fn with_pull_requests(mut self, user: u32) -> Self {
        self.pull_user = Some(user);
        self
    }

    /// Moves every pull request queued since the last drain into `out`.
    pub fn drain_pull_requests(&mut self, out: &mut Vec<PullRequest>) {
        out.append(&mut self.pull_outbox);
    }

    /// Plan epoch currently adopted.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Plan hot-swaps this client has adopted so far.
    pub fn epoch_swaps(&self) -> u64 {
        self.epoch_swaps
    }

    /// The active plan's slot on `ch` at absolute seq `s`, under the
    /// adopted epoch's base offset. Slots before the epoch began read as
    /// padding (they belong to a plan this client no longer tracks).
    fn slot_on(&self, ch: ChannelId, s: u64) -> Slot {
        if s < self.base {
            Slot::Empty
        } else {
            self.plan.slot_at(ch, s - self.base)
        }
    }

    /// The page's next arrival at or after absolute time `t`, in absolute
    /// slots — [`BroadcastPlan::next_arrival`] shifted by the epoch base.
    fn arrival(&self, page: PageId, t: f64) -> f64 {
        let base = self.base as f64;
        base + self.plan.next_arrival(page, (t - base).max(0.0))
    }

    /// Predicted service slot of a pull request issued at `requested_at`
    /// under an uncontended padding-fill arbiter: the first padding slot
    /// on the page's home channel the tuner can hear. The request reaches
    /// the broker on the tick it was issued, so service starts the tick
    /// after; a retune pushes the bound to the penalty boundary. `None`
    /// when the channel's program has no padding.
    fn pull_arrival(&self, page: PageId, requested_at: f64, min_seq: u64) -> Option<f64> {
        let home = self.plan.channel_of(page);
        let lb = (requested_at.ceil() + 1.0).max(min_seq as f64);
        let base = self.base as f64;
        self.plan
            .next_padding_arrival(home, (lb - base).max(0.0))
            .map(|a| a + base)
    }

    /// Adopts plan epoch `epoch` with its slot clock starting at `base`.
    /// `now` is the seq of the frame that triggered adoption (anchors the
    /// retune penalty if the pending page moved channels). Residency
    /// survives; eviction ranking is re-scored under the new epoch's
    /// context; the decode window restarts (old-epoch symbols cover
    /// nothing in the new layout).
    fn adopt(&mut self, epoch: u32, base: u64, now: u64) {
        self.pending_swap = None;
        if epoch == self.epoch && base == self.base {
            return;
        }
        if let Some(book) = self.epoch_book.clone() {
            let idx = (epoch as usize).min(book.len() - 1);
            let entry = &book[idx];
            self.plan = entry.plan.clone();
            self.core.rescore(&entry.ctx);
        }
        self.epoch = epoch;
        self.base = base;
        self.coded = self.plan.coding().map(|cfg| CodedState {
            codes: (0..self.plan.num_channels())
                .map(|c| ChannelCode::build(self.plan.program(ChannelId(c as u16)), c as u16, cfg))
                .collect(),
            window: DecodeWindow::new(self.plan.max_period()),
            evictions_seen: 0,
        });
        // The pending page may live on a different channel under the new
        // layout: retune (paying the switch penalty) so the wait resumes
        // against the airing that will actually happen. Recovery anchors
        // and trace anchors from the old plan are meaningless now.
        if let Some((page, _)) = self.pending {
            let home = self.plan.channel_of(page);
            if home.0 != self.tuned {
                self.tuned = home.0;
                self.expected_seq = None;
                self.min_receive_seq = (now as f64 + 1.0 + self.switch_slots).ceil() as u64;
            }
        }
        self.pending_missed_at = None;
        self.pending_trace = None;
        self.epoch_swaps += 1;
        event(EventKind::EpochSwap, epoch as u64, base);
    }

    /// Accumulates one measured response into its completion-time bucket.
    fn record_bucket(&mut self, completed_at: f64, response: f64) {
        if self.bucket_every == 0 {
            return;
        }
        let idx = (completed_at as u64 / self.bucket_every) as usize;
        if self.delay_buckets.len() <= idx {
            self.delay_buckets.resize(idx + 1, (0.0, 0));
        }
        let (sum, n) = &mut self.delay_buckets[idx];
        *sum += response;
        *n += 1;
    }

    /// Processes one broadcast frame; returns `true` once the measurement
    /// target is reached (further frames are ignored).
    ///
    /// The protocol per frame, in order:
    /// 1. Resync on the frame's absolute sequence number — only against
    ///    frames of the tuned channel, since every channel numbers the same
    ///    slot clock: a jump forward is a *gap* (lost frames — erased,
    ///    CRC-discarded, or an outage); a jump backward is a stale
    ///    reordered frame and is dropped, because virtual time never
    ///    rewinds. A retune resets the expectation — switching channels is
    ///    not a loss.
    /// 2. If a missed request is pending and this slot carries its page
    ///    (which implies the frame is on the page's channel — page ids
    ///    partition across channels), complete it (response = now − request
    ///    time) unless the slot is still inside the retune penalty window.
    /// 3. Issue every request that has come due by now. Cache hits complete
    ///    immediately (response 0, as in the simulator); a miss retunes
    ///    first if the page lives on another channel; a miss satisfied by
    ///    this very slot (and past any penalty) completes now; any other
    ///    miss becomes pending.
    ///
    /// Recovery is the paper's: nothing is retransmitted. A client whose
    /// pending page was lost in a gap simply keeps listening — the page
    /// comes around again within one broadcast period, and the extra wait
    /// is attributed to loss (`bd_recovery_wait_slots`, `Recovery` event).
    pub fn on_frame(&mut self, frame: &Frame) -> bool {
        if self.done {
            return true;
        }
        self.frames_seen += 1;
        crate::obs::client().frames_seen.inc();
        let (seq, slot) = (frame.seq, frame.slot);
        // Epoch protocol, before any seq bookkeeping. Fences are
        // out-of-band markers: a fence for a *future* epoch whose boundary
        // has arrived adopts it now, one still ahead is stashed until its
        // boundary passes; refresh fences for the current epoch are
        // no-ops. Data frames of a non-current epoch are dropped — by
        // epoch tag, not seq heuristics — so a tuner never maps a page
        // arrival against the wrong plan. Epoch-0 single-plan runs see no
        // fences and every comparison below is `0 == 0`.
        if slot == Slot::EpochFence {
            if let Some(fence_base) = frame.fence_base() {
                if frame.epoch > self.epoch
                    || (frame.epoch == self.epoch && fence_base != self.base)
                {
                    if seq >= fence_base {
                        self.adopt(frame.epoch, fence_base, seq);
                    } else {
                        self.pending_swap = Some((frame.epoch, fence_base));
                    }
                }
            }
            return false;
        }
        if let Some((e, b)) = self.pending_swap {
            if seq >= b {
                self.adopt(e, b, seq);
            }
        }
        if frame.epoch != self.epoch {
            if frame.epoch < self.epoch {
                self.stale_epoch_frames += 1;
                crate::obs::epoch_metrics().stale_frames.inc();
            }
            // A frame from an epoch we haven't adopted yet (its fence was
            // lost): drop it and wait for the next refresh fence, at most
            // one cycle away.
            return false;
        }
        // Deterministic workload drift: phase crossings move the request
        // stream's physical mapping (no RNG draws, so adaptive and
        // control fleets drift bit-identically).
        if let Some(d) = self.drift.as_mut() {
            let phase = (seq / d.every_slots) as usize;
            if phase > d.cur_phase {
                d.cur_phase = phase;
                let m = d.mappings[phase.min(d.mappings.len() - 1)].clone();
                self.core.set_mapping(m);
            }
        }
        if frame.channel == self.tuned {
            if let Some(expected) = self.expected_seq {
                if seq < expected {
                    self.late_frames += 1;
                    return false;
                }
                if seq > expected {
                    let gap_len = seq - expected;
                    self.gaps += 1;
                    self.gap_slots += gap_len;
                    crate::obs::recovery().gaps.inc();
                    event(EventKind::FrameGap, expected, gap_len);
                    if let Some(state) = self.coded.as_mut() {
                        // Mark the gap's receivable data slots known-lost:
                        // a later repair symbol covering one reconstructs
                        // it. Slots more than a period back are beyond any
                        // symbol's coverage, so a long outage only replays
                        // the last period.
                        let tuned = ChannelId(self.tuned);
                        let horizon = seq.saturating_sub(self.plan.period_of(tuned) as u64);
                        let start = expected.max(self.min_receive_seq).max(horizon);
                        for s in start..seq {
                            if s < self.base {
                                continue; // pre-swap slots: old plan, unrepairable
                            }
                            if let Slot::Page(p) = self.plan.slot_at(tuned, s - self.base) {
                                state.window.push_lost(s, p);
                            }
                        }
                    }
                    if let Some((page, _)) = self.pending {
                        if self.pending_missed_at.is_none() {
                            // Did the gap swallow the pending page's
                            // broadcast? Every page airs at least once per
                            // period on its channel, so scanning the gap's
                            // first period of receivable slots finds the
                            // earliest lost occurrence if there is one.
                            let tuned = ChannelId(self.tuned);
                            let start = expected.max(self.min_receive_seq);
                            let scan_end = (expected + self.plan.period_of(tuned) as u64).min(seq);
                            for s in start..scan_end {
                                if self.slot_on(tuned, s) == Slot::Page(page) {
                                    self.pending_missed_at = Some(s);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            self.expected_seq = Some(seq + 1);
        }
        let t = seq as f64;

        // Coded path: mirror this receivable tuned-channel slot into the
        // decode window; a repair symbol may reconstruct known-lost pages
        // on the spot. Uncoded plans (`rate = 0`) skip all of this.
        let mut decoded: Vec<Decoded> = Vec::new();
        if frame.channel == self.tuned && seq >= self.min_receive_seq {
            if let Some(state) = self.coded.as_mut() {
                match slot {
                    Slot::Page(p) => {
                        state.window.push_heard(seq, p, Arc::clone(&frame.payload));
                    }
                    Slot::Repair(id) => {
                        let ch = ChannelId(frame.channel);
                        // Symbol coverage is plan-local arithmetic: shift
                        // the airing seq into the epoch's clock and the
                        // covered seqs back out to absolute.
                        let base = self.base;
                        if let Some(covers) = state.codes[ch.index()].covered_seqs(id, seq - base) {
                            let covers = covers
                                .into_iter()
                                .map(|(s, local)| (s + base, self.plan.global_page(ch, local)))
                                .collect();
                            decoded = state.window.on_repair(covers, &frame.payload);
                            if !decoded.is_empty() {
                                self.symbols_decoded += 1;
                                crate::obs::repair().symbols_decoded.inc();
                            }
                        }
                    }
                    // A pull airing substitutes a padding slot on coded
                    // plans (the arbiter never steals data slots there),
                    // so the decode window sees exactly what a push-only
                    // feed would: nothing.
                    Slot::Empty | Slot::Pull(_) => {}
                    Slot::EpochFence => unreachable!("fences are handled before the coded path"),
                }
                let ev = state.window.evictions();
                if ev > state.evictions_seen {
                    crate::obs::repair()
                        .window_evictions
                        .add(ev - state.evictions_seen);
                    state.evictions_seen = ev;
                }
            }
        }
        for d in decoded {
            // A decoded page completes the pending request early only when
            // it reconstructs the airing the request actually missed (or a
            // later one). Decodes of airings that predate the request stay
            // in the window as data, never become a response.
            let Some((page, requested_at)) = self.pending else {
                break;
            };
            let Some(missed) = self.pending_missed_at else {
                break;
            };
            if d.page == page && d.seq >= missed {
                self.pending = None;
                self.min_receive_seq = 0;
                self.pending_missed_at = None;
                self.record_recovery(page, (t as u64).saturating_sub(missed), true);
                // The fallback airing the decode beat: the page's first
                // airing after now (everything earlier was lost or
                // forfeit) — the coded-repair credit anchor. Pure plan
                // arithmetic, computed only for sampled requests.
                let fallback = if self.pending_trace.is_some() {
                    self.arrival(page, t)
                } else {
                    t
                };
                if self.complete_miss(page, requested_at, t, fallback) {
                    return true;
                }
            }
        }

        if let Some((page, requested_at)) = self.pending {
            // An on-demand airing delivers the page exactly like a
            // scheduled one — same payload, same receive-time rule.
            let delivers = slot == Slot::Page(page) || slot == Slot::Pull(page);
            if !delivers || seq < self.min_receive_seq {
                return false; // still waiting for the page
            }
            self.pending = None;
            self.min_receive_seq = 0;
            if self.receive(page, requested_at, t) {
                return true;
            }
        }

        while self.next_due <= t {
            let requested_at = self.next_due;
            let page = self.core.next_request();
            // Sampling is decided at issue time, exactly as the simulator
            // does: one request is in flight and the measuring flag flips
            // only inside complete_request, so the index gate here matches
            // the index the request completes with — twin runs sample
            // identical request sets.
            let traced = self.core.measuring() && trace::sampled(self.core.measured_count());
            if self.core.contains(page) {
                self.core.on_hit(page, requested_at);
                if traced {
                    // A cache hit waits on nothing: the all-zero span.
                    self.emit_span(
                        requested_at,
                        requested_at,
                        requested_at,
                        requested_at,
                        requested_at,
                    );
                }
                if self.core.measuring() {
                    self.record_bucket(requested_at, 0.0);
                }
                if self.core.complete_request(0.0, AccessLocation::Cache) {
                    return self.finish_at(requested_at);
                }
                self.next_due = requested_at + self.core.think_delay();
            } else {
                let home = self.plan.channel_of(page);
                let min_seq = if home.0 == self.tuned {
                    0
                } else {
                    // Single-tuner constraint, mirroring the simulator:
                    // retuning forfeits the slot in flight and pays the
                    // switch penalty — the earliest receivable slot starts
                    // at ⌊t⌋ + 1 + switch_slots, anchored on the request
                    // time.
                    self.tuned = home.0;
                    self.expected_seq = None;
                    if let Some(state) = self.coded.as_mut() {
                        // The window holds the old channel's slots; no
                        // symbol of the new channel covers them. Start
                        // clean (a retune is not an eviction).
                        state.window.reset();
                    }
                    (requested_at.floor() + 1.0 + self.switch_slots).ceil() as u64
                };
                // Wait-attribution anchors for sampled requests: what the
                // wait would have been without a retune, and the arrival
                // actually expected past any switch penalty. Pure plan
                // arithmetic — identical to the simulator's anchors.
                self.pending_trace = if traced {
                    let no_switch = self.arrival(page, requested_at);
                    let mut expected = if min_seq == 0 {
                        no_switch
                    } else {
                        self.arrival(page, requested_at.floor() + 1.0 + self.switch_slots)
                    };
                    if self.pull_user.is_some() {
                        // With the backchannel armed the expected arrival
                        // is the earlier of the periodic airing and the
                        // pull service (padding-fill prediction) — same
                        // arithmetic as the simulator's pull mirror.
                        if let Some(pa) = self.pull_arrival(page, requested_at, min_seq) {
                            expected = expected.min(pa);
                        }
                    }
                    Some((no_switch, expected))
                } else {
                    None
                };
                if (slot == Slot::Page(page) || slot == Slot::Pull(page)) && seq >= min_seq {
                    // The slot currently on the air is the page we need.
                    if self.receive(page, requested_at, t) {
                        return true;
                    }
                } else {
                    self.min_receive_seq = min_seq;
                    self.pending = Some((page, requested_at));
                    if let Some(user) = self.pull_user {
                        // Ask the broker for the page. `min_seq` tells the
                        // arbiter the earliest slot this tuner can hear
                        // (now, or past the retune penalty), so an airing
                        // we'd forfeit is never burned on us.
                        self.pull_outbox.push(PullRequest {
                            user,
                            page,
                            min_seq: (requested_at.ceil() as u64).max(min_seq),
                        });
                    }
                    break;
                }
            }
        }
        false
    }

    /// Records one sampled request span, into the process ring (which
    /// asserts the conservation invariant) and this client's local list.
    /// Mirrors the simulator's span emission so twin runs produce
    /// bit-identical span sets.
    fn emit_span(
        &mut self,
        requested_at: f64,
        no_switch: f64,
        expected: f64,
        next_periodic: f64,
        received_at: f64,
    ) {
        let total = received_at - requested_at;
        let phases = trace::attribute_wait(
            requested_at,
            no_switch,
            expected,
            next_periodic,
            received_at,
        );
        let index = self.core.measured_count();
        let seq = trace::record_request(self.trace_id, index, total, phases);
        self.spans.push(Span {
            seq,
            kind: SpanKind::Request,
            client: self.trace_id,
            index,
            total,
            phases,
        });
    }

    /// Completes a missed request with the page arriving at time `t`.
    fn receive(&mut self, page: PageId, requested_at: f64, t: f64) -> bool {
        if let Some(missed) = self.pending_missed_at.take() {
            // The page's earlier broadcast was lost; this periodic
            // reappearance is the recovery. Attribute the extra wait.
            self.record_recovery(page, (t as u64).saturating_sub(missed), false);
        }
        // Whether lossless or a periodic recovery, the airing received is
        // itself the fallback periodic airing: credit is zero, and any
        // wait past the expected arrival is the loss phase.
        self.complete_miss(page, requested_at, t, t)
    }

    /// Accounts one loss recovery, split by how the page came back:
    /// `coded` recoveries decoded a repair symbol, periodic ones waited
    /// out the broadcast cycle. Both feed the same wait histogram — the
    /// collapse of `bd_recovery_wait_slots` under a rising code rate is
    /// what the repair subsystem buys.
    fn record_recovery(&mut self, page: PageId, wait: u64, coded: bool) {
        self.recoveries += 1;
        let rm = crate::obs::repair();
        if coded {
            self.recoveries_coded += 1;
            rm.recoveries_coded.inc();
        } else {
            rm.recoveries_periodic.inc();
        }
        self.max_recovery_wait = self.max_recovery_wait.max(wait);
        self.recovery_waits.push(wait);
        crate::obs::recovery().recovery_wait.record(wait);
        bdisk_cache::obs::record_loss_delayed_miss();
        event(EventKind::Recovery, page.0 as u64, wait);
    }

    /// Inserts the received (or reconstructed) page and completes the
    /// outstanding request against it. `next_periodic` is the fallback
    /// periodic airing for wait attribution: the receive time itself
    /// except on a coded recovery, where it is the later airing the decode
    /// beat (the difference is the repair credit).
    fn complete_miss(
        &mut self,
        page: PageId,
        requested_at: f64,
        t: f64,
        next_periodic: f64,
    ) -> bool {
        self.core.insert(page, t);
        if let Some((no_switch, expected)) = self.pending_trace.take() {
            self.emit_span(requested_at, no_switch, expected, next_periodic, t);
        }
        let disk = self.plan.disk_of(page);
        if self.core.measuring() {
            self.record_bucket(t, t - requested_at);
        }
        if self
            .core
            .complete_request(t - requested_at, AccessLocation::Disk(disk))
        {
            return self.finish_at(t);
        }
        self.next_due = t + self.core.think_delay();
        false
    }

    fn finish_at(&mut self, t: f64) -> bool {
        self.done = true;
        self.end_time = t;
        crate::obs::client().finished.inc();
        true
    }

    /// Drains a bus subscription until done or the feed closes. Run this on
    /// the client's own thread. Takes the subscription by value so that
    /// finishing drops it — which is how the engine learns the client left
    /// (and stops, when `stop_when_no_clients` is set).
    pub fn run(&mut self, mut sub: BusSubscription) {
        while !self.done {
            match sub.recv() {
                Some(frame) => {
                    self.on_frame(&frame);
                }
                None => break,
            }
        }
    }

    /// True once the measurement target has been reached.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True once warm-up has ended and requests are being measured.
    pub fn measuring(&self) -> bool {
        self.core.measuring()
    }

    /// Contiguous frame-sequence gaps observed so far.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Loss-delayed recoveries completed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Consumes the client, producing its results.
    pub fn into_results(self) -> LiveClientResult {
        let frames_seen = self.frames_seen;
        let (outcome, measurements) = self.core.finish(self.end_time);
        LiveClientResult {
            outcome,
            measurements,
            frames_seen,
            gaps: self.gaps,
            gap_slots: self.gap_slots,
            late_frames: self.late_frames,
            recoveries: self.recoveries,
            max_recovery_wait: self.max_recovery_wait,
            recoveries_coded: self.recoveries_coded,
            symbols_decoded: self.symbols_decoded,
            recovery_waits: self.recovery_waits,
            spans: self.spans,
            epoch_swaps: self.epoch_swaps,
            stale_epoch_frames: self.stale_epoch_frames,
            delay_buckets: self.delay_buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdisk_cache::PolicyKind;
    use bdisk_sim::{simulate, simulate_plan, simulate_plan_traced};

    /// Serializes tests that flip the process-wide span-sampling knob.
    static TRACE_KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn setup(policy: PolicyKind) -> (SimConfig, DiskLayout, BroadcastProgram) {
        let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
        let program = BroadcastProgram::generate(&layout).unwrap();
        let cfg = SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 20,
            offset: 20,
            noise: 0.3,
            policy,
            requests: 500,
            warmup_requests: 100,
            ..SimConfig::default()
        };
        (cfg, layout, program)
    }

    /// The heart of the tentpole: a live client fed every slot in order
    /// reproduces the simulator bit for bit.
    #[test]
    fn live_client_matches_simulator_exactly() {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::L,
            PolicyKind::Lix,
            PolicyKind::Pix,
        ] {
            let (cfg, layout, program) = setup(policy);
            let sim = simulate(&cfg, &layout, 11).unwrap();
            let mut live = LiveClient::new(&cfg, &layout, program.clone(), 11).unwrap();
            for (seq, slot) in program.slots_from(0) {
                if live.on_frame(&Frame::bare(seq, slot)) {
                    break;
                }
                assert!(seq < 10_000_000, "live client never finished");
            }
            let out = live.into_results().outcome;
            assert_eq!(
                out.mean_response_time, sim.mean_response_time,
                "{policy:?} mean diverged"
            );
            assert_eq!(out.hit_rate, sim.hit_rate, "{policy:?} hit rate diverged");
            assert_eq!(out.end_time, sim.end_time, "{policy:?} end time diverged");
            assert_eq!(out.access_fractions, sim.access_fractions);
            assert_eq!(out.p999, sim.p999, "{policy:?} p999 diverged");
        }
    }

    /// The multi-channel acceptance criterion: a live client fed every
    /// channel's frames in engine order (per sequence number, channels
    /// ascending) reproduces `simulate_plan` bit for bit — including the
    /// single-tuner retune penalty — and a lossless feed with retunes
    /// records no gaps or stale frames.
    #[test]
    fn two_channel_live_client_matches_simulator_exactly() {
        for (policy, switch_slots) in [
            (PolicyKind::Pix, 0.0),
            (PolicyKind::Lix, 0.0),
            (PolicyKind::Lru, 2.0),
            (PolicyKind::Pix, 3.5),
        ] {
            let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
            let plan = BroadcastPlan::generate(&layout, 2).unwrap();
            let cfg = SimConfig {
                access_range: 100,
                region_size: 5,
                cache_size: 20,
                offset: 20,
                noise: 0.3,
                policy,
                requests: 500,
                warmup_requests: 100,
                channels: 2,
                switch_slots,
                ..SimConfig::default()
            };
            let sim = simulate_plan(&cfg, &layout, plan.clone(), 11).unwrap();
            let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 11).unwrap();
            let mut done = false;
            'feed: for seq in 0..10_000_000u64 {
                for c in 0..plan.num_channels() as u16 {
                    let slot = plan.slot_at(ChannelId(c), seq);
                    if live.on_frame(&Frame::bare_on(seq, c, slot)) {
                        done = true;
                        break 'feed;
                    }
                }
            }
            assert!(done, "{policy:?}/switch={switch_slots}: never finished");
            let results = live.into_results();
            assert_eq!(results.gaps, 0, "{policy:?}: retunes counted as gaps");
            assert_eq!(results.late_frames, 0, "{policy:?}: spurious staleness");
            let out = results.outcome;
            assert_eq!(
                out.mean_response_time, sim.mean_response_time,
                "{policy:?}/switch={switch_slots}: mean diverged"
            );
            assert_eq!(out.hit_rate, sim.hit_rate, "{policy:?}: hit rate diverged");
            assert_eq!(out.end_time, sim.end_time, "{policy:?}: end time diverged");
            assert_eq!(out.access_fractions, sim.access_fractions);
            assert_eq!(out.p999, sim.p999, "{policy:?}: p999 diverged");
        }
    }

    /// The coded acceptance criterion: enabling repair coding on a
    /// 2-channel plan leaves a lossless live client bit-identical to
    /// `simulate_plan` on the same coded plan. Repair slots displace
    /// padding and duplicate airings, never data timing the simulator
    /// doesn't also see — and a lossless feed never decodes (every
    /// symbol resolves with zero losses), so the coded machinery is
    /// observably inert.
    #[test]
    fn coded_two_channel_live_client_matches_simulator_exactly() {
        use bdisk_sched::CodingConfig;
        for (codec_cfg, switch_slots) in [
            (CodingConfig::xor(0.2, 4, 5), 0.0),
            (CodingConfig::lt(0.15, 6, 9), 2.0),
        ] {
            let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
            let plan = BroadcastPlan::generate(&layout, 2)
                .unwrap()
                .with_coding(codec_cfg)
                .unwrap();
            assert!(plan.coding().is_some(), "rate must be high enough to code");
            let cfg = SimConfig {
                access_range: 100,
                region_size: 5,
                cache_size: 20,
                offset: 20,
                noise: 0.3,
                policy: PolicyKind::Pix,
                requests: 500,
                warmup_requests: 100,
                channels: 2,
                switch_slots,
                ..SimConfig::default()
            };
            let sim = simulate_plan(&cfg, &layout, plan.clone(), 11).unwrap();
            let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 11).unwrap();
            let mut done = false;
            'feed: for seq in 0..10_000_000u64 {
                for c in 0..plan.num_channels() as u16 {
                    let slot = plan.slot_at(ChannelId(c), seq);
                    if live.on_frame(&Frame::bare_on(seq, c, slot)) {
                        done = true;
                        break 'feed;
                    }
                }
            }
            assert!(done, "coded live client never finished");
            let results = live.into_results();
            assert_eq!(results.gaps, 0);
            assert_eq!(results.recoveries, 0, "lossless feed must not recover");
            assert_eq!(results.recoveries_coded, 0);
            assert_eq!(results.symbols_decoded, 0, "lossless feed must not decode");
            assert!(results.recovery_waits.is_empty());
            let out = results.outcome;
            assert_eq!(out.mean_response_time, sim.mean_response_time);
            assert_eq!(out.hit_rate, sim.hit_rate);
            assert_eq!(out.end_time, sim.end_time);
            assert_eq!(out.access_fractions, sim.access_fractions);
        }
    }

    /// A lost pending page on a coded plan is reconstructed by the next
    /// covering repair symbol — a *coded* recovery, strictly earlier than
    /// the page's next periodic airing would have been.
    #[test]
    fn coded_plan_recovers_lost_pending_page_early() {
        use bdisk_code::ChannelCode;
        use bdisk_sched::CodingConfig;
        let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
        let coding = CodingConfig::xor(0.25, 4, 5);
        let plan = BroadcastPlan::generate(&layout, 1)
            .unwrap()
            .with_coding(coding)
            .unwrap();
        let ch = ChannelId(0);
        let prog = plan.program(ch);
        assert!(prog.repair_slots() > 0);
        let code = ChannelCode::build(prog, 0, plan.coding().unwrap());
        let period = prog.period() as u64;
        let cfg = SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 20,
            offset: 20,
            noise: 0.3,
            policy: PolicyKind::Lru,
            requests: 500,
            warmup_requests: 100,
            ..SimConfig::default()
        };
        let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 7).unwrap();

        // Walk the feed until a request goes pending on a page whose next
        // airing, if lost, is covered by a repair symbol airing *before*
        // the page comes around again. Then lose exactly that airing.
        let mut seq = 0u64;
        let (lost_at, repair_at) = 'hunt: loop {
            assert!(
                !live.on_frame(&Frame::bare(seq, prog.slot_at(seq))),
                "client finished before a coverable loss was found"
            );
            if let Some((page, _)) = live.pending {
                let next_airing = (seq + 1..=seq + period)
                    .find(|&s| prog.slot_at(s) == Slot::Page(page))
                    .expect("page airs within one period");
                let next_after = (next_airing + 1..=next_airing + period)
                    .find(|&s| prog.slot_at(s) == Slot::Page(page))
                    .unwrap();
                // Does a repair symbol between the loss and the page's
                // following airing cover the lost slot?
                let covering = (next_airing + 1..next_after).find(|&s| {
                    matches!(prog.slot_at(s), Slot::Repair(id)
                        if code.covered_seqs(id, s)
                            .is_some_and(|c| c.iter().any(|&(cs, _)| cs == next_airing)))
                });
                if let Some(r) = covering {
                    break 'hunt (next_airing, r);
                }
            }
            seq += 1;
            assert!(seq < 10_000_000, "no coverable pending loss ever arose");
        };

        // Feed up to the lost airing (exclusive), skip it, and continue:
        // the covering repair slot must complete the request.
        for s in seq + 1..lost_at {
            assert!(!live.on_frame(&Frame::bare(s, prog.slot_at(s))));
        }
        for s in lost_at + 1..=repair_at {
            assert!(!live.on_frame(&Frame::bare(s, prog.slot_at(s))));
        }
        assert!(
            live.pending.is_none(),
            "repair symbol did not complete the request"
        );
        let results = live.into_results();
        assert_eq!(results.recoveries, 1);
        assert_eq!(
            results.recoveries_coded, 1,
            "recovery must be coded, not periodic"
        );
        assert_eq!(results.symbols_decoded, 1);
        assert_eq!(results.recovery_waits, vec![repair_at - lost_at]);
        assert!(
            results.max_recovery_wait < period,
            "coded recovery must beat the periodic wait"
        );
    }

    /// A cross-channel miss pays the retune penalty: an airing of the
    /// wanted page inside the penalty window is forfeit, and the first
    /// airing at or past `⌈⌊requested_at⌋ + 1 + switch_slots⌉` completes
    /// the request.
    #[test]
    fn retune_penalty_defers_reception() {
        let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        let cfg = SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 20,
            offset: 20,
            noise: 0.3,
            policy: PolicyKind::Lru,
            requests: 500,
            warmup_requests: 100,
            channels: 2,
            switch_slots: 8.0,
            ..SimConfig::default()
        };
        let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 7).unwrap();

        // Feed engine-ordered frames until a miss retunes to the other
        // channel. With an 8-slot penalty the earliest receivable slot is
        // always in the future, so the request must go pending.
        let mut retuned_at = None;
        'feed: for seq in 0..1_000_000u64 {
            for c in 0..plan.num_channels() as u16 {
                let before = live.tuned;
                let slot = plan.slot_at(ChannelId(c), seq);
                assert!(!live.on_frame(&Frame::bare_on(seq, c, slot)));
                if live.tuned != before && live.pending.is_some() {
                    retuned_at = Some(seq);
                    break 'feed;
                }
            }
        }
        let seq = retuned_at.expect("a cross-channel miss went pending");
        let (page, _) = live.pending.unwrap();
        let min = live.min_receive_seq;
        assert!(min > seq, "penalty must push reception past the present");

        // An airing inside the penalty window is forfeit...
        assert!(!live.on_frame(&Frame::bare_on(min - 1, live.tuned, Slot::Page(page))));
        assert!(live.pending.is_some(), "received inside the penalty window");
        // ...and the first one at the window boundary completes it.
        assert!(!live.on_frame(&Frame::bare_on(min, live.tuned, Slot::Page(page))));
        assert!(
            live.pending.is_none(),
            "airing past the penalty not received"
        );
    }

    /// Satellite: a dropped frame produces exactly one gap event — a
    /// contiguous run of lost slots is one gap (of that length), not one
    /// gap per slot, and a stale reordered frame is not a gap at all.
    #[test]
    fn dropped_frame_produces_exactly_one_gap() {
        let (cfg, layout, program) = setup(PolicyKind::Lru);
        let mut live = LiveClient::new(&cfg, &layout, program.clone(), 7).unwrap();
        let f = |seq: u64| Frame::bare(seq, program.slot_at(seq));

        live.on_frame(&f(0));
        live.on_frame(&f(1));
        assert_eq!(live.gaps(), 0);

        live.on_frame(&f(3)); // slot 2 lost: one gap of one slot
        assert_eq!(live.gaps(), 1);

        live.on_frame(&f(7)); // slots 4..6 lost: ONE gap of three slots
        assert_eq!(live.gaps(), 2);

        live.on_frame(&f(5)); // stale reordered frame: dropped, no gap
        assert_eq!(live.gaps(), 2);

        live.on_frame(&f(8)); // back in sequence: no gap
        assert_eq!(live.gaps(), 2);

        let results = live.into_results();
        assert_eq!(results.gaps, 2);
        assert_eq!(results.gap_slots, 1 + 3);
        assert_eq!(results.late_frames, 1);
    }

    /// A gap that swallows the pending page's broadcast is recovered at
    /// the page's next periodic appearance, and the wait is attributed.
    #[test]
    fn lost_pending_page_recovers_at_next_period() {
        let (cfg, layout, program) = setup(PolicyKind::Lru);
        let period = program.period() as u64;
        let mut live = LiveClient::new(&cfg, &layout, program.clone(), 7).unwrap();

        // Walk frames until a request goes pending on some page, then find
        // that page's next broadcast slot and skip past it (lose it).
        let mut seq = 0u64;
        let lost_at = loop {
            assert!(
                !live.on_frame(&Frame::bare(seq, program.slot_at(seq))),
                "client finished before a miss went pending"
            );
            if let Some((page, _)) = live.pending {
                let miss = (seq + 1..seq + 1 + period)
                    .find(|&s| program.slot_at(s) == Slot::Page(page))
                    .expect("page airs within one period");
                break miss;
            }
            seq += 1;
            assert!(seq < 10_000_000, "no request ever went pending");
        };

        // Resume the feed just past the lost broadcast.
        let mut t = lost_at + 1;
        while live.recoveries() == 0 {
            live.on_frame(&Frame::bare(t, program.slot_at(t)));
            t += 1;
            assert!(
                t < lost_at + 2 + 2 * period,
                "pending page not recovered within the next period"
            );
        }
        let results = live.into_results();
        assert_eq!(results.recoveries, 1);
        assert!(results.max_recovery_wait >= 1);
        assert!(
            results.max_recovery_wait <= period,
            "single lost broadcast must recover within one period \
             (waited {} of period {})",
            results.max_recovery_wait,
            period
        );
    }

    /// The tracing acceptance criterion: with sampling on, a live client
    /// emits the *same spans* as its simulated twin — same request
    /// indices, bit-identical totals and phase decompositions — and every
    /// span conserves (the ring asserts it again on record).
    #[test]
    fn live_spans_match_simulator_spans_bit_exactly() {
        let _g = TRACE_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
        let plan = BroadcastPlan::generate(&layout, 2).unwrap();
        let cfg = SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 20,
            offset: 20,
            noise: 0.3,
            policy: PolicyKind::Pix,
            requests: 500,
            warmup_requests: 100,
            channels: 2,
            switch_slots: 3.5,
            ..SimConfig::default()
        };
        bdisk_obs::trace::set_sample_every(4);
        let (sim, sim_spans) = simulate_plan_traced(&cfg, &layout, plan.clone(), 11).unwrap();
        let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 11).unwrap();
        'feed: for seq in 0..10_000_000u64 {
            for c in 0..plan.num_channels() as u16 {
                let slot = plan.slot_at(ChannelId(c), seq);
                if live.on_frame(&Frame::bare_on(seq, c, slot)) {
                    break 'feed;
                }
            }
        }
        bdisk_obs::trace::set_sample_every(0);
        let results = live.into_results();
        assert_eq!(results.outcome.p999, sim.p999);
        assert!(!sim_spans.is_empty(), "1-in-4 sampling must catch spans");
        assert_eq!(results.spans.len(), sim_spans.len());
        for (live_span, sim_span) in results.spans.iter().zip(&sim_spans) {
            assert_eq!(live_span.client, 11);
            assert_eq!(live_span.index, sim_span.index);
            assert_eq!(live_span.total.to_bits(), sim_span.total.to_bits());
            for p in 0..4 {
                assert_eq!(
                    live_span.phases[p].to_bits(),
                    sim_span.phases[p].to_bits(),
                    "phase {p} of request {} diverged",
                    sim_span.index
                );
            }
            // Conservation, bit-exact, on the live side too.
            assert_eq!(live_span.phase_sum().to_bits(), live_span.total.to_bits());
        }
        let switched = results.spans.iter().filter(|s| s.phases[1] > 0.0).count();
        assert!(switched > 0, "two channels must sample some switch waits");
    }

    /// A lost airing recovered at the next periodic appearance shows up in
    /// the span as a pure *loss* phase — credit stays zero, and the span
    /// still conserves exactly.
    #[test]
    fn loss_spans_attribute_recovery_wait() {
        let _g = TRACE_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let (cfg, layout, program) = setup(PolicyKind::Lru);
        let period = program.period() as u64;
        bdisk_obs::trace::set_sample_every(1);
        let mut live = LiveClient::new(&cfg, &layout, program.clone(), 7).unwrap();

        // Hunt for a *measured* (hence sampled) pending request, then lose
        // its page's next airing.
        let mut seq = 0u64;
        let lost_at = loop {
            assert!(
                !live.on_frame(&Frame::bare(seq, program.slot_at(seq))),
                "client finished before a measured miss went pending"
            );
            if live.measuring() {
                if let Some((page, _)) = live.pending {
                    let miss = (seq + 1..seq + 1 + period)
                        .find(|&s| program.slot_at(s) == Slot::Page(page))
                        .expect("page airs within one period");
                    break miss;
                }
            }
            seq += 1;
            assert!(seq < 10_000_000, "no measured request ever went pending");
        };
        assert!(
            live.pending_trace.is_some(),
            "a measured pending request must carry anchors at 1-in-1 sampling"
        );

        let spans_before = live.spans.len();
        let mut t = lost_at + 1;
        while live.recoveries() == 0 {
            live.on_frame(&Frame::bare(t, program.slot_at(t)));
            t += 1;
            assert!(t < lost_at + 2 + 2 * period, "pending page not recovered");
        }
        bdisk_obs::trace::set_sample_every(0);
        let span = live.spans[spans_before];
        assert!(span.phases[2] > 0.0, "recovery must be attributed to loss");
        assert_eq!(span.phases[3], 0.0, "periodic recovery earns no credit");
        assert_eq!(span.phase_sum().to_bits(), span.total.to_bits());
        assert!(
            span.phases[2] <= period as f64,
            "one lost airing costs at most a period"
        );
    }

    /// A coded recovery's span carries *credit*: the request completed at
    /// the repair symbol, earlier than the periodic airing it would have
    /// waited for — and the span still conserves exactly.
    #[test]
    fn coded_credit_spans_beat_the_periodic_wait() {
        use bdisk_code::ChannelCode;
        use bdisk_sched::CodingConfig;
        let _g = TRACE_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let layout = DiskLayout::with_delta(&[20, 80, 100], 2).unwrap();
        let coding = CodingConfig::xor(0.25, 4, 5);
        let plan = BroadcastPlan::generate(&layout, 1)
            .unwrap()
            .with_coding(coding)
            .unwrap();
        let prog = plan.program(ChannelId(0));
        let code = ChannelCode::build(prog, 0, plan.coding().unwrap());
        let period = prog.period() as u64;
        let cfg = SimConfig {
            access_range: 100,
            region_size: 5,
            cache_size: 20,
            offset: 20,
            noise: 0.3,
            policy: PolicyKind::Lru,
            requests: 500,
            warmup_requests: 100,
            ..SimConfig::default()
        };
        bdisk_obs::trace::set_sample_every(1);
        let mut live = LiveClient::with_plan(&cfg, &layout, plan.clone(), 7).unwrap();

        // Hunt for a measured pending request whose next airing, if lost,
        // is covered by a repair symbol airing before the page's following
        // airing — then lose exactly that airing.
        let mut seq = 0u64;
        let (lost_at, repair_at) = 'hunt: loop {
            assert!(
                !live.on_frame(&Frame::bare(seq, prog.slot_at(seq))),
                "client finished before a measured coverable loss was found"
            );
            if live.measuring() {
                if let Some((page, _)) = live.pending {
                    let next_airing = (seq + 1..=seq + period)
                        .find(|&s| prog.slot_at(s) == Slot::Page(page))
                        .expect("page airs within one period");
                    let next_after = (next_airing + 1..=next_airing + period)
                        .find(|&s| prog.slot_at(s) == Slot::Page(page))
                        .unwrap();
                    let covering = (next_airing + 1..next_after).find(|&s| {
                        matches!(prog.slot_at(s), Slot::Repair(id)
                            if code.covered_seqs(id, s)
                                .is_some_and(|c| c.iter().any(|&(cs, _)| cs == next_airing)))
                    });
                    if let Some(r) = covering {
                        break 'hunt (next_airing, r);
                    }
                }
            }
            seq += 1;
            assert!(seq < 10_000_000, "no measured coverable loss ever arose");
        };

        let spans_before = live.spans.len();
        for s in seq + 1..lost_at {
            assert!(!live.on_frame(&Frame::bare(s, prog.slot_at(s))));
        }
        for s in lost_at + 1..=repair_at {
            assert!(!live.on_frame(&Frame::bare(s, prog.slot_at(s))));
        }
        bdisk_obs::trace::set_sample_every(0);
        assert!(live.pending.is_none(), "repair symbol must complete it");
        assert!(live.spans.len() > spans_before, "recovery span missing");
        let span = live.spans[spans_before];
        assert!(span.phases[3] > 0.0, "coded recovery must earn credit");
        assert!(
            span.phases[2] >= span.phases[3],
            "credit can't exceed the loss it repaid"
        );
        assert_eq!(span.phase_sum().to_bits(), span.total.to_bits());
        assert!(
            span.phases[3] < period as f64,
            "credit is bounded by one period"
        );
    }

    #[test]
    fn frames_after_done_are_ignored() {
        let (cfg, layout, program) = setup(PolicyKind::Lru);
        let mut live = LiveClient::new(&cfg, &layout, program.clone(), 3).unwrap();
        let mut finished_at = None;
        for (seq, slot) in program.slots_from(0).take(10_000_000) {
            if live.on_frame(&Frame::bare(seq, slot)) {
                finished_at = Some(seq);
                break;
            }
        }
        let end = finished_at.expect("client finished");
        assert!(live.on_frame(&Frame::bare(end + 1, program.slot_at(end + 1))));
        let results = live.into_results();
        assert_eq!(results.outcome.measured_requests, 500);
        assert!(results.frames_seen <= end + 1);
    }
}
